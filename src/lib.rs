//! # p2p-mpi
//!
//! Facade crate for **p2pmpi-rs**, a Rust reproduction of
//! *"Large-Scale Experiment of Co-allocation Strategies for Peer-to-Peer
//! SuperComputing in P2P-MPI"* (Genaud & Rattanapoka, IPDPS/HPGC 2008).
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports them under stable names and hosts the runnable examples and
//! the cross-crate integration tests.
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`simgrid`] | `p2pmpi-simgrid` | virtual time, topology, network/compute/memory cost models |
//! | [`overlay`] | `p2pmpi-overlay` | supernode, MPD, Reservation Service, latency probing, churn |
//! | [`core`] | `p2pmpi-core` | spread/concentrate strategies, rank assignment, reservation procedure |
//! | [`mpi`] | `p2pmpi-mpi` | MPJ-like communication library with replication and virtual clocks |
//! | [`nas`] | `p2pmpi-nas` | NAS EP and IS kernels, problem classes, the hostname program |
//! | [`grid5000`] | `p2pmpi-grid5000` | the Table 1 testbed model and experiment scenarios |
//!
//! ```
//! use p2p_mpi::prelude::*;
//!
//! // Build the paper's testbed, submit from Nancy, run the hostname job.
//! let mut tb = p2p_mpi::grid5000::testbed::grid5000_testbed(
//!     1,
//!     p2p_mpi::simgrid::noise::NoiseModel::disabled(),
//! );
//! let report = allocate(
//!     &mut tb.overlay,
//!     tb.submitter,
//!     &JobRequest::new(100, StrategyKind::Concentrate, "hostname"),
//! );
//! assert!(report.is_success());
//! ```

pub use p2pmpi_core as core;
pub use p2pmpi_grid5000 as grid5000;
pub use p2pmpi_mpi as mpi;
pub use p2pmpi_nas as nas;
pub use p2pmpi_overlay as overlay;
pub use p2pmpi_simgrid as simgrid;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use p2pmpi_core::prelude::*;
    pub use p2pmpi_grid5000::testbed::{grid5000_testbed, grid5000_topology, Grid5000Testbed};
    pub use p2pmpi_mpi::prelude::*;
    pub use p2pmpi_nas::{
        classes::Class,
        ep::{ep_kernel, ep_model, EpConfig},
        hostname::hostname_kernel,
        is::{is_kernel, is_model, IsConfig},
    };
    pub use p2pmpi_overlay::{OverlayBuilder, OwnerConfig};
    pub use p2pmpi_simgrid::noise::NoiseModel;
    pub use p2pmpi_simgrid::time::{SimDuration, SimTime};
    pub use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};
}
