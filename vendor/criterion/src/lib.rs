//! Minimal vendored stand-in for `criterion` (offline build).
//!
//! Implements the API subset this workspace's benches use: `Criterion`,
//! `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `Bencher::iter` / `iter_batched`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — median of `sample_size` wall-clock
//! samples — but honest: every sample times real executions with
//! `std::hint::black_box` left to the caller.  Passing `--test` (as
//! `cargo bench -- --test` does for smoke runs) executes each benchmark body
//! exactly once and reports `ok` without timing.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost.  The stand-in runs one routine
/// per setup regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Inputs of unknown size.
    PerIteration,
}

/// A two-part benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; drives the timed iterations.
pub struct Bencher<'a> {
    samples: usize,
    test_mode: bool,
    result: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.result.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.result.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        if self.test_mode {
            let mut input = setup();
            black_box(routine(&mut input));
            return;
        }
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.result.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion
            .run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream emits summary output here; a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            default_sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the default sample count for benchmarks run through this
    /// criterion instance (builder form, as used by `criterion_group!`
    /// configs).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.default_sample_size = n;
        self
    }

    /// Reads `--test` and an optional name filter from the command line, the
    /// way `cargo bench -- --test [filter]` passes them.
    pub fn configure_from_args(mut self) -> Self {
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo/libtest pass along that we accept silently.
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                s if s.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = id.into_id();
        let samples = self.default_sample_size;
        self.run_one(&full, samples, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut durations = Vec::with_capacity(samples);
        let mut bencher = Bencher {
            samples,
            test_mode: self.test_mode,
            result: &mut durations,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok");
            return;
        }
        durations.sort_unstable();
        if durations.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let median = durations[durations.len() / 2];
        let lo = durations[0];
        let hi = durations[durations.len() - 1];
        println!(
            "{name:<60} time: [{} {} {}]",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a group callable by [`criterion_main!`].
///
/// Both upstream forms are supported: the positional
/// `criterion_group!(name, target, ...)` and the named
/// `criterion_group! { name = n; config = expr; targets = t, ... }`, where
/// `config` builds the `Criterion` the group runs with (command-line flags
/// are applied on top).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(_c: &mut $crate::Criterion) {
            let mut configured = $config.configure_from_args();
            $( $target(&mut configured); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("t", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0;
        let mut g = c.benchmark_group("g");
        g.sample_size(50).bench_function("x", |b| {
            b.iter_batched(|| 1, |v| v + 1, BatchSize::LargeInput);
            runs += 1;
        });
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("spread", 300).to_string(), "spread/300");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
