//! Minimal vendored stand-in for `crossbeam-channel` (offline build).
//!
//! Provides `unbounded()`, `Sender`, `Receiver`, and the error types this
//! workspace uses (`SendError`, `TryRecvError`, `RecvTimeoutError`),
//! implemented over `std::sync::mpsc`.

use std::sync::mpsc;
use std::time::Duration;

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// All senders have been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed without a message.
    Timeout,
    /// All senders have been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Sending half of an unbounded channel.
#[derive(Debug, Clone)]
pub struct Sender<T>(mpsc::Sender<T>);

/// Receiving half of an unbounded channel.
#[derive(Debug)]
pub struct Receiver<T>(mpsc::Receiver<T>);

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing only if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Returns a queued message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocks for at most `timeout` waiting for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_reported() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn clone_sender_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap())
            .join()
            .unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }
}
