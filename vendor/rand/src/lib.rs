//! Minimal vendored stand-in for the `rand` crate, exposing the 0.8 API
//! subset this workspace uses: `Rng` (`gen`, `gen_range`, `gen_bool`),
//! `SeedableRng::seed_from_u64`, `rngs::StdRng` and `seq::SliceRandom`.
//!
//! The container building this repository has no network access to a crate
//! registry, so the workspace vendors the few external crates it needs as
//! API-compatible miniatures.  `StdRng` here is xoshiro256** seeded through
//! SplitMix64 — a different stream than upstream `rand`'s ChaCha12, but the
//! codebase only relies on determinism-for-a-seed and statistical quality,
//! never on exact upstream draws.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from the "standard" distribution (uniform over the type's
/// natural domain; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges (and range-likes) that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
