//! Minimal vendored stand-in for `proptest` (offline build).
//!
//! Supports the subset this workspace uses:
//!
//! * the `proptest! { #[test] fn name(arg in strategy, ...) { ... } }` macro,
//! * integer and float range strategies (`0u32..8`, `0.0f64..1.0`),
//! * `any::<T>()`,
//! * `prop::collection::vec(elem, size_range)`,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Each property runs a fixed number of deterministic cases: case seeds are
//! derived from the test name, so runs are reproducible and CI-stable.  No
//! shrinking is performed — a failing case panics with its seed so it can be
//! replayed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of random cases executed per property.
pub const CASES: u32 = 64;

/// Strategy: a recipe for generating random values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types with a natural "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32, bool);

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop` module namespace (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;

        /// Strategy for `Vec<E::Value>` with a length drawn from `size`.
        pub struct VecStrategy<E> {
            elem: E,
            size: core::ops::Range<usize>,
        }

        /// Generates vectors whose elements come from `elem` and whose length
        /// is drawn uniformly from `size`.
        pub fn vec<E: Strategy>(elem: E, size: core::ops::Range<usize>) -> VecStrategy<E> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { elem, size }
        }

        impl<E: Strategy> Strategy for VecStrategy<E> {
            type Value = Vec<E::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let len = rand::Rng::gen_range(rng, self.size.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Test-runner support used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::StdRng;
    use rand::SeedableRng as _;

    /// FNV-1a hash of the test name, mixed with the case index, yields the
    /// per-case seed.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Deterministic RNG for one test case.
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        StdRng::seed_from_u64(case_seed(test_name, case))
    }
}

/// Re-export for macro hygiene.
pub use rand::rngs::StdRng as TestRng;

/// Convenience seeded RNG (used by the macro expansion).
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Commonly imported names.
pub mod prelude {
    pub use super::{any, prop, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn` body runs [`CASES`] times with inputs
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut __proptest_rng =
                        $crate::test_runner::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(
            x in 3u32..10,
            f in 0.25f64..0.75,
            v in prop::collection::vec(0u8..4, 1..6),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn any_u64_varies(seed in any::<u64>()) {
            // Smoke: the value is usable as a seed.
            let _rng = crate::seeded(seed);
        }
    }

    #[test]
    fn case_seeds_are_deterministic() {
        assert_eq!(
            crate::test_runner::case_seed("t", 3),
            crate::test_runner::case_seed("t", 3)
        );
        assert_ne!(
            crate::test_runner::case_seed("t", 3),
            crate::test_runner::case_seed("t", 4)
        );
    }
}
