//! Minimal vendored stand-in for `parking_lot` (offline build).
//!
//! Provides the `Mutex` API subset this workspace uses — `new`, `lock`,
//! `into_inner`, `get_mut` — with parking_lot's non-poisoning semantics,
//! implemented over `std::sync::Mutex`.

use std::sync::Mutex as StdMutex;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A non-poisoning mutual-exclusion lock.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  A panic while the
    /// lock was held does not poison it (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
