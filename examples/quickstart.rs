//! Quickstart: build a small two-site grid, boot the P2P-MPI overlay, submit
//! a job with each allocation strategy and run a tiny MPI program on the
//! resulting placement.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use p2p_mpi::prelude::*;
use p2pmpi_mpi::datatype::ReduceOp;
use std::sync::Arc;

fn main() {
    // 1. Describe the platform: two sites, 12 ms apart, four dual-core hosts
    //    at the local site and four quad-core hosts at the remote one.
    let mut builder = TopologyBuilder::new();
    let local = builder.add_site("local");
    let remote = builder.add_site("remote");
    builder.add_cluster(
        local,
        "tiny",
        "2-core CPU",
        4,
        NodeSpec {
            cores: 2,
            ..NodeSpec::default()
        },
    );
    builder.add_cluster(
        remote,
        "far",
        "4-core CPU",
        4,
        NodeSpec {
            cores: 4,
            ..NodeSpec::default()
        },
    );
    builder.set_rtt(local, remote, SimDuration::from_millis(12));
    let topology = Arc::new(builder.build());

    // 2. `mpiboot` everywhere: one peer per host, P = core count, then let the
    //    submitter probe the overlay.
    let mut overlay = OverlayBuilder::new(topology.clone())
        .seed(42)
        .peer_per_host_with_core_capacity()
        .build();
    overlay.boot_all();
    let submitter = overlay.peer_ids()[0];
    overlay.bootstrap_peer(submitter);

    // 3. `p2pmpirun -n 8 -a <strategy> hello` with both strategies.
    for strategy in [StrategyKind::Concentrate, StrategyKind::Spread] {
        let request = JobRequest::new(8, strategy, "hello");
        println!("$ {}", request.command_line());
        let report = allocate(&mut overlay, submitter, &request);
        let allocation = report.allocation();
        println!(
            "  booked {} peers, {} granted, reservation took {}",
            report.booked, report.granted, report.elapsed
        );
        for host in &allocation.hosts {
            let name = &topology.host(host.host).name;
            let ranks: Vec<String> = host.ranks.iter().map(|r| r.to_string()).collect();
            println!("  {name:<8} -> {}", ranks.join(" "));
        }

        // 4. Run a small MPI program on that placement: every rank
        //    contributes its rank to a global sum.
        let runtime = MpiRuntime::new(topology.clone());
        let placement = Placement::from_allocation(allocation);
        let result = runtime.run(&placement, |comm| {
            comm.compute(1.0e7, MemoryIntensity::CPU_BOUND)?;
            let total = comm.allreduce(ReduceOp::Sum, &[comm.rank() as i64])?;
            Ok(total[0])
        });
        println!(
            "  sum of ranks = {} (virtual execution time {})\n",
            result.result_of(0).unwrap(),
            result.makespan
        );

        // Free the gatekeepers for the next strategy.
        let key = allocation.key;
        for host in &allocation.hosts {
            overlay.complete_job(host.peer, key);
        }
    }
}
