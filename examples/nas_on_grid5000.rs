//! Runs the two NAS kernels of the paper's Figure 4 (EP and IS) on the
//! simulated Grid'5000 testbed, comparing the *spread* and *concentrate*
//! placements at a modest scale (32 processes, class W for EP / class S for
//! IS so the example finishes in seconds).
//!
//! ```text
//! cargo run --release --example nas_on_grid5000
//! ```

use p2p_mpi::prelude::*;

fn main() {
    let n = 32u32;
    println!("kernel\tclass\tstrategy\thosts\tvirtual_time_s\tverified");
    for strategy in [StrategyKind::Concentrate, StrategyKind::Spread] {
        // EP: compute-bound, one final Allreduce.
        let mut tb = grid5000_testbed(7, NoiseModel::default());
        let report = allocate(
            &mut tb.overlay,
            tb.submitter,
            &JobRequest::new(n, strategy, "NAS.EP"),
        );
        let allocation = report.allocation();
        let placement = Placement::from_allocation(allocation);
        let runtime = MpiRuntime::new(tb.topology.clone());
        let ep_config = EpConfig::new(Class::W);
        let ep = runtime.run(&placement, move |comm| ep_kernel(comm, &ep_config));
        println!(
            "EP\tW\t{strategy}\t{}\t{:.3}\t{}",
            allocation.hosts_used(),
            ep.makespan.as_secs_f64(),
            ep.result_of(0).map(|r| r.verify()).unwrap_or(false)
        );

        // IS: communication-bound, Allreduce + Alltoall + Alltoallv per
        // iteration.
        let mut tb = grid5000_testbed(8, NoiseModel::default());
        let report = allocate(
            &mut tb.overlay,
            tb.submitter,
            &JobRequest::new(n, strategy, "NAS.IS"),
        );
        let allocation = report.allocation();
        let placement = Placement::from_allocation(allocation);
        let runtime = MpiRuntime::new(tb.topology.clone());
        let is_config = IsConfig::new(Class::S);
        let is = runtime.run(&placement, move |comm| is_kernel(comm, &is_config));
        println!(
            "IS\tS\t{strategy}\t{}\t{:.3}\t{}",
            allocation.hosts_used(),
            is.makespan.as_secs_f64(),
            is.result_of(0).map(|r| r.verified).unwrap_or(false)
        );
    }
    println!();
    println!("Expected shape (cf. Figure 4): EP is close for both strategies (spread");
    println!("slightly ahead); IS at 32 processes favours spread (all processes stay in");
    println!("the Nancy cluster, one per host), while larger runs favour concentrate.");
}
