//! Where do processes land?  Reproduces the heart of the paper's Section 5.1
//! experiment interactively: allocate `hostname` jobs of growing size on the
//! Grid'5000 model with *concentrate*, *spread* and the *balanced* extension,
//! and print the per-site breakdown.
//!
//! ```text
//! cargo run --release --example allocation_strategies
//! ```

use p2p_mpi::prelude::*;
use p2pmpi_core::stats::usage_by_site;
use p2pmpi_grid5000::sites::SITE_ORDER;

fn main() {
    let demands = [100u32, 250, 400, 600];
    let strategies = [
        StrategyKind::Concentrate,
        StrategyKind::Spread,
        StrategyKind::Balanced { max_per_host: 2 },
    ];

    println!("demanded\tstrategy\tsite\thosts\tprocesses");
    for &n in &demands {
        for strategy in strategies {
            // Each run uses a fresh testbed, as each point of the paper's
            // figures is an independent submission.
            let mut tb = grid5000_testbed(2008 + n as u64, NoiseModel::default());
            let report = allocate(
                &mut tb.overlay,
                tb.submitter,
                &JobRequest::new(n, strategy, "hostname"),
            );
            match &report.outcome {
                Ok(allocation) => {
                    let usage = usage_by_site(allocation, &tb.topology);
                    for site in SITE_ORDER {
                        let row = usage.iter().find(|u| u.site_name == *site).unwrap();
                        if row.hosts > 0 {
                            println!(
                                "{n}\t{strategy}\t{}\t{}\t{}",
                                row.site_name, row.hosts, row.processes
                            );
                        }
                    }
                }
                Err(e) => println!("{n}\t{strategy}\tFAILED: {e}\t\t"),
            }
        }
    }
}
