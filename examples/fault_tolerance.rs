//! Fault tolerance by replication (`p2pmpirun -n 4 -r 2`): the co-allocation
//! places the two copies of every rank on distinct hosts, and the
//! communication library masks the crash of one copy — the application still
//! finishes and produces its result.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use p2p_mpi::prelude::*;
use p2pmpi_mpi::datatype::ReduceOp;

fn main() {
    // A Grid'5000 testbed (no probe noise so the run is fully deterministic).
    let mut tb = grid5000_testbed(5, NoiseModel::disabled());

    // p2pmpirun -n 4 -r 2 -a spread resilient_sum
    let request = JobRequest::replicated(4, 2, StrategyKind::Spread, "resilient_sum");
    println!("$ {}", request.command_line());
    let report = allocate(&mut tb.overlay, tb.submitter, &request);
    let allocation = report.allocation();
    println!(
        "allocated {} process instances on {} hosts",
        allocation.total_instances(),
        allocation.hosts_used()
    );
    for rank in 0..allocation.processes {
        let h0 = allocation.host_of(rank, 0).unwrap();
        let h1 = allocation.host_of(rank, 1).unwrap();
        println!(
            "  rank {rank}: primary on {}, replica on {}",
            tb.topology.host(h0).name,
            tb.topology.host(h1).name
        );
    }

    // Run the job, killing the primary copy of rank 2 after its first few
    // operations.  The replica takes over transparently.
    let placement = Placement::from_allocation(allocation);
    let plan = FailurePlan::none().kill(2, 0, 3);
    let runtime = MpiRuntime::new(tb.topology.clone());
    let result = runtime.run_with_failures(&placement, &plan, |comm| {
        let mut acc = 0i64;
        for round in 0..5 {
            comm.compute(1.0e6, MemoryIntensity::CPU_BOUND)?;
            let sum = comm.allreduce(ReduceOp::Sum, &[comm.rank() as i64 + round])?;
            acc += sum[0];
        }
        Ok(acc)
    });

    println!();
    println!(
        "injected failures: {:?}",
        result
            .failures()
            .iter()
            .map(|(rank, replica, _)| format!("rank {rank} replica {replica}"))
            .collect::<Vec<_>>()
    );
    println!(
        "application survived: {} (every rank produced its result)",
        result.all_ranks_completed()
    );
    println!(
        "result of rank 0: {} | virtual execution time: {}",
        result.result_of(0).unwrap(),
        result.makespan
    );
}
