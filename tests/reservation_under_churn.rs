//! Integration tests of the reservation procedure under peer churn: dead
//! peers time out, overbooking absorbs losses, and the gatekeeper state stays
//! consistent across repeated submissions.

use p2p_mpi::prelude::*;
use p2pmpi_core::reservation::{CoAllocator, CoAllocatorParams};
use p2pmpi_overlay::churn::{random_churn, ChurnSchedule};
use p2pmpi_simgrid::rngutil;
use p2pmpi_simgrid::time::SimTime;

#[test]
fn overbooking_absorbs_crashed_peers() {
    let mut tb = grid5000_testbed(41, NoiseModel::default());
    // Crash 10% of the peers before the submission.
    let peers: Vec<_> = tb
        .overlay
        .peer_ids()
        .into_iter()
        .filter(|&p| p != tb.submitter)
        .collect();
    let mut rng = rngutil::substream(99, 0);
    let schedule = random_churn(
        &peers,
        0.10,
        SimDuration::from_secs(1),
        SimDuration::from_secs(10_000),
        &mut rng,
    );
    tb.overlay.schedule_churn(schedule.finish());
    tb.overlay.advance(SimDuration::from_secs(2));
    assert!(tb.overlay.alive_count() <= 350 - 30);

    let allocator = CoAllocator::with_params(CoAllocatorParams {
        overbooking: OverbookingPolicy::Factor(1.5),
        ..CoAllocatorParams::default()
    });
    let report = allocator.allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(250, StrategyKind::Spread, "hostname"),
    );
    assert!(report.is_success(), "{:?}", report.outcome);
    assert!(report.dead > 0, "some booked peers must have timed out");
    let alloc = report.allocation();
    assert_eq!(alloc.total_instances(), 250);
    // No dead peer received processes.
    for h in &alloc.hosts {
        assert!(tb.overlay.node(h.peer).is_alive());
    }
}

#[test]
fn dead_peers_are_pruned_from_the_cache_after_a_round() {
    let mut tb = grid5000_testbed(42, NoiseModel::disabled());
    let victims: Vec<_> = tb
        .overlay
        .latency_ranking(tb.submitter)
        .into_iter()
        .take(5)
        .collect();
    for &v in &victims {
        tb.overlay.kill_peer(v);
    }
    let before = tb.overlay.node(tb.submitter).cache.len();
    let report = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(100, StrategyKind::Concentrate, "hostname"),
    );
    assert!(report.is_success());
    assert_eq!(report.dead, 5);
    let after = tb.overlay.node(tb.submitter).cache.len();
    assert_eq!(after, before - 5, "step 5 drops dead peers from the cache");
}

#[test]
fn a_recovered_peer_can_be_used_by_a_later_submission() {
    let mut tb = grid5000_testbed(43, NoiseModel::disabled());
    // The closest non-submitter peer crashes, then recovers later.
    let closest = tb.overlay.latency_ranking(tb.submitter)[0];
    let mut schedule = ChurnSchedule::new();
    schedule.crash(closest, SimTime::from_secs(1));
    schedule.recover(closest, SimTime::from_secs(100));
    tb.overlay.schedule_churn(schedule.finish());

    tb.overlay.advance(SimDuration::from_secs(5));
    let first = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(240, StrategyKind::Concentrate, "hostname"),
    );
    assert!(first.is_success());
    assert_eq!(first.dead, 1);
    assert!(first.allocation().hosts.iter().all(|h| h.peer != closest));
    // Release the first job.
    let key = first.key;
    for h in &first.allocation().hosts {
        tb.overlay.complete_job(h.peer, key);
    }

    // After recovery the peer re-registers; a cache refresh makes it usable.
    tb.overlay.advance(SimDuration::from_secs(200));
    tb.overlay.refresh_cache(tb.submitter);
    tb.overlay.probe_round(tb.submitter);
    let second = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(240, StrategyKind::Concentrate, "hostname"),
    );
    assert!(second.is_success());
    assert!(
        second.allocation().hosts.iter().any(|h| h.peer == closest),
        "the recovered closest peer should be selected again"
    );
}

#[test]
fn consecutive_jobs_respect_the_gatekeeper_limit() {
    let mut tb = grid5000_testbed(44, NoiseModel::disabled());
    // First job takes the whole Nancy site (J = 1 everywhere).
    let first = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(240, StrategyKind::Concentrate, "one"),
    );
    assert!(first.is_success());
    // A second concentrate job of 240 must go entirely off-site.
    let second = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(240, StrategyKind::Concentrate, "two"),
    );
    assert!(second.is_success());
    let nancy = tb.topology.site_by_name("nancy").unwrap().id;
    for h in &second.allocation().hosts {
        assert_ne!(
            tb.topology.host(h.host).site,
            nancy,
            "nancy gatekeepers already host the first application"
        );
    }
    assert!(second.refused >= 1, "busy peers answer NOK");
}
