//! End-to-end tests of the replication-based fault tolerance: the
//! co-allocation keeps replicas on distinct hosts, and the communication
//! library masks replica crashes as long as one copy of each rank survives
//! (Section 3.2).

use p2p_mpi::prelude::*;
use p2pmpi_mpi::datatype::ReduceOp;
use p2pmpi_mpi::placement::Placement;
use std::time::Duration;

fn replicated_allocation(n: u32, r: u32, seed: u64) -> (Grid5000Testbed, Placement) {
    let mut tb = grid5000_testbed(seed, NoiseModel::disabled());
    let report = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::replicated(n, r, StrategyKind::Spread, "resilient"),
    );
    let allocation = report.allocation().clone();
    assert!(allocation.validate().is_ok());
    let placement = Placement::from_allocation(&allocation);
    assert!(placement.validate().is_ok());
    (tb, placement)
}

#[test]
fn coallocation_separates_replicas_across_hosts() {
    let (_, placement) = replicated_allocation(16, 3, 1);
    assert_eq!(placement.total_instances(), 48);
    for rank in 0..16 {
        let hosts: std::collections::HashSet<_> = (0..3)
            .map(|rep| placement.host_of(rank, rep).unwrap())
            .collect();
        assert_eq!(hosts.len(), 3, "rank {rank}: replicas must not share hosts");
    }
}

#[test]
fn one_replica_crash_per_rank_is_masked() {
    let (tb, placement) = replicated_allocation(6, 2, 2);
    let runtime = MpiRuntime::new(tb.topology.clone()).with_recv_timeout(Duration::from_secs(5));
    // Kill the primary copy of half the ranks at various points.
    let plan = FailurePlan::none()
        .kill(0, 0, 0)
        .kill(2, 0, 4)
        .kill(4, 0, 9);
    let result = runtime.run_with_failures(&placement, &plan, |comm| {
        let mut acc = 0i64;
        for _ in 0..4 {
            comm.compute(1.0e5, MemoryIntensity::CPU_BOUND)?;
            let sum = comm.allreduce(ReduceOp::Sum, &[1i64])?;
            acc += sum[0];
        }
        Ok(acc)
    });
    assert!(result.all_ranks_completed(), "{:?}", result.failures());
    assert_eq!(result.failures().len(), 3);
    // Every surviving instance agrees on the same accumulated value.
    let expected = 4 * 6;
    for rank in 0..6 {
        assert_eq!(*result.result_of(rank).unwrap(), expected);
    }
}

#[test]
fn losing_every_replica_of_a_rank_is_fatal() {
    let (tb, placement) = replicated_allocation(4, 2, 3);
    let runtime =
        MpiRuntime::new(tb.topology.clone()).with_recv_timeout(Duration::from_millis(300));
    let plan = FailurePlan::none().kill(1, 0, 0).kill(1, 1, 0);
    let result = runtime.run_with_failures(&placement, &plan, |comm| {
        let sum = comm.allreduce(ReduceOp::Sum, &[1i64])?;
        Ok(sum[0])
    });
    // Rank 1 is gone entirely: the application cannot complete.
    assert!(!result.all_ranks_completed());
    assert!(result.failures().len() >= 2);
}

#[test]
fn ep_survives_a_replica_crash_and_still_verifies() {
    let (tb, placement) = replicated_allocation(4, 2, 4);
    let runtime = MpiRuntime::new(tb.topology.clone()).with_recv_timeout(Duration::from_secs(5));
    let plan = FailurePlan::none().kill(3, 0, 1);
    let config = EpConfig::new(Class::S);
    let result = runtime.run_with_failures(&placement, &plan, move |comm| ep_kernel(comm, &config));
    assert!(result.all_ranks_completed(), "{:?}", result.failures());
    let reference = result.result_of(0).unwrap();
    assert!(reference.verify());
    // The surviving replica of rank 3 reaches the same global result.
    assert_eq!(result.result_of(3).unwrap(), reference);
}

#[test]
fn replication_degree_one_offers_no_protection() {
    let (tb, placement) = replicated_allocation(4, 1, 5);
    let runtime =
        MpiRuntime::new(tb.topology.clone()).with_recv_timeout(Duration::from_millis(300));
    let plan = FailurePlan::none().kill(2, 0, 0);
    let result = runtime.run_with_failures(&placement, &plan, |comm| {
        let sum = comm.allreduce(ReduceOp::Sum, &[1i64])?;
        Ok(sum[0])
    });
    assert!(!result.all_ranks_completed());
}
