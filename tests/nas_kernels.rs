//! Integration tests of the NAS kernels over the MPI runtime: numerical
//! correctness, independence from the process count, and verification at
//! several classes and placements.

use p2p_mpi::prelude::*;
use p2pmpi_mpi::placement::Placement;
use p2pmpi_nas::ep::EpResult;
use p2pmpi_simgrid::topology::{HostId, Topology};
use std::sync::Arc;

fn flat_topology(hosts: usize, cores: usize) -> Arc<Topology> {
    let mut b = TopologyBuilder::new();
    let s = b.add_site("site");
    b.add_cluster(
        s,
        "c",
        "cpu",
        hosts,
        NodeSpec {
            cores,
            ..NodeSpec::default()
        },
    );
    Arc::new(b.build())
}

fn hosts_of(t: &Topology) -> Vec<HostId> {
    t.hosts().iter().map(|h| h.id).collect()
}

fn run_ep(nprocs: u32, class: Class) -> EpResult {
    let topo = flat_topology(nprocs as usize, 2);
    let runtime = MpiRuntime::new(topo.clone());
    let placement = Placement::round_robin(nprocs, &hosts_of(&topo));
    let config = EpConfig::new(class);
    let result = runtime.run(&placement, move |comm| ep_kernel(comm, &config));
    assert!(result.all_ranks_completed(), "{:?}", result.failures());
    result.result_of(0).unwrap().clone()
}

#[test]
fn ep_class_s_verifies_and_is_independent_of_process_count() {
    let with_2 = run_ep(2, Class::S);
    let with_4 = run_ep(4, Class::S);
    let with_7 = run_ep(7, Class::S);
    assert!(with_2.verify());
    // The NPB seed-jumping makes the global sums identical whatever the
    // process count (up to floating-point addition order in the reduction;
    // the annulus counts are exactly equal).
    assert_eq!(with_2.counts, with_4.counts);
    assert_eq!(with_2.counts, with_7.counts);
    assert_eq!(with_2.accepted, with_4.accepted);
    assert!((with_2.sx - with_4.sx).abs() < 1e-6 * with_2.sx.abs().max(1.0));
    assert!((with_2.sy - with_7.sy).abs() < 1e-6 * with_2.sy.abs().max(1.0));
    // Roughly pi/4 of the pairs fall inside the unit circle.
    let acceptance = with_2.accepted as f64 / with_2.generated as f64;
    assert!((acceptance - std::f64::consts::FRAC_PI_4).abs() < 0.01);
}

#[test]
fn ep_all_ranks_agree_on_the_allreduced_result() {
    let topo = flat_topology(4, 2);
    let runtime = MpiRuntime::new(topo.clone());
    let placement = Placement::one_per_host(&hosts_of(&topo));
    let config = EpConfig::new(Class::S);
    let result = runtime.run(&placement, move |comm| ep_kernel(comm, &config));
    let reference = result.result_of(0).unwrap();
    for rank in 1..4 {
        assert_eq!(result.result_of(rank).unwrap(), reference);
    }
}

#[test]
fn is_class_s_sorts_correctly_for_several_process_counts() {
    for &nprocs in &[2u32, 4, 8] {
        let topo = flat_topology(nprocs as usize, 2);
        let runtime = MpiRuntime::new(topo.clone());
        let placement = Placement::round_robin(nprocs, &hosts_of(&topo));
        let config = IsConfig::new(Class::S);
        let result = runtime.run(&placement, move |comm| is_kernel(comm, &config));
        assert!(result.all_ranks_completed(), "{:?}", result.failures());
        for rank in 0..nprocs {
            let r = result.result_of(rank).unwrap();
            assert!(r.verified, "rank {rank} failed verification at P={nprocs}");
            assert_eq!(r.total_keys, Class::S.is_keys());
            assert_eq!(r.iterations, 10);
        }
        // The per-rank key counts add up to the class size.
        let total: u64 = (0..nprocs)
            .map(|rank| result.result_of(rank).unwrap().my_keys)
            .sum();
        assert_eq!(total, Class::S.is_keys());
    }
}

#[test]
fn is_class_w_verifies_with_colocation() {
    // 4 hosts x 4 co-located processes: verification must hold regardless of
    // placement, only the virtual time changes.
    let topo = flat_topology(4, 4);
    let runtime = MpiRuntime::new(topo.clone());
    let placement = Placement::round_robin(16, &hosts_of(&topo));
    let config = IsConfig::sampled(Class::W, 4).with_iterations(5);
    let result = runtime.run(&placement, move |comm| is_kernel(comm, &config));
    assert!(result.all_ranks_completed(), "{:?}", result.failures());
    assert!(result.result_of(0).unwrap().verified);
}

#[test]
fn ep_sampling_preserves_timing_but_not_exact_sums() {
    // The sampled configuration charges the same virtual compute time as the
    // full one (that is its purpose), while executing fewer pairs.
    let topo = flat_topology(4, 2);
    let runtime = MpiRuntime::new(topo.clone());
    let placement = Placement::one_per_host(&hosts_of(&topo));
    let full = EpConfig::new(Class::S);
    let sampled = EpConfig::sampled(Class::S, 8);
    let r_full = runtime.run(&placement, move |comm| ep_kernel(comm, &full));
    let r_sampled = runtime.run(&placement, move |comm| ep_kernel(comm, &sampled));
    let full_res = r_full.result_of(0).unwrap();
    let sampled_res = r_sampled.result_of(0).unwrap();
    assert!(sampled_res.generated < full_res.generated);
    // Identical charged compute -> virtually identical makespans (the only
    // difference is the few bytes of the final allreduce).
    let a = r_full.makespan.as_secs_f64();
    let b = r_sampled.makespan.as_secs_f64();
    assert!((a - b).abs() / a < 1e-3, "makespans diverged: {a} vs {b}");
}

#[test]
fn hostname_kernel_reports_placement() {
    let topo = flat_topology(3, 2);
    let runtime = MpiRuntime::new(topo.clone());
    let hosts = hosts_of(&topo);
    let placement = Placement::one_per_host(&hosts);
    let result = runtime.run(&placement, hostname_kernel);
    assert!(result.all_ranks_completed());
    assert_eq!(result.result_of(0).unwrap().all_hosts, hosts);
}
