//! Integration tests of the *shape* of Figure 4: how the allocation strategy
//! affects EP and IS execution times on the Grid'5000 model.
//!
//! Absolute seconds are not expected to match the 2008 testbed; the
//! qualitative claims of Section 5.2 are what these tests pin down:
//!
//! * EP (compute-bound): spread is at least as fast as concentrate at small
//!   and medium scales (memory contention penalises concentrate), and the
//!   two converge at large scale.
//! * IS (communication-bound): spread wins at 32 processes (everything still
//!   fits in the Nancy cluster, one process per host), concentrate wins from
//!   64 processes on (spread starts paying inter-site latency every
//!   iteration) and stays roughly flat.

use p2p_mpi::prelude::*;
use p2pmpi_mpi::placement::Placement;
use p2pmpi_simgrid::time::SimDuration;

/// Allocates `n` processes with `strategy` on a fresh Grid'5000 testbed and
/// returns the kernel's virtual execution time.
fn run_on_grid<F, T>(n: u32, strategy: StrategyKind, kernel: F) -> (SimDuration, usize)
where
    F: Fn(&mut Comm) -> MpiResult<T> + Send + Sync,
    T: Send,
{
    let mut tb = grid5000_testbed(1000 + n as u64, NoiseModel::disabled());
    let report = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(n, strategy, "kernel"),
    );
    let allocation = report.allocation();
    let placement = Placement::from_allocation(allocation);
    let runtime = MpiRuntime::new(tb.topology.clone());
    let result = runtime.run(&placement, kernel);
    assert!(result.all_ranks_completed(), "{:?}", result.failures());
    (result.makespan, allocation.hosts_used())
}

fn ep_time(n: u32, strategy: StrategyKind) -> SimDuration {
    // Class B sizes with sampling: the charged time is class-accurate.
    let config = EpConfig::sampled(Class::B, 4096);
    run_on_grid(n, strategy, move |comm| ep_kernel(comm, &config)).0
}

fn is_time(n: u32, strategy: StrategyKind) -> SimDuration {
    let config = IsConfig::sampled(Class::B, 64).with_iterations(10);
    run_on_grid(n, strategy, move |comm| is_kernel(comm, &config)).0
}

#[test]
fn ep_spread_is_at_least_as_fast_as_concentrate_up_to_256() {
    for &n in &[32u32, 128] {
        let spread = ep_time(n, StrategyKind::Spread);
        let concentrate = ep_time(n, StrategyKind::Concentrate);
        assert!(
            spread <= concentrate,
            "EP at {n} processes: spread {spread} should not exceed concentrate {concentrate}"
        );
    }
}

#[test]
fn ep_gap_narrows_at_512_processes() {
    // "With 512 processes ... the overheads related to memory and
    // communications seem to reach an equilibrium at this point."
    let spread_128 = ep_time(128, StrategyKind::Spread);
    let conc_128 = ep_time(128, StrategyKind::Concentrate);
    let spread_512 = ep_time(512, StrategyKind::Spread);
    let conc_512 = ep_time(512, StrategyKind::Concentrate);
    let gap_128 = conc_128.as_secs_f64() / spread_128.as_secs_f64();
    let gap_512 = conc_512.as_secs_f64() / spread_512.as_secs_f64();
    assert!(
        gap_512 < gap_128,
        "the relative advantage of spread must shrink: {gap_128:.3} -> {gap_512:.3}"
    );
    // And EP keeps scaling: more processes, less time.
    assert!(spread_512 < spread_128);
    assert!(conc_512 < conc_128);
}

#[test]
fn is_spread_wins_at_32_processes() {
    // All 32 spread processes stay in the Nancy cluster with one process per
    // host, so they pay neither WAN latency nor memory contention.
    let spread = is_time(32, StrategyKind::Spread);
    let concentrate = is_time(32, StrategyKind::Concentrate);
    assert!(
        spread < concentrate,
        "IS at 32: spread {spread} should beat concentrate {concentrate}"
    );
}

#[test]
fn is_concentrate_wins_from_64_processes_on() {
    for &n in &[64u32, 128] {
        let spread = is_time(n, StrategyKind::Spread);
        let concentrate = is_time(n, StrategyKind::Concentrate);
        assert!(
            concentrate < spread,
            "IS at {n}: concentrate {concentrate} should beat spread {spread}"
        );
    }
}

#[test]
fn is_concentrate_stays_roughly_flat_while_spread_degrades() {
    // "Keeping the processes inside the cluster with concentrate gives a
    // roughly constant execution time", while spread slows down once it
    // leaves the cluster.
    let conc_32 = is_time(32, StrategyKind::Concentrate);
    let conc_128 = is_time(128, StrategyKind::Concentrate);
    let spread_32 = is_time(32, StrategyKind::Spread);
    let spread_128 = is_time(128, StrategyKind::Spread);
    let conc_ratio = conc_128.as_secs_f64() / conc_32.as_secs_f64();
    let spread_ratio = spread_128.as_secs_f64() / spread_32.as_secs_f64();
    assert!(
        conc_ratio < 2.0,
        "concentrate should stay within 2x of its 32-process time, got {conc_ratio:.2}x"
    );
    assert!(
        spread_ratio > conc_ratio,
        "spread must degrade faster than concentrate ({spread_ratio:.2}x vs {conc_ratio:.2}x)"
    );
}

#[test]
fn ep_uses_the_placement_the_strategy_produced() {
    let config = EpConfig::sampled(Class::B, 65536);
    let (_, spread_hosts) = run_on_grid(64, StrategyKind::Spread, move |comm| {
        ep_kernel(comm, &config)
    });
    let (_, conc_hosts) = run_on_grid(64, StrategyKind::Concentrate, move |comm| {
        ep_kernel(comm, &config)
    });
    assert_eq!(spread_hosts, 64, "spread: one process per host");
    assert_eq!(
        conc_hosts, 16,
        "concentrate: 64 processes on 16 quad-core nancy nodes"
    );
}
