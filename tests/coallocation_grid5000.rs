//! Integration tests of the co-allocation experiment of Section 5.1 /
//! Figures 2 and 3: where do processes land on the Grid'5000 model under
//! each strategy, as the demanded process count grows?

use p2p_mpi::prelude::*;
use p2pmpi_core::stats::{total_hosts, total_processes, usage_by_site};
use p2pmpi_grid5000::scenario::allocate_on;

fn nancy_usage(usage: &[p2pmpi_core::stats::SiteUsage]) -> (usize, u64) {
    let nancy = usage.iter().find(|u| u.site_name == "nancy").unwrap();
    (nancy.hosts, nancy.processes)
}

#[test]
fn concentrate_up_to_200_processes_stays_at_nancy() {
    // Figure 2: "the processes are allocated on the 60 hosts available at
    // nancy only, up to 200 processes".
    for &n in &[100u32, 150, 200] {
        let mut tb = grid5000_testbed(n as u64, NoiseModel::default());
        let (report, row) = allocate_on(&mut tb, n, StrategyKind::Concentrate);
        assert!(report.is_success());
        assert!(row.success);
        let (_, nancy_procs) = nancy_usage(&row.usage);
        assert_eq!(nancy_procs, n as u64, "all {n} processes stay at nancy");
        assert_eq!(total_processes(&row.usage), n as u64);
    }
}

#[test]
fn concentrate_beyond_240_spills_to_the_closest_site_first() {
    // Figure 2: past Nancy's 240 cores, "further hosts are first allocated at
    // lyon (5 for -n 250), as expected with respect to the RTT ranking".
    // (Probe noise disabled: with noise the paper itself observes that the
    // Lyon/Rennes/Bordeaux ranking can interleave.)
    let mut tb = grid5000_testbed(77, NoiseModel::disabled());
    let (report, row) = allocate_on(&mut tb, 250, StrategyKind::Concentrate);
    assert!(report.is_success());
    let (nancy_hosts, nancy_procs) = nancy_usage(&row.usage);
    assert_eq!(nancy_hosts, 60, "every nancy host is filled");
    assert_eq!(nancy_procs, 240, "nancy contributes all of its cores");
    let lyon = row.usage.iter().find(|u| u.site_name == "lyon").unwrap();
    assert_eq!(lyon.processes, 10, "the overflow lands at lyon");
    assert_eq!(lyon.hosts, 5, "5 dual-core lyon hosts, as in the paper");
    // Nothing farther than lyon is touched.
    for site in ["bordeaux", "grenoble", "sophia"] {
        let u = row.usage.iter().find(|u| u.site_name == site).unwrap();
        assert_eq!(u.processes, 0, "{site} must stay empty at n=250");
    }
}

#[test]
fn concentrate_spill_order_follows_rtt_ranking_without_noise() {
    // With probe noise disabled the spill order must be exactly the RTT
    // ranking: nancy, lyon, rennes, bordeaux, grenoble, sophia.
    let mut tb = grid5000_testbed(3, NoiseModel::disabled());
    let (report, row) = allocate_on(&mut tb, 600, StrategyKind::Concentrate);
    assert!(report.is_success());
    // 600 processes = 240 (nancy) + 100 (lyon) + 180 (rennes) + 80 at
    // bordeaux; grenoble and sophia stay empty.
    let by_name = |name: &str| {
        row.usage
            .iter()
            .find(|u| u.site_name == name)
            .unwrap()
            .processes
    };
    assert_eq!(by_name("nancy"), 240);
    assert_eq!(by_name("lyon"), 100);
    assert_eq!(by_name("rennes"), 180);
    assert_eq!(by_name("bordeaux"), 80);
    assert_eq!(by_name("grenoble"), 0);
    assert_eq!(by_name("sophia"), 0);
}

#[test]
fn spread_places_one_process_per_host_while_hosts_remain() {
    // Figure 3: spread keeps "the load on each peer to only one process"
    // while enough hosts exist (350 in total).
    for &n in &[100u32, 250, 350] {
        let mut tb = grid5000_testbed(n as u64 + 1, NoiseModel::default());
        let (report, row) = allocate_on(&mut tb, n, StrategyKind::Spread);
        assert!(report.is_success());
        assert_eq!(total_hosts(&row.usage), n as usize);
        assert_eq!(total_processes(&row.usage), n as u64);
        let alloc = report.allocation();
        assert!(alloc.hosts.iter().all(|h| h.instances() == 1));
    }
}

#[test]
fn spread_shows_the_stair_once_hosts_are_exhausted() {
    // Figure 3: "the number of cores allocated at nancy makes a stair at 400
    // processes since there are not enough hosts (350) to map one process per
    // host and the closest peers are first chosen to host a second process".
    let mut tb = grid5000_testbed(9, NoiseModel::default());
    let (report, row) = allocate_on(&mut tb, 400, StrategyKind::Spread);
    assert!(report.is_success());
    // All 350 hosts are in use...
    assert_eq!(total_hosts(&row.usage), 350);
    assert_eq!(total_processes(&row.usage), 400);
    // ...and the 50 extra processes all landed at the closest site (nancy),
    // whose quad-core hosts have spare capacity.
    let (nancy_hosts, nancy_procs) = nancy_usage(&row.usage);
    assert_eq!(nancy_hosts, 60);
    assert_eq!(nancy_procs, 110, "60 hosts + 50 second processes");
}

#[test]
fn spread_uses_every_peer_it_discovers_at_600() {
    let mut tb = grid5000_testbed(10, NoiseModel::default());
    let (report, row) = allocate_on(&mut tb, 600, StrategyKind::Spread);
    assert!(report.is_success());
    assert_eq!(total_hosts(&row.usage), 350, "spread tends to use them all");
    assert_eq!(total_processes(&row.usage), 600);
    // Every site participates.
    assert!(row.usage.iter().all(|u| u.hosts > 0));
}

#[test]
fn demands_beyond_the_grid_capacity_fail_feasibility() {
    let mut tb = grid5000_testbed(11, NoiseModel::default());
    let report = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(1041, StrategyKind::Concentrate, "hostname"),
    );
    assert!(!report.is_success());
    // And nothing is left reserved afterwards.
    for peer in tb.overlay.peer_ids() {
        assert_eq!(tb.overlay.node(peer).rs.active_applications(), 0);
    }
}

#[test]
fn balanced_strategy_sits_between_the_two_extremes() {
    let n = 300u32;
    let hosts_of = |strategy: StrategyKind, seed: u64| {
        let mut tb = grid5000_testbed(seed, NoiseModel::disabled());
        let (report, row) = allocate_on(&mut tb, n, strategy);
        assert!(report.is_success());
        (
            total_hosts(&row.usage),
            usage_by_site(report.allocation(), &tb.topology),
        )
    };
    let (concentrate_hosts, _) = hosts_of(StrategyKind::Concentrate, 21);
    let (spread_hosts, _) = hosts_of(StrategyKind::Spread, 22);
    let (balanced_hosts, _) = hosts_of(StrategyKind::Balanced { max_per_host: 2 }, 23);
    assert!(concentrate_hosts < balanced_hosts);
    assert!(balanced_hosts <= spread_hosts);
}

#[test]
fn allocation_reports_account_for_every_booked_peer() {
    let mut tb = grid5000_testbed(33, NoiseModel::default());
    let report = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(200, StrategyKind::Spread, "hostname"),
    );
    assert!(report.is_success());
    assert_eq!(report.granted + report.refused + report.dead, report.booked);
    assert!(report.booked >= 200);
    let alloc = report.allocation();
    assert!(alloc.validate().is_ok());
    assert_eq!(alloc.total_instances(), 200);
}
