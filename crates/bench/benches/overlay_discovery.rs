//! Benchmarks of the overlay's discovery path: supernode cache refresh and
//! the latency-probing rounds the submitter performs before booking
//! (Section 4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use p2pmpi_grid5000::testbed::{grid5000_testbed, grid5000_topology};
use p2pmpi_overlay::boot::OverlayBuilder;
use p2pmpi_simgrid::noise::NoiseModel;
use std::hint::black_box;

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_discovery");
    group.sample_size(10);

    group.bench_function("boot_and_register_350_peers", |b| {
        let topology = grid5000_topology();
        b.iter(|| {
            let mut overlay = OverlayBuilder::new(topology.clone())
                .seed(1)
                .peer_per_host_with_core_capacity()
                .build();
            overlay.boot_all();
            black_box(overlay.supernode().len())
        });
    });

    group.bench_function("probe_round_349_peers", |b| {
        let mut tb = grid5000_testbed(3, NoiseModel::default());
        let submitter = tb.submitter;
        b.iter(|| black_box(tb.overlay.probe_round(submitter)));
    });

    group.bench_function("latency_ranking_350_peers", |b| {
        let tb = grid5000_testbed(3, NoiseModel::default());
        b.iter(|| black_box(tb.overlay.latency_ranking(tb.submitter).len()));
    });

    group.finish();
}

criterion_group!(benches, bench_bootstrap);
criterion_main!(benches);
