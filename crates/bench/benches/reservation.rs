//! Benchmarks of the full co-allocation procedure (Section 4.2) on the
//! Grid'5000 testbed, including the overbooking ablation called out in
//! DESIGN.md and the `job_sweep` hot-path benchmark: Poisson-arriving job
//! submissions against a warm 350-host cache, with tracing on and off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pmpi_bench::workload::PoissonArrivals;
use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::testbed::grid5000_testbed;
use p2pmpi_simgrid::noise::NoiseModel;
use std::hint::black_box;

fn bench_coallocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("coallocation");
    group.sample_size(10);

    for &n in &[100u32, 300, 600] {
        for strategy in [StrategyKind::Concentrate, StrategyKind::Spread] {
            group.bench_with_input(BenchmarkId::new(strategy.name(), n), &n, |b, &n| {
                b.iter_batched(
                    || grid5000_testbed(11, NoiseModel::default()),
                    |mut tb| {
                        let report = allocate(
                            &mut tb.overlay,
                            tb.submitter,
                            &JobRequest::new(n, strategy, "hostname"),
                        );
                        black_box(report.is_success())
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_overbooking_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("overbooking");
    group.sample_size(10);
    let policies = [
        ("none", OverbookingPolicy::None),
        ("factor_1.5", OverbookingPolicy::Factor(1.5)),
        ("additive_50", OverbookingPolicy::Additive(50)),
    ];
    for (name, policy) in policies {
        group.bench_function(BenchmarkId::new("spread_300", name), |b| {
            b.iter_batched(
                || grid5000_testbed(13, NoiseModel::default()),
                |mut tb| {
                    let allocator = CoAllocator::with_params(CoAllocatorParams {
                        overbooking: policy,
                        ..CoAllocatorParams::default()
                    });
                    let report = allocator.allocate(
                        &mut tb.overlay,
                        tb.submitter,
                        &JobRequest::new(300, StrategyKind::Spread, "hostname"),
                    );
                    black_box(report.booked)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// The hot path at sweep scale: a warm 350-host testbed receives a stream of
/// Poisson-arriving jobs; each job books, brokers, allocates, runs and
/// completes.  The cache is never re-sorted (incremental index), the
/// allocator reuses its scratch buffers, and — in the `tracing_off` variant —
/// no trace message is ever formatted.
fn bench_job_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("job_sweep");
    group.sample_size(10);

    const JOBS_PER_ITER: usize = 20;
    for (label, tracing) in [("tracing_off", false), ("tracing_on", true)] {
        group.bench_function(BenchmarkId::new("poisson_100proc", label), |b| {
            let mut tb = grid5000_testbed(17, NoiseModel::disabled());
            tb.overlay.tracer().set_enabled(tracing);
            let allocator = CoAllocator::new();
            let request = JobRequest::new(100, StrategyKind::Concentrate, "hostname");
            // Mean inter-arrival of 30 s of virtual time (a busy submitter).
            let mut arrivals = PoissonArrivals::new(1.0 / 30.0, 23);
            b.iter(|| {
                let mut successes = 0usize;
                for _ in 0..JOBS_PER_ITER {
                    tb.overlay.advance(arrivals.next_gap());
                    let report = allocator.allocate(&mut tb.overlay, tb.submitter, &request);
                    if let Ok(alloc) = &report.outcome {
                        successes += 1;
                        for h in &alloc.hosts {
                            tb.overlay.complete_job(h.peer, report.key);
                        }
                    }
                }
                // Keep the trace buffer bounded across samples.
                tb.overlay.tracer().clear();
                black_box(successes)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coallocation,
    bench_overbooking_policies,
    bench_job_sweep
);
criterion_main!(benches);
