//! Benchmarks of the full co-allocation procedure (Section 4.2) on the
//! Grid'5000 testbed, including the overbooking ablation called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::testbed::grid5000_testbed;
use p2pmpi_simgrid::noise::NoiseModel;
use std::hint::black_box;

fn bench_coallocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("coallocation");
    group.sample_size(10);

    for &n in &[100u32, 300, 600] {
        for strategy in [StrategyKind::Concentrate, StrategyKind::Spread] {
            group.bench_with_input(BenchmarkId::new(strategy.name(), n), &n, |b, &n| {
                b.iter_batched(
                    || grid5000_testbed(11, NoiseModel::default()),
                    |mut tb| {
                        let report = allocate(
                            &mut tb.overlay,
                            tb.submitter,
                            &JobRequest::new(n, strategy, "hostname"),
                        );
                        black_box(report.is_success())
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_overbooking_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("overbooking");
    group.sample_size(10);
    let policies = [
        ("none", OverbookingPolicy::None),
        ("factor_1.5", OverbookingPolicy::Factor(1.5)),
        ("additive_50", OverbookingPolicy::Additive(50)),
    ];
    for (name, policy) in policies {
        group.bench_function(BenchmarkId::new("spread_300", name), |b| {
            b.iter_batched(
                || grid5000_testbed(13, NoiseModel::default()),
                |mut tb| {
                    let allocator = CoAllocator::with_params(CoAllocatorParams {
                        overbooking: policy,
                        ..CoAllocatorParams::default()
                    });
                    let report = allocator.allocate(
                        &mut tb.overlay,
                        tb.submitter,
                        &JobRequest::new(300, StrategyKind::Spread, "hostname"),
                    );
                    black_box(report.booked)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coallocation, bench_overbooking_policies);
criterion_main!(benches);
