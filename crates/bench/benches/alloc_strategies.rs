//! Micro-benchmarks of the allocation strategies themselves (the pure
//! distribution and rank-assignment algorithms of Section 4.3), at the scale
//! of the paper's largest experiment: 600 processes over the 350 Grid'5000
//! hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pmpi_core::rank::assign_ranks;
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_grid5000::testbed::grid5000_topology;
use std::hint::black_box;

/// Capacities of the 350 Grid'5000 hosts (P = cores per node), capped at n.
fn grid_capacities(n: u32) -> Vec<u32> {
    grid5000_topology()
        .hosts()
        .iter()
        .map(|h| (h.cores as u32).min(n))
        .collect()
}

fn bench_distribute(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_distribute");
    for &n in &[100u32, 300, 600] {
        let caps = grid_capacities(n);
        for strategy in [StrategyKind::Spread, StrategyKind::Concentrate] {
            group.bench_with_input(BenchmarkId::new(strategy.name(), n), &n, |b, &n| {
                b.iter(|| strategy.distribute(black_box(&caps), black_box(n)));
            });
        }
        group.bench_with_input(BenchmarkId::new("balanced_2", n), &n, |b, &n| {
            let strategy = StrategyKind::Balanced { max_per_host: 2 };
            b.iter(|| strategy.distribute(black_box(&caps), black_box(n)));
        });
    }
    group.finish();
}

fn bench_rank_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_assignment");
    for &(n, r) in &[(600u32, 1u32), (300, 2)] {
        let caps = grid_capacities(n);
        let counts = StrategyKind::Spread.distribute(&caps, n * r);
        group.bench_with_input(
            BenchmarkId::new("spread_counts", format!("n{n}_r{r}")),
            &n,
            |b, &n| {
                b.iter(|| assign_ranks(black_box(&counts), black_box(n)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_distribute, bench_rank_assignment
}
criterion_main!(benches);
