//! Benchmarks of the MPI runtime itself: how fast the simulation executes
//! collectives (wall-clock cost of reproducing one Figure 4 point), for both
//! a local and a cross-site placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pmpi_grid5000::testbed::grid5000_topology;
use p2pmpi_mpi::datatype::ReduceOp;
use p2pmpi_mpi::placement::Placement;
use p2pmpi_mpi::runtime::MpiRuntime;
use p2pmpi_nas::classes::Class;
use p2pmpi_nas::ep::{ep_kernel, EpConfig};
use p2pmpi_nas::is::{is_kernel, IsConfig};
use p2pmpi_simgrid::topology::HostId;
use std::hint::black_box;

fn nancy_hosts(count: usize) -> Vec<HostId> {
    let topo = grid5000_topology();
    let nancy = topo.site_by_name("nancy").unwrap().id;
    topo.hosts_at_site(nancy)
        .take(count)
        .map(|h| h.id)
        .collect()
}

fn mixed_hosts(count: usize) -> Vec<HostId> {
    let topo = grid5000_topology();
    let per_site: Vec<Vec<HostId>> = topo
        .sites()
        .iter()
        .map(|s| topo.hosts_at_site(s.id).map(|h| h.id).collect())
        .collect();
    let mut hosts: Vec<HostId> = Vec::new();
    let mut i = 0;
    while hosts.len() < count {
        for site in &per_site {
            if hosts.len() == count {
                break;
            }
            if let Some(&h) = site.get(i) {
                hosts.push(h);
            }
        }
        i += 1;
    }
    hosts
}

fn bench_collectives(c: &mut Criterion) {
    let topo = grid5000_topology();
    let runtime = MpiRuntime::new(topo);
    let mut group = c.benchmark_group("collectives_runtime");
    group.sample_size(10);

    for (label, hosts) in [("local_32", nancy_hosts(32)), ("wan_32", mixed_hosts(32))] {
        let placement = Placement::one_per_host(&hosts);
        group.bench_function(BenchmarkId::new("allreduce_x32", label), |b| {
            b.iter(|| {
                let result = runtime.run(&placement, |comm| {
                    for _ in 0..32 {
                        comm.allreduce(ReduceOp::Sum, &[comm.rank() as i64])?;
                    }
                    Ok(())
                });
                black_box(result.makespan)
            });
        });
        group.bench_function(BenchmarkId::new("alltoall_x8", label), |b| {
            b.iter(|| {
                let result = runtime.run(&placement, |comm| {
                    let block = vec![comm.rank() as i32; comm.size() as usize * 16];
                    for _ in 0..8 {
                        comm.alltoall(&block)?;
                    }
                    Ok(())
                });
                black_box(result.makespan)
            });
        });
    }
    group.finish();
}

fn bench_nas_points(c: &mut Criterion) {
    let topo = grid5000_topology();
    let runtime = MpiRuntime::new(topo);
    let mut group = c.benchmark_group("nas_kernels");
    group.sample_size(10);

    let placement = Placement::one_per_host(&nancy_hosts(32));
    group.bench_function("ep_class_s_32procs", |b| {
        let config = EpConfig::new(Class::S);
        b.iter(|| {
            let result = runtime.run(&placement, move |comm| ep_kernel(comm, &config));
            black_box(result.makespan)
        });
    });
    group.bench_function("is_class_s_32procs", |b| {
        let config = IsConfig::new(Class::S);
        b.iter(|| {
            let result = runtime.run(&placement, move |comm| is_kernel(comm, &config));
            black_box(result.makespan)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_collectives, bench_nas_points);
criterion_main!(benches);
