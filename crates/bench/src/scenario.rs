//! The fault-injection scenario matrix: named adversity specs compiled onto
//! the day-sweep timeline, each judged against explicit graceful-degradation
//! criteria.
//!
//! Where `workload` provides the *mechanisms* (a [`FaultSpec`] vocabulary and
//! a driver that schedules them), this module provides the *policy*: a fixed
//! matrix of named scenarios ([`Scenario`]), one [`DaySweepConfig`] per
//! scenario, and a [`ScenarioVerdict`] that states whether the overlay
//! degraded gracefully — not merely whether it survived.  The
//! `scenario_runner` binary prints one JSON verdict per scenario and exits
//! non-zero on any failure; `perf_report`'s `scenario_matrix` section runs
//! the same matrix compressed as a CI gate.
//!
//! # The fault-event contract
//!
//! Every fault is an event (or a trace transform) with documented semantics
//! the verdicts rely on:
//!
//! * **Revocation ordering** — a peer crash first mass-revokes the doomed
//!   completions of its running jobs (one `cancel_batch` over their event
//!   keys, when `fail_jobs_on_crash` is on), freeing every participant
//!   *before* any later event observes the dead peer.  A revoked completion
//!   is never delivered; `jobs_killed` counts the revocations.
//! * **Site outages** are correlated: all peers of the site crash at the
//!   same instant and recover together (`site_outage_schedule`), unlike the
//!   independent flapping of [`DeadPeerChurn`].  The submitter is always
//!   spared — its host doubles as the supernode's.
//! * **Supernode degraded mode** — a supernode crash wipes the volatile
//!   registry.  While it is down, cache refreshes return empty (the
//!   submitter keeps brokering from its stale `CachedList` instead of
//!   halting) and heartbeats are no-ops; on recovery, the next heartbeat
//!   round re-registers every alive peer the registry no longer knows (the
//!   resync path).
//! * **Link degradation** applies to transfers *scheduled* during the
//!   window; in-flight events keep the cost they were scheduled with.  A
//!   degradation severe enough that a reservation reply loses the 2 s race
//!   to its timeout exercises the grant-leak path: the grant is counted in
//!   `leaked_grants` and eagerly released one transfer later, so the
//!   high-water mark of outstanding leaks (`leaked_grant_hwm`) stays far
//!   below the total.
//! * **Flash crowds** are pure trace transforms ([`DayProfile::with_burst`])
//!   applied before the trace is drawn; they never touch the overlay.
//!
//! # The verdict schema
//!
//! [`ScenarioVerdict::to_json`] renders one object per scenario:
//!
//! ```json
//! {
//!   "scenario": "site_outage",
//!   "passed": true,
//!   "metrics": { "submitted": 1085, "succeeded": 934, "failed": 151,
//!                "timeouts": 412, "jobs_killed": 17, "leaked_grants": 0,
//!                "leaked_grant_hwm": 0, "events_processed": 123456,
//!                "steady_state_alloc_free": true },
//!   "baseline": { "submitted": 1085, "succeeded": 1012, "failed": 73,
//!                 "timeouts": 0 },
//!   "recovery_secs": 120.0,
//!   "checks": [ { "name": "utilisation_recovers", "passed": true,
//!                 "detail": "..." } ]
//! }
//! ```
//!
//! `baseline` is the scenario's no-fault twin (same seed, same trace where
//! the fault does not reshape arrivals) and is `null` for scenarios judged
//! on absolute criteria; `recovery_secs` is `null` when the scenario has no
//! outage window.
//!
//! [`DayProfile::with_burst`]: crate::workload::DayProfile::with_burst
//! [`DeadPeerChurn`]: crate::workload::DeadPeerChurn

use crate::workload::{
    run_day_sweep, DaySweepConfig, DaySweepResult, DeadPeerChurn, FaultSpec, JobMix,
};
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_simgrid::event::QueueKind;
use p2pmpi_simgrid::time::SimDuration;

/// Knobs shared by every scenario of a matrix run.
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// Time compression of the day (1.0 = the full 86,400 s day).  Fault
    /// windows compress with it; the 2 s `rs_timeout` protocol constant
    /// does not.
    pub compress: f64,
    /// Arrival-rate multiplier (0.05 ≈ 1.1k jobs/day, the smoke scale).
    pub rate_scale: f64,
    /// Master seed (arrivals, job mix, testbed noise, churn phases).
    pub seed: u64,
    /// Queue structure backing the timeline.  Outcomes are bit-identical
    /// across kinds (pinned by `tests/day_sweep.rs`); this only matters for
    /// wall time.
    pub queue: QueueKind,
    /// Optional allocation-strategy override applied to every scenario
    /// (and its no-fault twin).  `None` keeps each scenario's authored
    /// strategy.  [`StrategyKind::Searched`] puts the online placement
    /// search under fault pressure: the graceful-degradation gates must
    /// hold there exactly as they do for the fixed strategies.
    pub strategy: Option<StrategyKind>,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            compress: 1.0,
            rate_scale: 0.05,
            seed: 2008,
            queue: QueueKind::Ladder,
            strategy: None,
        }
    }
}

/// Minimum success share of the no-fault baseline day.  Calibrated at the
/// CI scale (compress 24, rate scale 0.05, seed 2008), where holds do not
/// compress with the day and burst-hour refusals are real: the observed
/// share is ~0.77 there and ~0.9+ on the uncompressed day.
const BASELINE_SUCCESS_MIN: f64 = 0.70;
/// Minimum success share under brutal dead-peer flapping (mirrors the
/// `day_sweep` integration test's bound).
const DEAD_PEER_SUCCESS_MIN: f64 = 0.25;
/// Post-recovery utilisation must reach this share of the no-fault twin's
/// (the "within 5%" acceptance bound).
const RECOVERY_UTILISATION_RATIO: f64 = 0.95;
/// Success share a site-outage day must retain vs its no-fault twin.
const SITE_OUTAGE_SUCCESS_VS_BASELINE: f64 = 0.60;
/// Success share of submitted jobs a 10x flash crowd must still place
/// (the burst nearly doubles the day's arrivals against fixed capacity, so
/// refusals are expected — collapse is not; observed ~0.47 at CI scale).
const FLASH_CROWD_SUCCESS_MIN: f64 = 0.40;
/// Success share a mild link-degradation day must retain vs its twin.
const SLOW_LINKS_SUCCESS_VS_BASELINE: f64 = 0.90;
/// Success share a supernode-crash day must retain vs its twin (the
/// degraded-mode acceptance bound: stale-view brokering, not a halt).
const SUPERNODE_SUCCESS_VS_BASELINE: f64 = 0.90;

/// The named scenarios of the matrix, in the order the runner executes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// The standard no-fault day: the absolute reference.  Gates that the
    /// steady state is allocation-free and — the grant-leak invariant —
    /// that `leaked_grants` stays exactly 0.
    BaselineDay,
    /// Independent dead-peer flapping ([`DaySweepConfig::dead_peer_day`]):
    /// timeouts must fire *and* most of the day must still place.
    DeadPeerDay,
    /// A correlated outage takes all of Rennes down for two hours mid-burst
    /// (running jobs are killed); utilisation must dip and then recover to
    /// within 5% of the no-fault twin.
    SiteOutage,
    /// A 10x arrival burst spliced into the late morning; the overlay must
    /// absorb it (bounded refusals, no storage growth past the high-water
    /// mark).
    FlashCrowd,
    /// A 5x latency degradation on the Rennes links for three hours:
    /// graceful slowdown — replies still win their timeout races, so no
    /// grants leak and throughput barely moves.
    SlowLinks,
    /// The supernode crashes for three hours while peers flap: the
    /// submitter must keep brokering from its stale cached view (degraded
    /// mode) and the registry must resync on recovery.
    SupernodeCrash,
    /// A 200x latency degradation on the Sophia links while every job
    /// demands hosts there: reservation replies systematically lose the 2 s
    /// race, hammering the reply-loses-race path.  Grants must leak — and
    /// must be eagerly reclaimed (high-water mark far below the total).
    GrantLeakStress,
}

/// Every scenario, in matrix order.
pub const ALL_SCENARIOS: [Scenario; 7] = [
    Scenario::BaselineDay,
    Scenario::DeadPeerDay,
    Scenario::SiteOutage,
    Scenario::FlashCrowd,
    Scenario::SlowLinks,
    Scenario::SupernodeCrash,
    Scenario::GrantLeakStress,
];

const fn hours(h: u64) -> SimDuration {
    SimDuration::from_secs(h * 3600)
}

impl Scenario {
    /// The scenario's stable name (CLI argument, JSON `scenario` field).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::BaselineDay => "baseline_day",
            Scenario::DeadPeerDay => "dead_peer_day",
            Scenario::SiteOutage => "site_outage",
            Scenario::FlashCrowd => "flash_crowd",
            Scenario::SlowLinks => "slow_links",
            Scenario::SupernodeCrash => "supernode_crash",
            Scenario::GrantLeakStress => "grant_leak_stress",
        }
    }

    /// Parses a scenario name as the runner's `--scenario` flag spells it.
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_SCENARIOS.iter().copied().find(|s| s.name() == name)
    }

    /// One-line description for the runner's usage text.
    pub fn summary(self) -> &'static str {
        match self {
            Scenario::BaselineDay => "the no-fault day; gates leaked_grants == 0",
            Scenario::DeadPeerDay => "independent dead-peer flapping; timeouts must fire",
            Scenario::SiteOutage => "all of Rennes down 2h; utilisation must recover",
            Scenario::FlashCrowd => "10x arrival burst; must absorb without storage growth",
            Scenario::SlowLinks => "5x Rennes latency; graceful slowdown, no leaks",
            Scenario::SupernodeCrash => "supernode down 3h; stale-view brokering must continue",
            Scenario::GrantLeakStress => "200x Sophia latency; grants must leak and be reclaimed",
        }
    }

    /// Whether the verdict compares against a no-fault twin run.
    fn needs_baseline(self) -> bool {
        matches!(
            self,
            Scenario::SiteOutage
                | Scenario::FlashCrowd
                | Scenario::SlowLinks
                | Scenario::SupernodeCrash
        )
    }

    /// The scenario's sweep configuration at `params` scale.  Fault times
    /// are authored on the uncompressed day and compressed along with the
    /// profile, churn cycle and sample cadence.
    pub fn config(self, params: &ScenarioParams) -> DaySweepConfig {
        let mut cfg = match self {
            Scenario::BaselineDay => DaySweepConfig::new(StrategyKind::Concentrate),
            Scenario::DeadPeerDay => DaySweepConfig::dead_peer_day(StrategyKind::Concentrate),
            Scenario::SiteOutage => {
                // Spread with a large-rank palette so Rennes (third in the
                // submitter's latency order) genuinely carries work the
                // outage can take away.
                let mut cfg = DaySweepConfig::new(StrategyKind::Spread);
                cfg.mix = JobMix {
                    ranks: vec![32, 128, 256],
                    ..JobMix::default()
                };
                cfg.faults = vec![FaultSpec::SiteOutage {
                    site: "rennes".to_string(),
                    at: hours(9),
                    duration: hours(2),
                }];
                cfg.fail_jobs_on_crash = true;
                cfg
            }
            Scenario::FlashCrowd => {
                let mut cfg = DaySweepConfig::new(StrategyKind::Concentrate);
                cfg.faults = vec![FaultSpec::FlashCrowd {
                    at: hours(10),
                    duration: hours(1),
                    factor: 10.0,
                }];
                cfg
            }
            Scenario::SlowLinks => {
                let mut cfg = DaySweepConfig::new(StrategyKind::Spread);
                cfg.mix = JobMix {
                    ranks: vec![32, 128, 256],
                    ..JobMix::default()
                };
                cfg.faults = vec![FaultSpec::SlowLinks {
                    site: "rennes".to_string(),
                    at: hours(9),
                    duration: hours(3),
                    latency_factor: 5.0,
                }];
                cfg
            }
            Scenario::SupernodeCrash => {
                // Mild flapping makes the registry load-bearing: without
                // refreshes the submitter's view goes stale, which is
                // exactly the degraded mode under test.
                let mut cfg = DaySweepConfig::dead_peer_day(StrategyKind::Concentrate);
                cfg.churn = Some(DeadPeerChurn {
                    fraction: 0.10,
                    ..DeadPeerChurn::default()
                });
                cfg.faults = vec![FaultSpec::SupernodeOutage {
                    at: hours(9),
                    duration: hours(3),
                }];
                cfg
            }
            Scenario::GrantLeakStress => {
                // Every job demands 300 hosts under spread, which forces
                // bookings into Sophia — whose replies, at 200x latency,
                // systematically lose the 2 s race to their timeouts.
                let mut cfg = DaySweepConfig::new(StrategyKind::Spread);
                cfg.mix = JobMix {
                    ranks: vec![300],
                    ..JobMix::default()
                };
                cfg.faults = vec![FaultSpec::SlowLinks {
                    site: "sophia".to_string(),
                    at: hours(1),
                    duration: hours(22),
                    latency_factor: 200.0,
                }];
                cfg
            }
        };
        cfg.seed = params.seed;
        cfg.queue = params.queue;
        if let Some(strategy) = params.strategy {
            cfg.strategy = strategy;
        }
        if params.compress > 1.0 {
            cfg = cfg.compress(params.compress);
        }
        cfg.profile = cfg.profile.scaled(params.rate_scale);
        cfg
    }
}

/// One pass/fail criterion of a verdict.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Stable criterion name.
    pub name: &'static str,
    /// Whether the criterion held.
    pub passed: bool,
    /// Human-readable evidence (measured values and the bound).
    pub detail: String,
}

impl CheckOutcome {
    fn new(name: &'static str, passed: bool, detail: String) -> Self {
        CheckOutcome {
            name,
            passed,
            detail,
        }
    }
}

/// The judged outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioVerdict {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// The faulted run's full result.
    pub result: DaySweepResult,
    /// The no-fault twin (same seed and scale), when the scenario's
    /// criteria are relative.
    pub baseline: Option<DaySweepResult>,
    /// Seconds from the end of the scenario's outage window until total
    /// utilisation first regained [`RECOVERY_UTILISATION_RATIO`] of the
    /// twin's, on the sample grid.  `None` when the scenario has no outage
    /// window or recovery never happened.
    pub recovery_secs: Option<f64>,
    /// Every criterion with its evidence.
    pub checks: Vec<CheckOutcome>,
}

impl ScenarioVerdict {
    /// True when every criterion held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Renders the verdict as one JSON object (see the module docs for the
    /// schema).
    pub fn to_json(&self) -> String {
        let r = &self.result;
        let baseline = match &self.baseline {
            Some(b) => format!(
                r#"{{ "submitted": {}, "succeeded": {}, "failed": {}, "timeouts": {} }}"#,
                b.submitted, b.succeeded, b.failed, b.timeouts
            ),
            None => "null".to_string(),
        };
        let recovery = match self.recovery_secs {
            Some(s) => format!("{s:.1}"),
            None => "null".to_string(),
        };
        let checks = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    r#"    {{ "name": "{}", "passed": {}, "detail": "{}" }}"#,
                    c.name, c.passed, c.detail
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            r#"{{
  "scenario": "{name}",
  "passed": {passed},
  "metrics": {{
    "submitted": {submitted},
    "succeeded": {succeeded},
    "failed": {failed},
    "timeouts": {timeouts},
    "jobs_killed": {jobs_killed},
    "leaked_grants": {leaked_grants},
    "leaked_grant_hwm": {leaked_hwm},
    "events_processed": {events},
    "steady_state_alloc_free": {alloc_free}
  }},
  "baseline": {baseline},
  "recovery_secs": {recovery},
  "checks": [
{checks}
  ]
}}"#,
            name = self.scenario.name(),
            passed = self.passed(),
            submitted = r.submitted,
            succeeded = r.succeeded,
            failed = r.failed,
            timeouts = r.timeouts,
            jobs_killed = r.jobs_killed,
            leaked_grants = r.leaked_grants,
            leaked_hwm = r.leaked_grant_hwm,
            events = r.events_processed,
            alloc_free = r.steady_state_alloc_free(),
        )
    }
}

/// Total running processes of one utilisation sample.
fn total_running(r: &DaySweepResult, i: usize) -> f64 {
    r.samples[i].running.iter().map(|&x| x as f64).sum()
}

/// The (start, end) seconds of the scenario's outage window in the
/// *compressed* coordinates of `cfg` (the coordinates the samples use).
fn outage_window(cfg: &DaySweepConfig) -> Option<(f64, f64)> {
    cfg.faults.iter().find_map(|f| match f {
        FaultSpec::SiteOutage { at, duration, .. }
        | FaultSpec::SupernodeOutage { at, duration } => {
            let start = at.as_secs_f64();
            Some((start, start + duration.as_secs_f64()))
        }
        _ => None,
    })
}

/// Sum of total utilisation over samples whose instant satisfies `keep`.
fn utilisation_sum(r: &DaySweepResult, keep: impl Fn(f64) -> bool) -> f64 {
    (0..r.samples.len())
        .filter(|&i| keep(r.samples[i].t.as_secs_f64()))
        .map(|i| total_running(r, i))
        .sum()
}

/// Sum of one site's utilisation over samples whose instant satisfies
/// `keep`.  Panics on an unknown site (a scenario-definition bug).
fn site_utilisation_sum(r: &DaySweepResult, site: &str, keep: impl Fn(f64) -> bool) -> f64 {
    let idx = site_index(r, site);
    (0..r.samples.len())
        .filter(|&i| keep(r.samples[i].t.as_secs_f64()))
        .map(|i| r.samples[i].running[idx] as f64)
        .sum()
}

/// One site's exact whole-day core-seconds (charged at job start, not
/// sampled — robust to a sample grid sparser than the job holds).
fn site_core_seconds(r: &DaySweepResult, site: &str) -> f64 {
    r.core_seconds[site_index(r, site)]
}

fn site_index(r: &DaySweepResult, site: &str) -> usize {
    r.site_names
        .iter()
        .position(|n| n == site)
        .unwrap_or_else(|| panic!("unknown site '{site}'"))
}

/// First sample at or after `end_secs` where the faulted run regained
/// [`RECOVERY_UTILISATION_RATIO`] of the twin's utilisation; returns the
/// delay from `end_secs`.
fn recovery_delay(fault: &DaySweepResult, twin: &DaySweepResult, end_secs: f64) -> Option<f64> {
    (0..fault.samples.len().min(twin.samples.len())).find_map(|i| {
        let t = fault.samples[i].t.as_secs_f64();
        if t < end_secs {
            return None;
        }
        let base = total_running(twin, i);
        if base > 0.0 && total_running(fault, i) >= RECOVERY_UTILISATION_RATIO * base {
            Some(t - end_secs)
        } else {
            None
        }
    })
}

fn ratio_check(
    name: &'static str,
    what: &str,
    got: usize,
    reference: usize,
    min_ratio: f64,
) -> CheckOutcome {
    let bound = (reference as f64 * min_ratio).ceil() as usize;
    CheckOutcome::new(
        name,
        got >= bound,
        format!(
            "{what}: {got} vs bound {bound} ({min_ratio:.0}% of {reference})",
            min_ratio = min_ratio * 100.0
        ),
    )
}

/// Runs one scenario (and its no-fault twin where the criteria are
/// relative) and judges it.
pub fn run_scenario(scenario: Scenario, params: &ScenarioParams) -> ScenarioVerdict {
    let cfg = scenario.config(params);
    let result = run_day_sweep(&cfg);
    let baseline = scenario.needs_baseline().then(|| {
        let mut twin = cfg.clone();
        twin.faults.clear();
        run_day_sweep(&twin)
    });

    let mut checks = Vec::new();
    let mut recovery_secs = None;
    match scenario {
        Scenario::BaselineDay => {
            checks.push(CheckOutcome::new(
                "no_leaked_grants",
                result.leaked_grants == 0,
                format!(
                    "leaked_grants = {} (must be 0 on the standard day)",
                    result.leaked_grants
                ),
            ));
            checks.push(CheckOutcome::new(
                "no_jobs_killed",
                result.jobs_killed == 0,
                format!("jobs_killed = {}", result.jobs_killed),
            ));
            checks.push(CheckOutcome::new(
                "steady_state_alloc_free",
                result.steady_state_alloc_free(),
                format!(
                    "events capacity {} -> {}, scratch {} -> {}",
                    result.events_capacity_mid,
                    result.events_capacity_end,
                    result.rs_scratch_capacity_mid,
                    result.rs_scratch_capacity_end
                ),
            ));
            checks.push(ratio_check(
                "success_share",
                "succeeded",
                result.succeeded,
                result.submitted,
                BASELINE_SUCCESS_MIN,
            ));
        }
        Scenario::DeadPeerDay => {
            checks.push(CheckOutcome::new(
                "timeouts_fired",
                result.timeouts > 0,
                format!("reservation timeouts = {}", result.timeouts),
            ));
            checks.push(ratio_check(
                "success_share",
                "succeeded",
                result.succeeded,
                result.submitted,
                DEAD_PEER_SUCCESS_MIN,
            ));
            checks.push(CheckOutcome::new(
                "steady_state_alloc_free",
                result.steady_state_alloc_free(),
                format!(
                    "events capacity {} -> {}, scratch {} -> {}",
                    result.events_capacity_mid,
                    result.events_capacity_end,
                    result.rs_scratch_capacity_mid,
                    result.rs_scratch_capacity_end
                ),
            ));
        }
        Scenario::SiteOutage => {
            let twin = baseline.as_ref().expect("relative scenario");
            let (start, end) = outage_window(&cfg).expect("site outage declares a window");
            // The honest dip signal is per-site: killed jobs and dead peers
            // mean Rennes runs *nothing* during the window.  (Total running
            // counts can even rise during the outage: surviving placements
            // are pushed to farther sites, run longer under the model, and
            // linger in more samples.)  The twin comparison uses exact
            // core-seconds, not window samples: on the uncompressed day the
            // 5-minute sample grid is sparser than the job holds and can
            // legitimately catch the twin's Rennes empty too.
            let dark = site_utilisation_sum(&result, "rennes", |t| t >= start && t < end);
            let fault_cs = site_core_seconds(&result, "rennes");
            let twin_cs = site_core_seconds(twin, "rennes");
            checks.push(CheckOutcome::new(
                "site_goes_dark_during_outage",
                dark == 0.0 && twin_cs > 0.0 && fault_cs < twin_cs,
                format!(
                    "rennes outage-window utilisation {dark:.0}, whole-day core-seconds \
                     {fault_cs:.0} vs twin {twin_cs:.0} (the outage must remove rennes work)"
                ),
            ));
            let post_fault = utilisation_sum(&result, |t| t >= end);
            let post_base = utilisation_sum(twin, |t| t >= end);
            let post_ratio = post_fault / post_base.max(1.0);
            checks.push(CheckOutcome::new(
                "utilisation_recovers",
                post_ratio >= RECOVERY_UTILISATION_RATIO,
                format!(
                    "post-recovery utilisation ratio {post_ratio:.3} (bound {RECOVERY_UTILISATION_RATIO})"
                ),
            ));
            recovery_secs = recovery_delay(&result, twin, end);
            checks.push(CheckOutcome::new(
                "recovery_observed",
                recovery_secs.is_some(),
                match recovery_secs {
                    Some(s) => format!(
                        "utilisation regained the twin's level {s:.0}s after the outage ended"
                    ),
                    None => "utilisation never regained the twin's level".to_string(),
                },
            ));
            checks.push(ratio_check(
                "success_vs_baseline",
                "succeeded",
                result.succeeded,
                twin.succeeded,
                SITE_OUTAGE_SUCCESS_VS_BASELINE,
            ));
        }
        Scenario::FlashCrowd => {
            let twin = baseline.as_ref().expect("relative scenario");
            checks.push(CheckOutcome::new(
                "burst_arrivals_spliced",
                result.submitted > twin.submitted,
                format!(
                    "submitted {} vs no-burst twin {}",
                    result.submitted, twin.submitted
                ),
            ));
            checks.push(CheckOutcome::new(
                "throughput_not_reduced",
                result.succeeded >= twin.succeeded,
                format!(
                    "succeeded {} vs no-burst twin {} (extra load must not reduce completed work)",
                    result.succeeded, twin.succeeded
                ),
            ));
            checks.push(ratio_check(
                "success_share",
                "succeeded",
                result.succeeded,
                result.submitted,
                FLASH_CROWD_SUCCESS_MIN,
            ));
            checks.push(CheckOutcome::new(
                "steady_state_alloc_free",
                result.steady_state_alloc_free(),
                format!(
                    "events capacity {} -> {}, scratch {} -> {}",
                    result.events_capacity_mid,
                    result.events_capacity_end,
                    result.rs_scratch_capacity_mid,
                    result.rs_scratch_capacity_end
                ),
            ));
        }
        Scenario::SlowLinks => {
            let twin = baseline.as_ref().expect("relative scenario");
            checks.push(ratio_check(
                "success_vs_baseline",
                "succeeded",
                result.succeeded,
                twin.succeeded,
                SLOW_LINKS_SUCCESS_VS_BASELINE,
            ));
            checks.push(CheckOutcome::new(
                "no_leaked_grants",
                result.leaked_grants == 0,
                format!(
                    "leaked_grants = {} (5x latency must stay inside the 2s timeout)",
                    result.leaked_grants
                ),
            ));
        }
        Scenario::SupernodeCrash => {
            let twin = baseline.as_ref().expect("relative scenario");
            checks.push(ratio_check(
                "success_vs_baseline",
                "succeeded",
                result.succeeded,
                twin.succeeded,
                SUPERNODE_SUCCESS_VS_BASELINE,
            ));
            checks.push(CheckOutcome::new(
                "completed_jobs_while_degraded",
                result.succeeded > 0,
                format!("succeeded = {}", result.succeeded),
            ));
        }
        Scenario::GrantLeakStress => {
            checks.push(CheckOutcome::new(
                "grant_leak_path_exercised",
                result.leaked_grants > 0,
                format!("leaked_grants = {}", result.leaked_grants),
            ));
            checks.push(CheckOutcome::new(
                "leaks_eagerly_reclaimed",
                result.leaked_grants == 0 || result.leaked_grant_hwm < result.leaked_grants,
                format!(
                    "high-water mark {} of {} total leaks (eager release must drain between jobs)",
                    result.leaked_grant_hwm, result.leaked_grants
                ),
            ));
            checks.push(CheckOutcome::new(
                "no_jobs_killed",
                result.jobs_killed == 0,
                format!("jobs_killed = {}", result.jobs_killed),
            ));
        }
    }

    ScenarioVerdict {
        scenario,
        result,
        baseline,
        recovery_secs,
        checks,
    }
}

/// Runs the full matrix in [`ALL_SCENARIOS`] order.
pub fn run_matrix(params: &ScenarioParams) -> Vec<ScenarioVerdict> {
    ALL_SCENARIOS
        .iter()
        .map(|&s| run_scenario(s, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in ALL_SCENARIOS {
            assert_eq!(Scenario::from_name(s.name()), Some(s));
            assert!(!s.summary().is_empty());
        }
        assert_eq!(Scenario::from_name("meteor_strike"), None);
    }

    #[test]
    fn configs_compress_fault_windows_with_the_day() {
        let params = ScenarioParams {
            compress: 24.0,
            ..ScenarioParams::default()
        };
        let cfg = Scenario::SiteOutage.config(&params);
        let (start, end) = outage_window(&cfg).unwrap();
        assert_eq!(start, 9.0 * 3600.0 / 24.0);
        assert_eq!(end - start, 2.0 * 3600.0 / 24.0);
        assert_eq!(cfg.profile.horizon(), SimDuration::from_secs(3600));
        // The flash crowd lives in the profile, not the timeline faults.
        let crowd = Scenario::FlashCrowd.config(&params);
        assert!(outage_window(&crowd).is_none());
    }

    #[test]
    fn verdict_json_has_the_documented_shape() {
        let verdict = run_scenario(
            Scenario::BaselineDay,
            &ScenarioParams {
                compress: 24.0,
                rate_scale: 0.01,
                ..ScenarioParams::default()
            },
        );
        let json = verdict.to_json();
        assert!(json.contains(r#""scenario": "baseline_day""#));
        assert!(json.contains(r#""metrics""#));
        assert!(json.contains(r#""leaked_grants": 0"#));
        assert!(json.contains(r#""baseline": null"#));
        assert!(json.contains(r#""checks""#));
    }
}
