//! The fault-injection scenario matrix: named adversity specs compiled onto
//! the day-sweep timeline, each judged against explicit graceful-degradation
//! criteria.
//!
//! Where `workload` provides the *mechanisms* (a [`FaultSpec`] vocabulary and
//! a driver that schedules them), this module provides the *policy*: a fixed
//! matrix of named scenarios ([`Scenario`]), one [`DaySweepConfig`] per
//! scenario, and a [`ScenarioVerdict`] that states whether the overlay
//! degraded gracefully — not merely whether it survived.  The
//! `scenario_runner` binary prints one JSON verdict per scenario and exits
//! non-zero on any failure; `perf_report`'s `scenario_matrix` section runs
//! the same matrix compressed as a CI gate.
//!
//! # Scenario taxonomy
//!
//! The matrix covers four families:
//!
//! * **Controls** — `baseline_day` (the absolute reference; gates the
//!   allocation-free steady state and the zero-leak invariant) and
//!   `dead_peer_day` (independent flapping; the timeout-heavy population).
//! * **Single faults** — `site_outage`, `flash_crowd`, `slow_links`,
//!   `supernode_crash`, `grant_leak_stress`: one primitive [`FaultSpec`]
//!   each, judged against its no-fault twin or absolute bounds.
//! * **Partial degradation** — `rack_outage`: a [`FaultSpec::PartialSite`]
//!   browns out a rack-sized host subset (30 of Rennes' 90 hosts), so the
//!   site *dims* instead of going dark — brokering must keep using the
//!   survivors.
//! * **Composed faults** — `outage_in_crowd` overlaps a Nancy outage (the
//!   submitter's busiest site) with the 10x flash crowd via
//!   [`FaultSpec::Compose`], and `outage_in_crowd_worst` pins the
//!   adversarial phase the `fault_search` driver found (a
//!   [`FaultSpec::PhaseShift`] of the outage against the burst that
//!   maximises recovery time).
//!
//! # Composition semantics
//!
//! [`FaultSpec::Compose`] concatenates its children's event schedules on
//! one timeline — children are independent, so composing is exactly
//! "install all of them".  [`FaultSpec::PhaseShift`] adds a signed offset
//! to every primitive onset beneath it (offsets nest additively; a shifted
//! onset clamps at the start of the day) — durations, factors and sites
//! are untouched.  `FaultSpec::flattened` unfolds any tree back into the
//! primitive list the sweep installs, and everything downstream (trace
//! bursts, timeline installation, outage-window extraction, shard routing)
//! operates on that flattened form, so combinators never add semantics —
//! only structure.  Under [`DaySweepConfig::compress`] a `PhaseShift`
//! offset shrinks with the same rule as every other fault time, keeping
//! the relative phase of fault vs burst invariant across scales.
//!
//! # The fault-event contract
//!
//! Every fault is an event (or a trace transform) with documented semantics
//! the verdicts rely on:
//!
//! * **Revocation ordering** — a peer crash first mass-revokes the doomed
//!   completions of its running jobs (one `cancel_batch` over their event
//!   keys, when `fail_jobs_on_crash` is on), freeing every participant
//!   *before* any later event observes the dead peer.  A revoked completion
//!   is never delivered; `jobs_killed` counts the revocations.
//! * **Site outages** are correlated: all peers of the site crash at the
//!   same instant and recover together (`site_outage_schedule`), unlike the
//!   independent flapping of [`DeadPeerChurn`].  The submitter is always
//!   spared — its host doubles as the supernode's.  A **partial-site**
//!   outage crashes only the first `hosts` hosts of the site
//!   (`site_host_subset` + `Overlay::schedule_host_outage`), same
//!   correlated semantics, site survives.
//! * **Supernode degraded mode** — a supernode crash wipes the volatile
//!   registry.  While it is down, cache refreshes return empty (the
//!   submitter keeps brokering from its stale `CachedList` instead of
//!   halting) and heartbeats are no-ops; on recovery, the next heartbeat
//!   round re-registers every alive peer the registry no longer knows (the
//!   resync path).
//! * **Link degradation** applies to transfers *scheduled* during the
//!   window; in-flight events keep the cost they were scheduled with.  A
//!   degradation severe enough that a reservation reply loses the 2 s race
//!   to its timeout exercises the grant-leak path: the grant is counted in
//!   `leaked_grants` and eagerly released one transfer later, so the
//!   high-water mark of outstanding leaks (`leaked_grant_hwm`) stays far
//!   below the total.
//! * **Flash crowds** are pure trace transforms ([`DayProfile::with_burst`])
//!   applied before the trace is drawn; they never touch the overlay.  In a
//!   composed scenario the crowd stays in the *twin* too (both runs replay
//!   the same inflated trace), so the comparison isolates the outage.
//!
//! # Recovery-time SLOs
//!
//! Every verdict carries `recovery_secs`: the delay after the fault window
//! closes until grid-total utilisation — read off the exact per-site
//! core-seconds timeline (`DaySweepResult::site_core_bins`), not the sparse
//! samples — first regains [`RECOVERY_UTILISATION_RATIO`] (95%) of the
//! twin's in the same bin.  Scenarios without an outage window recover
//! trivially (`recovery_secs` = 0).  Windowed scenarios additionally gate
//! the value against a per-scenario SLO authored on the uncompressed day
//! and divided by the compression factor at judge time, so one bound works
//! at every scale.  `perf_report` tracks all recovery times as a
//! trajectory in `BENCH_hotpath.json` and fails on a >20% regression.
//!
//! # The verdict schema
//!
//! [`ScenarioVerdict::to_json`] renders one object per scenario:
//!
//! ```json
//! {
//!   "scenario": "site_outage",
//!   "passed": true,
//!   "metrics": { "submitted": 1085, "succeeded": 934, "failed": 151,
//!                "timeouts": 412, "jobs_killed": 17, "leaked_grants": 0,
//!                "leaked_grant_hwm": 0, "events_processed": 123456,
//!                "steady_state_alloc_free": true },
//!   "baseline": { "submitted": 1085, "succeeded": 1012, "failed": 73,
//!                 "timeouts": 0 },
//!   "recovery_secs": 120.0,
//!   "checks": [ { "name": "utilisation_recovers", "passed": true,
//!                 "detail": "..." } ]
//! }
//! ```
//!
//! `baseline` is the scenario's twin (same seed; no faults — except in
//! composed scenarios, where the twin keeps the flash crowd so both runs
//! replay the same trace) and is `null` for scenarios judged on absolute
//! criteria; `recovery_secs` is `0.0` when the scenario has no outage
//! window (trivially recovered) and `null` only when utilisation never
//! regained the twin's level.
//!
//! [`DayProfile::with_burst`]: crate::workload::DayProfile::with_burst
//! [`DeadPeerChurn`]: crate::workload::DeadPeerChurn

use crate::workload::{
    flatten_faults, run_day_sweep, DaySweepConfig, DaySweepResult, DeadPeerChurn, FaultSpec, JobMix,
};
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_simgrid::event::QueueKind;
use p2pmpi_simgrid::time::SimDuration;

/// Knobs shared by every scenario of a matrix run.
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// Time compression of the day (1.0 = the full 86,400 s day).  Fault
    /// windows compress with it; the 2 s `rs_timeout` protocol constant
    /// does not.
    pub compress: f64,
    /// Arrival-rate multiplier (0.05 ≈ 1.1k jobs/day, the smoke scale).
    pub rate_scale: f64,
    /// Master seed (arrivals, job mix, testbed noise, churn phases).
    pub seed: u64,
    /// Queue structure backing the timeline.  Outcomes are bit-identical
    /// across kinds (pinned by `tests/day_sweep.rs`); this only matters for
    /// wall time.
    pub queue: QueueKind,
    /// Optional allocation-strategy override applied to every scenario
    /// (and its no-fault twin).  `None` keeps each scenario's authored
    /// strategy.  [`StrategyKind::Searched`] puts the online placement
    /// search under fault pressure: the graceful-degradation gates must
    /// hold there exactly as they do for the fixed strategies.
    pub strategy: Option<StrategyKind>,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            compress: 1.0,
            rate_scale: 0.05,
            seed: 2008,
            queue: QueueKind::Ladder,
            strategy: None,
        }
    }
}

/// Minimum success share of the no-fault baseline day.  Calibrated at the
/// CI scale (compress 24, rate scale 0.05, seed 2008), where holds do not
/// compress with the day and burst-hour refusals are real: the observed
/// share is ~0.77 there and ~0.9+ on the uncompressed day.
const BASELINE_SUCCESS_MIN: f64 = 0.70;
/// Minimum success share under brutal dead-peer flapping (mirrors the
/// `day_sweep` integration test's bound).
const DEAD_PEER_SUCCESS_MIN: f64 = 0.25;
/// Post-recovery utilisation must reach this share of the no-fault twin's
/// (the "within 5%" acceptance bound).
const RECOVERY_UTILISATION_RATIO: f64 = 0.95;
/// Success share a site-outage day must retain vs its no-fault twin.
const SITE_OUTAGE_SUCCESS_VS_BASELINE: f64 = 0.60;
/// Success share of submitted jobs a 10x flash crowd must still place
/// (the burst nearly doubles the day's arrivals against fixed capacity, so
/// refusals are expected — collapse is not; observed ~0.47 at CI scale).
const FLASH_CROWD_SUCCESS_MIN: f64 = 0.40;
/// Success share a mild link-degradation day must retain vs its twin.
const SLOW_LINKS_SUCCESS_VS_BASELINE: f64 = 0.90;
/// Success share a supernode-crash day must retain vs its twin (the
/// degraded-mode acceptance bound: stale-view brokering, not a halt).
const SUPERNODE_SUCCESS_VS_BASELINE: f64 = 0.90;
/// Success share a rack brown-out (a third of Rennes) must retain vs its
/// twin — milder than a whole-site loss, so the bound is tighter than
/// [`SITE_OUTAGE_SUCCESS_VS_BASELINE`].
const RACK_OUTAGE_SUCCESS_VS_BASELINE: f64 = 0.80;
/// Success share the composed outage-in-crowd day must retain vs its
/// crowd-only twin (the twin replays the same inflated trace, so this
/// isolates what the outage costs *under* the crowd).
const OUTAGE_IN_CROWD_SUCCESS_VS_BASELINE: f64 = 0.55;
/// The adversarial phase offset (seconds on the uncompressed day, applied
/// to the Nancy outage's 10:30 onset) the `fault_search` driver found to
/// maximise recovery time against the 10:00–12:00 flash crowd: -900 s
/// slides the outage window to 10:15–12:15, so Nancy — the site carrying
/// most of the submitter's work — comes back *just* after the crowd ends,
/// into the post-crowd lull where almost no arrivals refill it while the
/// twin still rides the crowd's hold tail (recovery 87.5 s vs the nominal
/// onset's 25 s at CI scale, 3.5x).  Pinned here so `outage_in_crowd_worst`
/// replays the found worst case deterministically; re-run `fault_search`
/// to revalidate after placement or profile changes.
pub const OUTAGE_IN_CROWD_WORST_OFFSET_SECS: f64 = -900.0;

/// The named scenarios of the matrix, in the order the runner executes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// The standard no-fault day: the absolute reference.  Gates that the
    /// steady state is allocation-free and — the grant-leak invariant —
    /// that `leaked_grants` stays exactly 0.
    BaselineDay,
    /// Independent dead-peer flapping ([`DaySweepConfig::dead_peer_day`]):
    /// timeouts must fire *and* most of the day must still place.
    DeadPeerDay,
    /// A correlated outage takes all of Rennes down for two hours mid-burst
    /// (running jobs are killed); utilisation must dip and then recover to
    /// within 5% of the no-fault twin.
    SiteOutage,
    /// A 10x arrival burst spliced into the late morning; the overlay must
    /// absorb it (bounded refusals, no storage growth past the high-water
    /// mark).
    FlashCrowd,
    /// A 5x latency degradation on the Rennes links for three hours:
    /// graceful slowdown — replies still win their timeout races, so no
    /// grants leak and throughput barely moves.
    SlowLinks,
    /// The supernode crashes for three hours while peers flap: the
    /// submitter must keep brokering from its stale cached view (degraded
    /// mode) and the registry must resync on recovery.
    SupernodeCrash,
    /// A 200x latency degradation on the Sophia links while every job
    /// demands hosts there: reservation replies systematically lose the 2 s
    /// race, hammering the reply-loses-race path.  Grants must leak — and
    /// must be eagerly reclaimed (high-water mark far below the total).
    GrantLeakStress,
    /// A rack browns out: 30 of Rennes' 90 hosts crash together for two
    /// hours ([`FaultSpec::PartialSite`]).  The site must dim, not go dark
    /// — brokering keeps landing work on the surviving racks — and
    /// utilisation must recover within the SLO.
    RackOutage,
    /// The composed stress: a Nancy outage — the submitter's home site,
    /// which carries most of a small-rank day's placements — *during* the
    /// 10x flash crowd ([`FaultSpec::Compose`]).  Judged against a
    /// crowd-only twin (same inflated trace), so the verdict isolates what
    /// the outage costs under burst pressure; recovery is strictly harder
    /// than the lone outage's.
    OutageInCrowd,
    /// [`Scenario::OutageInCrowd`] with the outage phase-shifted to the
    /// adversarial offset `fault_search` found
    /// ([`OUTAGE_IN_CROWD_WORST_OFFSET_SECS`]): the pinned worst case,
    /// gated with its own (looser) recovery SLO so a regression in the
    /// worst-case phase fails loudly.
    OutageInCrowdWorst,
}

/// Every scenario, in matrix order.
pub const ALL_SCENARIOS: [Scenario; 10] = [
    Scenario::BaselineDay,
    Scenario::DeadPeerDay,
    Scenario::SiteOutage,
    Scenario::FlashCrowd,
    Scenario::SlowLinks,
    Scenario::SupernodeCrash,
    Scenario::GrantLeakStress,
    Scenario::RackOutage,
    Scenario::OutageInCrowd,
    Scenario::OutageInCrowdWorst,
];

const fn hours(h: u64) -> SimDuration {
    SimDuration::from_secs(h * 3600)
}

impl Scenario {
    /// The scenario's stable name (CLI argument, JSON `scenario` field).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::BaselineDay => "baseline_day",
            Scenario::DeadPeerDay => "dead_peer_day",
            Scenario::SiteOutage => "site_outage",
            Scenario::FlashCrowd => "flash_crowd",
            Scenario::SlowLinks => "slow_links",
            Scenario::SupernodeCrash => "supernode_crash",
            Scenario::GrantLeakStress => "grant_leak_stress",
            Scenario::RackOutage => "rack_outage",
            Scenario::OutageInCrowd => "outage_in_crowd",
            Scenario::OutageInCrowdWorst => "outage_in_crowd_worst",
        }
    }

    /// Parses a scenario name as the runner's `--scenario` flag spells it.
    /// The error lists every valid name, so a typo at the CLI (or in CI
    /// YAML) tells the caller what it could have said.
    pub fn from_name(name: &str) -> Result<Self, String> {
        ALL_SCENARIOS
            .iter()
            .copied()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                let valid: Vec<&str> = ALL_SCENARIOS.iter().map(|s| s.name()).collect();
                format!("unknown scenario {name:?} (valid: {})", valid.join(", "))
            })
    }

    /// One-line description for the runner's usage text.
    pub fn summary(self) -> &'static str {
        match self {
            Scenario::BaselineDay => "the no-fault day; gates leaked_grants == 0",
            Scenario::DeadPeerDay => "independent dead-peer flapping; timeouts must fire",
            Scenario::SiteOutage => "all of Rennes down 2h; utilisation must recover",
            Scenario::FlashCrowd => "10x arrival burst; must absorb without storage growth",
            Scenario::SlowLinks => "5x Rennes latency; graceful slowdown, no leaks",
            Scenario::SupernodeCrash => "supernode down 3h; stale-view brokering must continue",
            Scenario::GrantLeakStress => "200x Sophia latency; grants must leak and be reclaimed",
            Scenario::RackOutage => "30 of Rennes' 90 hosts down 2h; site dims, must recover",
            Scenario::OutageInCrowd => "Nancy outage during the 10x crowd; composed recovery",
            Scenario::OutageInCrowdWorst => "the outage at fault_search's worst-case phase",
        }
    }

    /// Whether the verdict compares against a twin run.
    fn needs_baseline(self) -> bool {
        matches!(
            self,
            Scenario::SiteOutage
                | Scenario::FlashCrowd
                | Scenario::SlowLinks
                | Scenario::SupernodeCrash
                | Scenario::RackOutage
                | Scenario::OutageInCrowd
                | Scenario::OutageInCrowdWorst
        )
    }

    /// Whether the twin keeps the flash-crowd trace transform.  Composed
    /// scenarios are judged against a crowd-only twin: both runs replay
    /// the identical inflated arrival trace, so the comparison isolates
    /// the outage.  (The `flash_crowd` scenario itself drops the crowd —
    /// its twin exists to prove the burst was spliced at all.)
    fn twin_keeps_crowd(self) -> bool {
        matches!(self, Scenario::OutageInCrowd | Scenario::OutageInCrowdWorst)
    }

    /// The scenario's recovery-time SLO in seconds on the *uncompressed*
    /// day (divide by the compression factor at judge time).  `None` for
    /// scenarios without an outage window — they recover trivially.
    ///
    /// Values are calibrated at the CI scale (compress 24, rate 0.05,
    /// seed 2008) with headroom: holds do not compress with the day, so a
    /// compressed run's recovery is dominated by the killed jobs' re-run
    /// tails and is noisier than the full day's.
    pub fn recovery_slo_secs(self) -> Option<f64> {
        match self {
            Scenario::SiteOutage => Some(hours(1).as_secs_f64()),
            Scenario::SupernodeCrash => Some(hours(1).as_secs_f64()),
            Scenario::RackOutage => Some(hours(1).as_secs_f64()),
            Scenario::OutageInCrowd => Some(hours(2).as_secs_f64()),
            Scenario::OutageInCrowdWorst => Some(hours(3).as_secs_f64()),
            _ => None,
        }
    }

    /// The scenario's sweep configuration at `params` scale.  Fault times
    /// are authored on the uncompressed day and compressed along with the
    /// profile, churn cycle and sample cadence.
    pub fn config(self, params: &ScenarioParams) -> DaySweepConfig {
        let cfg = match self {
            Scenario::BaselineDay => DaySweepConfig::new(StrategyKind::Concentrate),
            Scenario::DeadPeerDay => DaySweepConfig::dead_peer_day(StrategyKind::Concentrate),
            Scenario::SiteOutage => {
                // Spread with a large-rank palette so Rennes (third in the
                // submitter's latency order) genuinely carries work the
                // outage can take away.
                let mut cfg = DaySweepConfig::new(StrategyKind::Spread);
                cfg.mix = JobMix {
                    ranks: vec![32, 128, 256],
                    ..JobMix::default()
                };
                cfg.faults = vec![FaultSpec::SiteOutage {
                    site: "rennes".to_string(),
                    at: hours(9),
                    duration: hours(2),
                }];
                cfg.fail_jobs_on_crash = true;
                cfg
            }
            Scenario::FlashCrowd => {
                let mut cfg = DaySweepConfig::new(StrategyKind::Concentrate);
                cfg.faults = vec![FaultSpec::FlashCrowd {
                    at: hours(10),
                    duration: hours(1),
                    factor: 10.0,
                }];
                cfg
            }
            Scenario::SlowLinks => {
                let mut cfg = DaySweepConfig::new(StrategyKind::Spread);
                cfg.mix = JobMix {
                    ranks: vec![32, 128, 256],
                    ..JobMix::default()
                };
                cfg.faults = vec![FaultSpec::SlowLinks {
                    site: "rennes".to_string(),
                    at: hours(9),
                    duration: hours(3),
                    latency_factor: 5.0,
                }];
                cfg
            }
            Scenario::SupernodeCrash => {
                // Mild flapping makes the registry load-bearing: without
                // refreshes the submitter's view goes stale, which is
                // exactly the degraded mode under test.
                let mut cfg = DaySweepConfig::dead_peer_day(StrategyKind::Concentrate);
                cfg.churn = Some(DeadPeerChurn {
                    fraction: 0.10,
                    ..DeadPeerChurn::default()
                });
                cfg.faults = vec![FaultSpec::SupernodeOutage {
                    at: hours(9),
                    duration: hours(3),
                }];
                cfg
            }
            Scenario::GrantLeakStress => {
                // Every job demands 300 hosts under spread, which forces
                // bookings into Sophia — whose replies, at 200x latency,
                // systematically lose the 2 s race to their timeouts.
                let mut cfg = DaySweepConfig::new(StrategyKind::Spread);
                cfg.mix = JobMix {
                    ranks: vec![300],
                    ..JobMix::default()
                };
                cfg.faults = vec![FaultSpec::SlowLinks {
                    site: "sophia".to_string(),
                    at: hours(1),
                    duration: hours(22),
                    latency_factor: 200.0,
                }];
                cfg
            }
            Scenario::RackOutage => {
                // Same large-rank spread palette as the site outage so
                // Rennes carries real work — but only a third of its hosts
                // brown out, so the site dims instead of going dark.
                let mut cfg = DaySweepConfig::new(StrategyKind::Spread);
                cfg.mix = JobMix {
                    ranks: vec![32, 128, 256],
                    ..JobMix::default()
                };
                cfg.faults = vec![FaultSpec::PartialSite {
                    site: "rennes".to_string(),
                    hosts: 30,
                    at: hours(9),
                    duration: hours(2),
                }];
                cfg.fail_jobs_on_crash = true;
                // Stretch holds (~3 s modeled -> ~1 min) so the brown-out
                // reliably catches jobs mid-run and leaves a measurable
                // backlog — the same idiom as the injected-fault queue
                // tests.
                cfg.duration_scale = 20.0;
                cfg
            }
            Scenario::OutageInCrowd => return outage_in_crowd_config(0.0, params),
            Scenario::OutageInCrowdWorst => {
                return outage_in_crowd_config(OUTAGE_IN_CROWD_WORST_OFFSET_SECS, params)
            }
        };
        finalize_config(cfg, params)
    }
}

/// Applies the matrix-wide knobs (`seed`, `queue`, strategy override,
/// compression, rate scale) to an authored scenario config — the shared
/// tail of [`Scenario::config`] and [`outage_in_crowd_config`].
fn finalize_config(mut cfg: DaySweepConfig, params: &ScenarioParams) -> DaySweepConfig {
    cfg.seed = params.seed;
    cfg.queue = params.queue;
    if let Some(strategy) = params.strategy {
        cfg.strategy = strategy;
    }
    if params.compress > 1.0 {
        cfg = cfg.compress(params.compress);
    }
    cfg.profile = cfg.profile.scaled(params.rate_scale);
    cfg
}

/// The composed outage-in-crowd faults: a Nancy outage (10:30, 2 h)
/// phase-shifted by `offset_secs`, overlapped with a 10:00–12:00 10x
/// flash crowd on one timeline.  Nancy is the submitter's home site and
/// carries most of a small-rank day's placements (Spread fills the
/// latency-closest hosts first), so losing it actually hurts; at the
/// nominal onset the outage clears at 12:30, inside the crowd's hold
/// tail — the twin's utilisation is still crowd-inflated while arrivals
/// have collapsed to the lunch dip, so recovery time measures a genuine
/// arrival-limited refill, not a formality.  Offset 0 is the nominal
/// onset ([`Scenario::OutageInCrowd`]); `fault_search` sweeps the offset
/// to find the worst case, and [`OUTAGE_IN_CROWD_WORST_OFFSET_SECS`] pins
/// what it found ([`Scenario::OutageInCrowdWorst`]).
pub fn outage_in_crowd_faults(offset_secs: f64) -> Vec<FaultSpec> {
    vec![FaultSpec::Compose(vec![
        FaultSpec::PhaseShift {
            offset_secs,
            inner: Box::new(FaultSpec::SiteOutage {
                site: "nancy".to_string(),
                at: hours(10) + SimDuration::from_secs(1800),
                duration: hours(2),
            }),
        },
        FaultSpec::FlashCrowd {
            at: hours(10),
            duration: hours(2),
            factor: 10.0,
        },
    ])]
}

/// The full outage-in-crowd sweep config at `params` scale with the outage
/// phase-shifted by `offset_secs` (uncompressed seconds).  Shared between
/// [`Scenario::config`] and the `fault_search` driver, so the adversarial
/// sweep explores exactly the scenario the matrix gates.
pub fn outage_in_crowd_config(offset_secs: f64, params: &ScenarioParams) -> DaySweepConfig {
    let mut cfg = DaySweepConfig::new(StrategyKind::Spread);
    cfg.mix = JobMix {
        ranks: vec![8, 32, 64],
        ..JobMix::default()
    };
    cfg.faults = outage_in_crowd_faults(offset_secs);
    cfg.fail_jobs_on_crash = true;
    // Stretch holds (~4 s modeled -> ~3 min) so the outage reliably kills
    // running jobs and, crucially, so the crowd's long holds persist in
    // the twin well past the crowd itself: the recovery-vs-phase basin is
    // exactly as wide as that hold tail.  Thin the traffic (x0.1) so the
    // normal day runs under capacity and the post-crowd refill is
    // genuinely arrival-limited — at full rate the compressed day is so
    // saturated that any freed rack refills within one sample bin and
    // recovery degenerates to zero everywhere.
    cfg.duration_scale = 50.0;
    cfg.profile = cfg.profile.scaled(0.1);
    finalize_config(cfg, params)
}

/// One pass/fail criterion of a verdict.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Stable criterion name.
    pub name: &'static str,
    /// Whether the criterion held.
    pub passed: bool,
    /// Human-readable evidence (measured values and the bound).
    pub detail: String,
}

impl CheckOutcome {
    fn new(name: &'static str, passed: bool, detail: String) -> Self {
        CheckOutcome {
            name,
            passed,
            detail,
        }
    }
}

/// The judged outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioVerdict {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// The faulted run's full result.
    pub result: DaySweepResult,
    /// The no-fault twin (same seed and scale), when the scenario's
    /// criteria are relative.
    pub baseline: Option<DaySweepResult>,
    /// Seconds from the end of the scenario's outage window until total
    /// utilisation first regained [`RECOVERY_UTILISATION_RATIO`] of the
    /// twin's, on the sample grid.  `Some(0.0)` when the scenario has no
    /// outage window (trivially recovered); `None` when utilisation never
    /// regained the twin's level before the day ended.
    pub recovery_secs: Option<f64>,
    /// Every criterion with its evidence.
    pub checks: Vec<CheckOutcome>,
}

impl ScenarioVerdict {
    /// True when every criterion held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Renders the verdict as one JSON object (see the module docs for the
    /// schema).
    pub fn to_json(&self) -> String {
        let r = &self.result;
        let baseline = match &self.baseline {
            Some(b) => format!(
                r#"{{ "submitted": {}, "succeeded": {}, "failed": {}, "timeouts": {} }}"#,
                b.submitted, b.succeeded, b.failed, b.timeouts
            ),
            None => "null".to_string(),
        };
        let recovery = match self.recovery_secs {
            Some(s) => format!("{s:.1}"),
            None => "null".to_string(),
        };
        let checks = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    r#"    {{ "name": "{}", "passed": {}, "detail": "{}" }}"#,
                    c.name, c.passed, c.detail
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            r#"{{
  "scenario": "{name}",
  "passed": {passed},
  "metrics": {{
    "submitted": {submitted},
    "succeeded": {succeeded},
    "failed": {failed},
    "timeouts": {timeouts},
    "jobs_killed": {jobs_killed},
    "leaked_grants": {leaked_grants},
    "leaked_grant_hwm": {leaked_hwm},
    "events_processed": {events},
    "steady_state_alloc_free": {alloc_free}
  }},
  "baseline": {baseline},
  "recovery_secs": {recovery},
  "checks": [
{checks}
  ]
}}"#,
            name = self.scenario.name(),
            passed = self.passed(),
            submitted = r.submitted,
            succeeded = r.succeeded,
            failed = r.failed,
            timeouts = r.timeouts,
            jobs_killed = r.jobs_killed,
            leaked_grants = r.leaked_grants,
            leaked_hwm = r.leaked_grant_hwm,
            events = r.events_processed,
            alloc_free = r.steady_state_alloc_free(),
        )
    }
}

/// Total running processes of one utilisation sample.
fn total_running(r: &DaySweepResult, i: usize) -> f64 {
    r.samples[i].running.iter().map(|&x| x as f64).sum()
}

/// The (start, end) seconds of the scenario's outage window in the
/// *compressed* coordinates of `cfg` (the coordinates the samples and
/// core-second bins use).  Combinators are flattened first, so a
/// phase-shifted outage reports its effective window.
pub(crate) fn outage_window(cfg: &DaySweepConfig) -> Option<(f64, f64)> {
    flatten_faults(&cfg.faults).iter().find_map(|f| match f {
        FaultSpec::SiteOutage { at, duration, .. }
        | FaultSpec::SupernodeOutage { at, duration }
        | FaultSpec::PartialSite { at, duration, .. } => {
            let start = at.as_secs_f64();
            Some((start, start + duration.as_secs_f64()))
        }
        _ => None,
    })
}

/// Sum of total utilisation over samples whose instant satisfies `keep`.
fn utilisation_sum(r: &DaySweepResult, keep: impl Fn(f64) -> bool) -> f64 {
    (0..r.samples.len())
        .filter(|&i| keep(r.samples[i].t.as_secs_f64()))
        .map(|i| total_running(r, i))
        .sum()
}

/// Sum of one site's utilisation over samples whose instant satisfies
/// `keep`.  Panics on an unknown site (a scenario-definition bug).
fn site_utilisation_sum(r: &DaySweepResult, site: &str, keep: impl Fn(f64) -> bool) -> f64 {
    let idx = site_index(r, site);
    (0..r.samples.len())
        .filter(|&i| keep(r.samples[i].t.as_secs_f64()))
        .map(|i| r.samples[i].running[idx] as f64)
        .sum()
}

/// One site's exact whole-day core-seconds (charged at job start, not
/// sampled — robust to a sample grid sparser than the job holds).
fn site_core_seconds(r: &DaySweepResult, site: &str) -> f64 {
    r.core_seconds[site_index(r, site)]
}

fn site_index(r: &DaySweepResult, site: &str) -> usize {
    r.site_names
        .iter()
        .position(|n| n == site)
        .unwrap_or_else(|| panic!("unknown site '{site}'"))
}

/// Time-to-95%-of-twin-utilisation: the delay from `end_secs` (the close
/// of the fault window) until the faulted run's grid-total core-seconds
/// timeline first regains [`RECOVERY_UTILISATION_RATIO`] of the twin's in
/// the same bin.  Measured on the exact binned charge ledger
/// ([`DaySweepResult::site_core_bins`]) rather than the sparse running
/// samples, so the metric is deterministic across queue kinds and robust
/// to a sample grid sparser than the job holds.  The scan starts at the
/// first bin fully past `end_secs`; an empty twin bin (a quiet stretch of
/// the day) satisfies the ratio trivially — matching the intuition that
/// there is nothing to recover *to*.  `None` means utilisation never got
/// back within 5% before the series ended.
pub fn recovery_to_twin(
    fault: &DaySweepResult,
    twin: &DaySweepResult,
    end_secs: f64,
) -> Option<f64> {
    let w = fault.bin_secs;
    let fault_bins = fault.total_core_bins();
    let twin_bins = twin.total_core_bins();
    let bins = fault_bins.len().min(twin_bins.len());
    let first = (end_secs / w).ceil().max(0.0) as usize;
    (first.min(bins)..bins).find_map(|b| {
        if fault_bins[b] >= RECOVERY_UTILISATION_RATIO * twin_bins[b] {
            Some((b as f64 * w - end_secs).max(0.0))
        } else {
            None
        }
    })
}

fn ratio_check(
    name: &'static str,
    what: &str,
    got: usize,
    reference: usize,
    min_ratio: f64,
) -> CheckOutcome {
    let bound = (reference as f64 * min_ratio).ceil() as usize;
    CheckOutcome::new(
        name,
        got >= bound,
        format!(
            "{what}: {got} vs bound {bound} ({min_ratio:.0}% of {reference})",
            min_ratio = min_ratio * 100.0
        ),
    )
}

/// Runs one scenario (and its twin where the criteria are relative) and
/// judges it.  Composed scenarios keep the flash crowd in the twin (see
/// [`Scenario::twin_keeps_crowd`]); every other twin is fault-free.
pub fn run_scenario(scenario: Scenario, params: &ScenarioParams) -> ScenarioVerdict {
    let cfg = scenario.config(params);
    let result = run_day_sweep(&cfg);
    let baseline = scenario.needs_baseline().then(|| {
        let mut twin = cfg.clone();
        twin.faults = if scenario.twin_keeps_crowd() {
            flatten_faults(&twin.faults)
                .into_iter()
                .filter(|f| matches!(f, FaultSpec::FlashCrowd { .. }))
                .collect()
        } else {
            Vec::new()
        };
        run_day_sweep(&twin)
    });

    // Every verdict carries a recovery time: windowed relative scenarios
    // measure time-to-95%-of-twin on the binned core-seconds timelines;
    // scenarios without an outage window recover trivially (0 s).
    let window = outage_window(&cfg);
    let recovery_secs = match (&window, &baseline) {
        (Some((_, end)), Some(twin)) => recovery_to_twin(&result, twin, *end),
        _ => Some(0.0),
    };

    let mut checks = Vec::new();
    match scenario {
        Scenario::BaselineDay => {
            checks.push(CheckOutcome::new(
                "no_leaked_grants",
                result.leaked_grants == 0,
                format!(
                    "leaked_grants = {} (must be 0 on the standard day)",
                    result.leaked_grants
                ),
            ));
            checks.push(CheckOutcome::new(
                "no_jobs_killed",
                result.jobs_killed == 0,
                format!("jobs_killed = {}", result.jobs_killed),
            ));
            checks.push(CheckOutcome::new(
                "steady_state_alloc_free",
                result.steady_state_alloc_free(),
                format!(
                    "events capacity {} -> {}, scratch {} -> {}",
                    result.events_capacity_mid,
                    result.events_capacity_end,
                    result.rs_scratch_capacity_mid,
                    result.rs_scratch_capacity_end
                ),
            ));
            checks.push(ratio_check(
                "success_share",
                "succeeded",
                result.succeeded,
                result.submitted,
                BASELINE_SUCCESS_MIN,
            ));
        }
        Scenario::DeadPeerDay => {
            checks.push(CheckOutcome::new(
                "timeouts_fired",
                result.timeouts > 0,
                format!("reservation timeouts = {}", result.timeouts),
            ));
            checks.push(ratio_check(
                "success_share",
                "succeeded",
                result.succeeded,
                result.submitted,
                DEAD_PEER_SUCCESS_MIN,
            ));
            checks.push(CheckOutcome::new(
                "steady_state_alloc_free",
                result.steady_state_alloc_free(),
                format!(
                    "events capacity {} -> {}, scratch {} -> {}",
                    result.events_capacity_mid,
                    result.events_capacity_end,
                    result.rs_scratch_capacity_mid,
                    result.rs_scratch_capacity_end
                ),
            ));
        }
        Scenario::SiteOutage => {
            let twin = baseline.as_ref().expect("relative scenario");
            let (start, end) = outage_window(&cfg).expect("site outage declares a window");
            // The honest dip signal is per-site: killed jobs and dead peers
            // mean Rennes runs *nothing* during the window.  (Total running
            // counts can even rise during the outage: surviving placements
            // are pushed to farther sites, run longer under the model, and
            // linger in more samples.)  The twin comparison uses exact
            // core-seconds, not window samples: on the uncompressed day the
            // 5-minute sample grid is sparser than the job holds and can
            // legitimately catch the twin's Rennes empty too.
            let dark = site_utilisation_sum(&result, "rennes", |t| t >= start && t < end);
            let fault_cs = site_core_seconds(&result, "rennes");
            let twin_cs = site_core_seconds(twin, "rennes");
            checks.push(CheckOutcome::new(
                "site_goes_dark_during_outage",
                dark == 0.0 && twin_cs > 0.0 && fault_cs < twin_cs,
                format!(
                    "rennes outage-window utilisation {dark:.0}, whole-day core-seconds \
                     {fault_cs:.0} vs twin {twin_cs:.0} (the outage must remove rennes work)"
                ),
            ));
            let post_fault = utilisation_sum(&result, |t| t >= end);
            let post_base = utilisation_sum(twin, |t| t >= end);
            let post_ratio = post_fault / post_base.max(1.0);
            checks.push(CheckOutcome::new(
                "utilisation_recovers",
                post_ratio >= RECOVERY_UTILISATION_RATIO,
                format!(
                    "post-recovery utilisation ratio {post_ratio:.3} (bound {RECOVERY_UTILISATION_RATIO})"
                ),
            ));
            checks.push(CheckOutcome::new(
                "recovery_observed",
                recovery_secs.is_some(),
                match recovery_secs {
                    Some(s) => format!(
                        "utilisation regained the twin's level {s:.0}s after the outage ended"
                    ),
                    None => "utilisation never regained the twin's level".to_string(),
                },
            ));
            checks.push(ratio_check(
                "success_vs_baseline",
                "succeeded",
                result.succeeded,
                twin.succeeded,
                SITE_OUTAGE_SUCCESS_VS_BASELINE,
            ));
        }
        Scenario::FlashCrowd => {
            let twin = baseline.as_ref().expect("relative scenario");
            checks.push(CheckOutcome::new(
                "burst_arrivals_spliced",
                result.submitted > twin.submitted,
                format!(
                    "submitted {} vs no-burst twin {}",
                    result.submitted, twin.submitted
                ),
            ));
            checks.push(CheckOutcome::new(
                "throughput_not_reduced",
                result.succeeded >= twin.succeeded,
                format!(
                    "succeeded {} vs no-burst twin {} (extra load must not reduce completed work)",
                    result.succeeded, twin.succeeded
                ),
            ));
            checks.push(ratio_check(
                "success_share",
                "succeeded",
                result.succeeded,
                result.submitted,
                FLASH_CROWD_SUCCESS_MIN,
            ));
            checks.push(CheckOutcome::new(
                "steady_state_alloc_free",
                result.steady_state_alloc_free(),
                format!(
                    "events capacity {} -> {}, scratch {} -> {}",
                    result.events_capacity_mid,
                    result.events_capacity_end,
                    result.rs_scratch_capacity_mid,
                    result.rs_scratch_capacity_end
                ),
            ));
        }
        Scenario::SlowLinks => {
            let twin = baseline.as_ref().expect("relative scenario");
            checks.push(ratio_check(
                "success_vs_baseline",
                "succeeded",
                result.succeeded,
                twin.succeeded,
                SLOW_LINKS_SUCCESS_VS_BASELINE,
            ));
            checks.push(CheckOutcome::new(
                "no_leaked_grants",
                result.leaked_grants == 0,
                format!(
                    "leaked_grants = {} (5x latency must stay inside the 2s timeout)",
                    result.leaked_grants
                ),
            ));
        }
        Scenario::SupernodeCrash => {
            let twin = baseline.as_ref().expect("relative scenario");
            checks.push(ratio_check(
                "success_vs_baseline",
                "succeeded",
                result.succeeded,
                twin.succeeded,
                SUPERNODE_SUCCESS_VS_BASELINE,
            ));
            checks.push(CheckOutcome::new(
                "completed_jobs_while_degraded",
                result.succeeded > 0,
                format!("succeeded = {}", result.succeeded),
            ));
        }
        Scenario::GrantLeakStress => {
            checks.push(CheckOutcome::new(
                "grant_leak_path_exercised",
                result.leaked_grants > 0,
                format!("leaked_grants = {}", result.leaked_grants),
            ));
            checks.push(CheckOutcome::new(
                "leaks_eagerly_reclaimed",
                result.leaked_grants == 0 || result.leaked_grant_hwm < result.leaked_grants,
                format!(
                    "high-water mark {} of {} total leaks (eager release must drain between jobs)",
                    result.leaked_grant_hwm, result.leaked_grants
                ),
            ));
            checks.push(CheckOutcome::new(
                "no_jobs_killed",
                result.jobs_killed == 0,
                format!("jobs_killed = {}", result.jobs_killed),
            ));
        }
        Scenario::RackOutage => {
            let twin = baseline.as_ref().expect("relative scenario");
            let (start, end) = outage_window(&cfg).expect("rack outage declares a window");
            // The partial-site signal: Rennes keeps running work during
            // the window (the surviving racks) but strictly less than its
            // twin — dimmed, not dark.  Both sums come off the exact
            // binned charge ledger, so the comparison holds even when the
            // sample grid is sparser than the holds.
            let idx = site_index(&result, "rennes");
            let fault_win = result.site_core_seconds_between(idx, start, end);
            let twin_win = twin.site_core_seconds_between(idx, start, end);
            checks.push(CheckOutcome::new(
                "site_dims_not_dark",
                fault_win > 0.0 && fault_win < twin_win,
                format!(
                    "rennes outage-window core-seconds {fault_win:.0} vs twin {twin_win:.0} \
                     (the rack loss must dim the site, not darken it)"
                ),
            ));
            checks.push(CheckOutcome::new(
                "outage_kills_running_jobs",
                result.jobs_killed > 0,
                format!("jobs_killed = {}", result.jobs_killed),
            ));
            checks.push(ratio_check(
                "success_vs_baseline",
                "succeeded",
                result.succeeded,
                twin.succeeded,
                RACK_OUTAGE_SUCCESS_VS_BASELINE,
            ));
        }
        Scenario::OutageInCrowd | Scenario::OutageInCrowdWorst => {
            let twin = baseline.as_ref().expect("relative scenario");
            checks.push(CheckOutcome::new(
                "same_arrival_trace",
                result.submitted == twin.submitted,
                format!(
                    "submitted {} vs crowd twin {} (the twin keeps the crowd, so both runs \
                     replay one inflated trace)",
                    result.submitted, twin.submitted
                ),
            ));
            checks.push(CheckOutcome::new(
                "outage_kills_running_jobs",
                result.jobs_killed > 0,
                format!("jobs_killed = {}", result.jobs_killed),
            ));
            checks.push(ratio_check(
                "success_vs_baseline",
                "succeeded",
                result.succeeded,
                twin.succeeded,
                OUTAGE_IN_CROWD_SUCCESS_VS_BASELINE,
            ));
            checks.push(CheckOutcome::new(
                "recovery_observed",
                recovery_secs.is_some(),
                match recovery_secs {
                    Some(s) => format!(
                        "utilisation regained the crowd twin's level {s:.0}s after the outage \
                         ended"
                    ),
                    None => "utilisation never regained the twin's level".to_string(),
                },
            ));
        }
    }

    // The per-scenario recovery SLO: authored on the uncompressed day,
    // divided by the compression factor so the same bound judges every
    // scale.  A `None` recovery (never regained 95%) always fails.
    if let Some(slo) = scenario.recovery_slo_secs() {
        let bound = slo / params.compress.max(1.0);
        checks.push(CheckOutcome::new(
            "recovery_within_slo",
            recovery_secs.is_some_and(|s| s <= bound),
            match recovery_secs {
                Some(s) => format!("recovery {s:.0}s vs SLO {bound:.0}s (authored {slo:.0}s/day)"),
                None => format!("never recovered (SLO {bound:.0}s)"),
            },
        ));
    }

    ScenarioVerdict {
        scenario,
        result,
        baseline,
        recovery_secs,
        checks,
    }
}

/// Runs the full matrix in [`ALL_SCENARIOS`] order.
pub fn run_matrix(params: &ScenarioParams) -> Vec<ScenarioVerdict> {
    ALL_SCENARIOS
        .iter()
        .map(|&s| run_scenario(s, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in ALL_SCENARIOS {
            assert_eq!(Scenario::from_name(s.name()), Ok(s));
            assert!(!s.summary().is_empty());
        }
        let err = Scenario::from_name("meteor_strike").unwrap_err();
        assert!(err.contains("meteor_strike"), "{err}");
        // The error path must teach the caller the valid vocabulary.
        for s in ALL_SCENARIOS {
            assert!(err.contains(s.name()), "error {err:?} misses {}", s.name());
        }
    }

    #[test]
    fn configs_compress_fault_windows_with_the_day() {
        let params = ScenarioParams {
            compress: 24.0,
            ..ScenarioParams::default()
        };
        let cfg = Scenario::SiteOutage.config(&params);
        let (start, end) = outage_window(&cfg).unwrap();
        assert_eq!(start, 9.0 * 3600.0 / 24.0);
        assert_eq!(end - start, 2.0 * 3600.0 / 24.0);
        assert_eq!(cfg.profile.horizon(), SimDuration::from_secs(3600));
        // The flash crowd lives in the profile, not the timeline faults.
        let crowd = Scenario::FlashCrowd.config(&params);
        assert!(outage_window(&crowd).is_none());
        // The rack brown-out declares the same window as the site outage.
        let rack = Scenario::RackOutage.config(&params);
        assert_eq!(outage_window(&rack), Some((start, end)));
    }

    #[test]
    fn composed_config_compresses_phase_and_window_together() {
        let params = ScenarioParams {
            compress: 24.0,
            ..ScenarioParams::default()
        };
        // Nominal onset: 10:30 compressed, with the authored 2h length.
        let nominal = Scenario::OutageInCrowd.config(&params);
        let (start, end) = outage_window(&nominal).unwrap();
        assert_eq!(start, 10.5 * 3600.0 / 24.0);
        assert_eq!(end - start, 2.0 * 3600.0 / 24.0);
        // A +1h phase shift compresses to +150s: the window slides, the
        // duration does not.
        let shifted = outage_in_crowd_config(3600.0, &params);
        let (s2, e2) = outage_window(&shifted).unwrap();
        assert_eq!(s2, start + 3600.0 / 24.0);
        assert_eq!(e2 - s2, end - start);
    }

    #[test]
    fn flattening_applies_nested_offsets_and_clamps_at_day_start() {
        let tree = FaultSpec::PhaseShift {
            offset_secs: -7200.0,
            inner: Box::new(FaultSpec::Compose(vec![
                FaultSpec::SiteOutage {
                    site: "rennes".to_string(),
                    at: hours(1),
                    duration: hours(2),
                },
                FaultSpec::PhaseShift {
                    offset_secs: 3600.0,
                    inner: Box::new(FaultSpec::SupernodeOutage {
                        at: hours(9),
                        duration: hours(1),
                    }),
                },
            ])),
        };
        let flat = tree.flattened();
        assert_eq!(flat.len(), 2);
        match &flat[0] {
            FaultSpec::SiteOutage { at, duration, .. } => {
                // 1h - 2h clamps at the start of the day.
                assert_eq!(*at, SimDuration::from_secs(0));
                assert_eq!(*duration, hours(2));
            }
            other => panic!("expected a site outage, got {other:?}"),
        }
        match &flat[1] {
            FaultSpec::SupernodeOutage { at, duration } => {
                // Offsets nest additively: -2h + 1h = -1h off the 9h onset.
                assert_eq!(*at, hours(8));
                assert_eq!(*duration, hours(1));
            }
            other => panic!("expected a supernode outage, got {other:?}"),
        }
    }

    #[test]
    fn verdict_json_has_the_documented_shape() {
        let verdict = run_scenario(
            Scenario::BaselineDay,
            &ScenarioParams {
                compress: 24.0,
                rate_scale: 0.01,
                ..ScenarioParams::default()
            },
        );
        let json = verdict.to_json();
        assert!(json.contains(r#""scenario": "baseline_day""#));
        assert!(json.contains(r#""metrics""#));
        assert!(json.contains(r#""leaked_grants": 0"#));
        assert!(json.contains(r#""baseline": null"#));
        assert!(json.contains(r#""checks""#));
    }
}
