//! Plain-text (TSV) rendering of experiment results, in the same shape as
//! the paper's tables and figure data series.

use crate::experiments::Fig4Point;
use p2pmpi_grid5000::scenario::SweepRow;
use p2pmpi_grid5000::sites::{ClusterSpec, SITE_ORDER};
use p2pmpi_grid5000::testbed::legend;

/// Renders Table 1 from the cluster specifications.
pub fn format_table1(specs: &[ClusterSpec]) -> String {
    let mut out = String::from("Site\tCluster\tCPU\t#Nodes\t#CPUs\t#Cores\n");
    for s in specs {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            s.site, s.cluster, s.cpu_model, s.nodes, s.cpus, s.cores
        ));
    }
    let (hosts, cores) = p2pmpi_grid5000::sites::totals();
    out.push_str(&format!("total\t\t\t{hosts}\t\t{cores}\n"));
    out
}

/// Renders the figure legend the paper prints in the top-left corner of
/// Figures 2 and 3: per site, the RTT to Nancy and the available hosts and
/// cores.
pub fn print_legend() -> String {
    let mut out = String::from("# site\trtt_to_nancy_ms\thosts\tcores\n");
    for (site, rtt, hosts, cores) in legend() {
        out.push_str(&format!("# {site}\t{rtt:.3}\t{hosts}\t{cores}\n"));
    }
    out
}

/// Renders the two panels of Figure 2 or Figure 3: allocated hosts per site
/// and allocated cores (processes) per site, one row per demanded process
/// count and one column per site.
pub fn print_sweep_tables(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&print_legend());

    for (title, pick) in [("allocated_hosts", true), ("allocated_cores", false)] {
        out.push_str(&format!("\n[{title}]\n"));
        out.push_str("demanded");
        for site in SITE_ORDER {
            out.push_str(&format!("\t{site}"));
        }
        out.push_str("\ttotal\n");
        for row in rows {
            out.push_str(&format!("{}", row.demanded));
            let mut total: u64 = 0;
            for site in SITE_ORDER {
                let value = row
                    .usage
                    .iter()
                    .find(|u| u.site_name == *site)
                    .map(|u| if pick { u.hosts as u64 } else { u.processes })
                    .unwrap_or(0);
                total += value;
                out.push_str(&format!("\t{value}"));
            }
            out.push_str(&format!("\t{total}\n"));
        }
    }
    out
}

/// Renders one Figure 4 data series (execution time vs process count) for a
/// set of strategy runs.
pub fn print_fig4_table(kernel: &str, class: &str, series: &[(&str, &[Fig4Point])]) -> String {
    let mut out = format!("# {kernel} (CLASS {class}) — virtual execution time in seconds\n");
    out.push_str("processes");
    for (name, _) in series {
        out.push_str(&format!("\t{name}_s\t{name}_hosts"));
    }
    out.push('\n');
    let counts: Vec<u32> = series
        .first()
        .map(|(_, pts)| pts.iter().map(|p| p.processes).collect())
        .unwrap_or_default();
    for (i, n) in counts.iter().enumerate() {
        out.push_str(&format!("{n}"));
        for (_, pts) in series {
            let p = &pts[i];
            debug_assert_eq!(p.processes, *n);
            out.push_str(&format!(
                "\t{:.3}\t{}",
                p.makespan.as_secs_f64(),
                p.hosts_used
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_core::stats::SiteUsage;
    use p2pmpi_core::strategy::StrategyKind;
    use p2pmpi_grid5000::sites::TABLE1;
    use p2pmpi_simgrid::time::SimDuration;
    use p2pmpi_simgrid::topology::SiteId;

    #[test]
    fn table1_lists_every_cluster_and_totals() {
        let t = format_table1(TABLE1);
        assert!(t.contains("grelon"));
        assert!(t.contains("sol"));
        assert!(t.contains("Intel Itanium 2"));
        assert!(t.contains("total\t\t\t350\t\t1040"));
        assert_eq!(t.lines().count(), 1 + 8 + 1);
    }

    #[test]
    fn legend_has_six_sites() {
        let l = print_legend();
        assert_eq!(l.lines().count(), 7);
        assert!(l.contains("nancy\t0.087\t60\t240"));
        assert!(l.contains("sophia\t17.167\t70\t216"));
    }

    #[test]
    fn sweep_table_has_both_panels() {
        let rows = vec![SweepRow {
            demanded: 100,
            success: true,
            usage: vec![SiteUsage {
                site: SiteId(0),
                site_name: "nancy".to_string(),
                hosts: 25,
                processes: 100,
            }],
            elapsed: SimDuration::from_millis(40),
            booking: (125, 100, 0, 0),
        }];
        let t = print_sweep_tables(&rows);
        assert!(t.contains("[allocated_hosts]"));
        assert!(t.contains("[allocated_cores]"));
        assert!(t.contains("100\t25\t0\t0\t0\t0\t0\t25"));
        assert!(t.contains("100\t100\t0\t0\t0\t0\t0\t100"));
    }

    #[test]
    fn fig4_table_shape() {
        let mk = |n: u32, s: f64| Fig4Point {
            processes: n,
            strategy: StrategyKind::Spread,
            hosts_used: n as usize,
            makespan: SimDuration::from_secs_f64(s),
            verified: true,
        };
        let spread = vec![mk(32, 1.5), mk(64, 1.0)];
        let conc = vec![mk(32, 2.0), mk(64, 1.2)];
        let t = print_fig4_table("EP", "B", &[("concentrate", &conc), ("spread", &spread)]);
        assert!(t.starts_with("# EP (CLASS B)"));
        assert!(t.contains("processes\tconcentrate_s\tconcentrate_hosts\tspread_s\tspread_hosts"));
        assert!(t.contains("32\t2.000\t32\t1.500\t32"));
        assert!(t.contains("64\t1.200\t64\t1.000\t64"));
    }
}
