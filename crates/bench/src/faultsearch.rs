//! Adversarial fault-timing search: slide an outage's phase against the
//! day's flash crowd and hunt the offset that maximises recovery time.
//!
//! The scenario matrix pins *one* onset per fault, but the inhomogeneous
//! Poisson day means the same outage can be benign at 06:00 and brutal at
//! 10:30 — the damage depends on what the grid was doing when the rack
//! went down.  This module turns [`FaultSpec::PhaseShift`] into a search
//! knob: [`search_worst_phase`] evaluates the composed outage-in-crowd
//! scenario ([`outage_in_crowd_config`]) at a grid of phase offsets, then
//! optionally refines the worst bracket with golden-section iterations,
//! all against one shared crowd-only twin (the outage never reshapes
//! arrivals, so every offset replays the identical inflated trace).
//!
//! The objective is the recovery time of [`recovery_to_twin`]: seconds
//! after the outage clears until grid-total utilisation regains 95% of
//! the twin's, measured on the exact binned core-seconds timelines.  An
//! offset whose utilisation *never* recovers is scored with the remaining
//! virtual day (a pessimistic upper bound), so "never recovered" always
//! dominates any finite recovery.
//!
//! The found worst case is pinned as the `outage_in_crowd_worst` scenario
//! ([`OUTAGE_IN_CROWD_WORST_OFFSET_SECS`]); the `fault_search` binary
//! re-runs the hunt and fails loudly when the worst phase is no longer at
//! least 10% worse than the nominal onset — the signal that placement or
//! profile changes moved the worst case and the pin needs re-validation.
//!
//! [`FaultSpec::PhaseShift`]: crate::workload::FaultSpec::PhaseShift
//! [`OUTAGE_IN_CROWD_WORST_OFFSET_SECS`]: crate::scenario::OUTAGE_IN_CROWD_WORST_OFFSET_SECS

use crate::scenario::{outage_in_crowd_config, outage_window, recovery_to_twin, ScenarioParams};
use crate::workload::{flatten_faults, run_day_sweep, DaySweepResult, FaultSpec};

/// Inverse golden ratio: the interior-point placement of the
/// golden-section refinement.
const INV_PHI: f64 = 0.618_033_988_749_894_8;

/// Knobs of one adversarial phase search.
#[derive(Debug, Clone)]
pub struct PhaseSearchParams {
    /// Scale knobs shared with the scenario matrix (compression, rate
    /// scale, seed, queue, strategy override).
    pub scenario: ScenarioParams,
    /// Phase offsets to evaluate, in seconds on the *uncompressed* day
    /// (compression scales them inside the config, like every fault
    /// time).  Offset 0 — the nominal onset — is always evaluated, listed
    /// or not.
    pub offsets: Vec<f64>,
    /// Golden-section iterations refining the worst grid bracket
    /// (0 = grid sweep only).  Each iteration costs one sweep run.
    pub refine_iters: usize,
}

impl Default for PhaseSearchParams {
    fn default() -> Self {
        PhaseSearchParams {
            scenario: ScenarioParams::default(),
            // ±2h around the nominal 10:30 onset in half-hour steps: the
            // band where the outage window can straddle the 10:00 crowd.
            offsets: (-4..=4).map(|k| k as f64 * 1800.0).collect(),
            refine_iters: 0,
        }
    }
}

/// One evaluated phase offset.
#[derive(Debug, Clone, Copy)]
pub struct PhasePoint {
    /// The offset, in uncompressed seconds (the search coordinate).
    pub offset_secs: f64,
    /// Recovery time in the run's (compressed) coordinates.  When
    /// `recovered` is false this is the remaining virtual day after the
    /// window — the pessimistic score of a run that never got back.
    pub recovery_secs: f64,
    /// Whether utilisation actually regained 95% of the twin's.
    pub recovered: bool,
    /// Jobs placed and run at this phase.
    pub succeeded: usize,
    /// Jobs submitted (identical across phases — one shared trace).
    pub submitted: usize,
    /// Running jobs the outage killed at this phase.
    pub jobs_killed: u64,
}

/// Everything one [`search_worst_phase`] hunt produced.
#[derive(Debug, Clone)]
pub struct PhaseSearchReport {
    /// Every evaluated point, in evaluation order (grid first, then
    /// refinement).
    pub points: Vec<PhasePoint>,
    /// The nominal-onset point (offset 0).
    pub nominal: PhasePoint,
    /// The worst point found (maximum recovery time; first wins ties).
    pub worst: PhasePoint,
    /// How many of the points came from golden-section refinement.
    pub refined_evals: usize,
}

impl PhaseSearchReport {
    /// Worst-vs-nominal recovery ratio (∞ when the nominal onset recovers
    /// instantly but the worst phase does not).
    pub fn worst_over_nominal(&self) -> f64 {
        if self.nominal.recovery_secs > 0.0 {
            self.worst.recovery_secs / self.nominal.recovery_secs
        } else if self.worst.recovery_secs > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Runs the composed scenario at one phase offset and scores it against
/// the shared crowd twin.
fn eval_phase(offset_secs: f64, params: &ScenarioParams, twin: &DaySweepResult) -> PhasePoint {
    let cfg = outage_in_crowd_config(offset_secs, params);
    let (_, end) = outage_window(&cfg).expect("the composed scenario declares an outage window");
    let result = run_day_sweep(&cfg);
    let recovery = recovery_to_twin(&result, twin, end);
    let horizon = cfg.profile.horizon().as_secs_f64();
    PhasePoint {
        offset_secs,
        recovery_secs: recovery.unwrap_or((horizon - end).max(0.0)),
        recovered: recovery.is_some(),
        succeeded: result.succeeded,
        submitted: result.submitted,
        jobs_killed: result.jobs_killed,
    }
}

/// Grid-sweeps the phase offsets (plus the nominal onset) and optionally
/// golden-section-refines the bracket around the worst grid point,
/// returning every evaluated point and the worst found.  One crowd-only
/// twin is run up front and shared by every evaluation.
pub fn search_worst_phase(p: &PhaseSearchParams) -> PhaseSearchReport {
    // The shared twin: the crowd without the outage.  Every phase offset
    // replays this exact trace (the outage is a pure timeline fault), so
    // one run serves all evaluations.
    let mut twin_cfg = outage_in_crowd_config(0.0, &p.scenario);
    twin_cfg.faults = flatten_faults(&twin_cfg.faults)
        .into_iter()
        .filter(|f| matches!(f, FaultSpec::FlashCrowd { .. }))
        .collect();
    let twin = run_day_sweep(&twin_cfg);

    let mut offsets = p.offsets.clone();
    if !offsets.contains(&0.0) {
        offsets.push(0.0);
    }
    offsets.sort_by(|a, b| a.partial_cmp(b).expect("finite offsets"));
    offsets.dedup();

    let mut points: Vec<PhasePoint> = offsets
        .iter()
        .map(|&o| eval_phase(o, &p.scenario, &twin))
        .collect();
    let nominal = *points
        .iter()
        .find(|pt| pt.offset_secs == 0.0)
        .expect("offset 0 is always evaluated");

    let worst_idx = |pts: &[PhasePoint]| {
        let mut best = 0usize;
        for (i, pt) in pts.iter().enumerate() {
            if pt.recovery_secs > pts[best].recovery_secs {
                best = i;
            }
        }
        best
    };

    // Golden-section refinement over the bracket spanned by the worst
    // grid point's neighbours.  Recovery vs phase is not unimodal in
    // general, but near a burst the worst basin is — and the grid sweep
    // already bounds how wrong a non-unimodal bracket can be (the grid
    // worst is kept regardless).
    let mut refined_evals = 0usize;
    if p.refine_iters > 0 && offsets.len() >= 2 {
        let wi = worst_idx(&points);
        let a = if wi > 0 { offsets[wi - 1] } else { offsets[wi] };
        let b = if wi + 1 < offsets.len() {
            offsets[wi + 1]
        } else {
            offsets[wi]
        };
        if b > a {
            let (mut lo, mut hi) = (a, b);
            let mut x1 = hi - INV_PHI * (hi - lo);
            let mut x2 = lo + INV_PHI * (hi - lo);
            let mut f1 = eval_phase(x1, &p.scenario, &twin);
            let mut f2 = eval_phase(x2, &p.scenario, &twin);
            points.push(f1);
            points.push(f2);
            refined_evals += 2;
            for _ in 0..p.refine_iters {
                if f1.recovery_secs >= f2.recovery_secs {
                    hi = x2;
                    x2 = x1;
                    f2 = f1;
                    x1 = hi - INV_PHI * (hi - lo);
                    f1 = eval_phase(x1, &p.scenario, &twin);
                    points.push(f1);
                } else {
                    lo = x1;
                    x1 = x2;
                    f1 = f2;
                    x2 = lo + INV_PHI * (hi - lo);
                    f2 = eval_phase(x2, &p.scenario, &twin);
                    points.push(f2);
                }
                refined_evals += 1;
            }
        }
    }

    let worst = points[worst_idx(&points)];
    PhaseSearchReport {
        points,
        nominal,
        worst,
        refined_evals,
    }
}
