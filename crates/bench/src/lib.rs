//! # p2pmpi-bench
//!
//! Experiment harness for the `p2pmpi-rs` reproduction: the binaries in
//! `src/bin/` regenerate every table and figure of the paper's evaluation
//! (Section 5), and the Criterion benches in `benches/` measure the cost of
//! the co-allocation machinery itself.
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Table 1 (available resources) | `table1` |
//! | Figure 2 (concentrate: hosts & cores per site) | `fig2_concentrate` |
//! | Figure 3 (spread: hosts & cores per site) | `fig3_spread` |
//! | Figures 2–3 at sweep scale (day-trace utilisation) | `fig23_sweep` |
//! | Figure 4 left (EP class B execution times) | `fig4_ep` |
//! | Figure 4 right (IS class B execution times) | `fig4_is` |
//! | §5.1 latency-ranking discussion & ablations | `sweep` |
//!
//! Beyond the paper: `placement_search` anneals host assignments under the
//! LogGP model (the [`search`] module) — the third, *searched* curve of
//! `fig4_ep`/`fig4_is --searched` — `scenario_runner` sweeps the
//! fault-injection scenario matrix (the [`scenario`] module), judging each
//! named adversity replay against its graceful-degradation criteria, and
//! `fault_search` (the [`faultsearch`] module) hunts the adversarial
//! fault phase that maximises recovery time.

#![warn(missing_docs)]

pub mod cliargs;
pub mod experiments;
pub mod faultsearch;
pub mod output;
pub mod scenario;
pub mod search;
pub mod shard;
pub mod workload;

pub use experiments::{fig2_fig3_sweep, fig4_kernel_times, Fig4Kernel, Fig4Point, Fig4Settings};
pub use faultsearch::{search_worst_phase, PhasePoint, PhaseSearchParams, PhaseSearchReport};
pub use output::{print_fig4_table, print_legend, print_sweep_tables};
pub use scenario::{
    outage_in_crowd_config, outage_in_crowd_faults, recovery_to_twin, run_matrix, run_scenario,
    Scenario, ScenarioParams, ScenarioVerdict, ALL_SCENARIOS, OUTAGE_IN_CROWD_WORST_OFFSET_SECS,
};
pub use search::{search_placement, SearchParams, SearchReport};
pub use shard::{run_shard_sweep, ShardSweepConfig, ShardSweepResult};
pub use workload::{
    flatten_faults, run_day_sweep, BurstyArrivals, DayProfile, DaySweepConfig, DaySweepResult,
    FaultSpec, JobMix, PoissonArrivals,
};
