//! Experiment drivers shared by the figure-regeneration binaries and the
//! integration tests.

use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::scenario::{coallocation_sweep, paper_demand_steps, SweepRow};
use p2pmpi_grid5000::testbed::grid5000_testbed;
use p2pmpi_mpi::placement::Placement;
use p2pmpi_mpi::runtime::MpiRuntime;
use p2pmpi_nas::classes::Class;
use p2pmpi_nas::ep::{ep_kernel, EpConfig};
use p2pmpi_nas::is::{is_kernel, IsConfig};
use p2pmpi_simgrid::memory::MemoryContentionModel;
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::time::SimDuration;

/// Runs the Figure 2 / Figure 3 co-allocation sweep (100..600 processes by
/// 50) for a strategy, with the given probe-noise sigma (0 disables noise).
pub fn fig2_fig3_sweep(strategy: StrategyKind, seed: u64, noise_sigma: f64) -> Vec<SweepRow> {
    let noise = if noise_sigma == 0.0 {
        NoiseModel::disabled()
    } else {
        NoiseModel::with_sigma(noise_sigma)
    };
    coallocation_sweep(strategy, &paper_demand_steps(), seed, noise)
}

/// Which NAS kernel a Figure 4 run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Kernel {
    /// Embarrassingly Parallel (Figure 4, left).
    Ep,
    /// Integer Sort (Figure 4, right).
    Is,
}

impl Fig4Kernel {
    /// Program name used on the `p2pmpirun` command line.
    pub fn program(&self) -> &'static str {
        match self {
            Fig4Kernel::Ep => "NAS.EP",
            Fig4Kernel::Is => "NAS.IS",
        }
    }
}

/// Knobs of a Figure 4 style run.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Settings {
    /// NAS problem class (the paper uses B).
    pub class: Class,
    /// EP sampling divisor (the charged time stays class-accurate; see
    /// `p2pmpi-nas`).  EP class B generates 2^30 pairs, so some sampling is
    /// needed to keep wall-clock time reasonable.
    pub ep_sample_divisor: u64,
    /// IS sampling divisor (1 = sort the full key array).
    pub is_sample_divisor: u64,
    /// RNG seed for the testbed (probe noise).
    pub seed: u64,
    /// Override of the memory-contention coefficient (ablation); `None`
    /// keeps the default model.
    pub contention_alpha: Option<f64>,
}

impl Default for Fig4Settings {
    fn default() -> Self {
        Fig4Settings {
            class: Class::B,
            ep_sample_divisor: 512,
            is_sample_divisor: 8,
            seed: 42,
            contention_alpha: None,
        }
    }
}

impl Fig4Settings {
    /// A configuration small enough for unit/integration tests.
    pub fn test_sized() -> Self {
        Fig4Settings {
            class: Class::S,
            ep_sample_divisor: 16,
            is_sample_divisor: 4,
            seed: 7,
            contention_alpha: None,
        }
    }
}

/// One measured point of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Number of MPI processes.
    pub processes: u32,
    /// Allocation strategy used.
    pub strategy: StrategyKind,
    /// Distinct hosts the job ran on.
    pub hosts_used: usize,
    /// Virtual execution time of the kernel.
    pub makespan: SimDuration,
    /// Whether the kernel's own verification passed.
    pub verified: bool,
}

/// Measures the kernel's virtual execution time for each process count under
/// one allocation strategy, on a fresh Grid'5000 testbed per point (as in
/// the paper, each point is an independent run).
pub fn fig4_kernel_times(
    kernel: Fig4Kernel,
    strategy: StrategyKind,
    counts: &[u32],
    settings: &Fig4Settings,
) -> Vec<Fig4Point> {
    counts
        .iter()
        .map(|&n| run_kernel_once(kernel, strategy, n, settings))
        .collect()
}

/// Allocates `n` processes with `strategy` on a fresh testbed and runs the
/// kernel once, returning the measured point.
pub fn run_kernel_once(
    kernel: Fig4Kernel,
    strategy: StrategyKind,
    n: u32,
    settings: &Fig4Settings,
) -> Fig4Point {
    let mut tb = grid5000_testbed(settings.seed.wrapping_add(n as u64), NoiseModel::default());
    let request = JobRequest::new(n, strategy, kernel.program());
    let report = allocate(&mut tb.overlay, tb.submitter, &request);
    let allocation = report.allocation().clone();
    let placement = Placement::from_allocation(&allocation);

    let mut runtime = MpiRuntime::new(tb.topology.clone());
    if let Some(alpha) = settings.contention_alpha {
        runtime = runtime.with_contention(MemoryContentionModel::with_alpha(alpha));
    }

    let (makespan, verified) = match kernel {
        Fig4Kernel::Ep => {
            let config = EpConfig::sampled(settings.class, settings.ep_sample_divisor);
            let result = runtime.run(&placement, move |comm| ep_kernel(comm, &config));
            let ok = result.all_ranks_completed()
                && result.result_of(0).map(|r| r.verify()).unwrap_or(false);
            (result.makespan, ok)
        }
        Fig4Kernel::Is => {
            let config = IsConfig::sampled(settings.class, settings.is_sample_divisor);
            let result = runtime.run(&placement, move |comm| is_kernel(comm, &config));
            let ok = result.all_ranks_completed()
                && result.result_of(0).map(|r| r.verified).unwrap_or(false);
            (result.makespan, ok)
        }
    };

    Fig4Point {
        processes: n,
        strategy,
        hosts_used: allocation.hosts_used(),
        makespan,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_kernel_metadata() {
        assert_eq!(Fig4Kernel::Ep.program(), "NAS.EP");
        assert_eq!(Fig4Kernel::Is.program(), "NAS.IS");
        let d = Fig4Settings::default();
        assert_eq!(d.class, Class::B);
        assert!(d.ep_sample_divisor > 1);
        let t = Fig4Settings::test_sized();
        assert_eq!(t.class, Class::S);
    }

    #[test]
    fn small_ep_point_runs_and_verifies() {
        let settings = Fig4Settings {
            ep_sample_divisor: 1,
            ..Fig4Settings::test_sized()
        };
        let point = run_kernel_once(Fig4Kernel::Ep, StrategyKind::Concentrate, 8, &settings);
        assert_eq!(point.processes, 8);
        assert!(point.verified);
        assert!(point.makespan > SimDuration::ZERO);
        // 8 processes concentrate onto two quad-core Nancy nodes.
        assert_eq!(point.hosts_used, 2);
    }

    #[test]
    fn small_is_point_runs_and_verifies() {
        let settings = Fig4Settings::test_sized();
        let point = run_kernel_once(Fig4Kernel::Is, StrategyKind::Spread, 8, &settings);
        assert!(point.verified);
        assert_eq!(point.hosts_used, 8);
        assert!(point.makespan > SimDuration::ZERO);
    }

    #[test]
    fn fig2_sweep_first_point_is_nancy_only_under_concentrate() {
        let rows = fig2_fig3_sweep(StrategyKind::Concentrate, 1, 0.0);
        assert_eq!(rows.len(), 11);
        let first = &rows[0];
        assert_eq!(first.demanded, 100);
        assert!(first.success);
        let nancy = first.usage.iter().find(|u| u.site_name == "nancy").unwrap();
        assert_eq!(nancy.processes, 100);
    }
}
