//! Experiment drivers shared by the figure-regeneration binaries and the
//! integration tests.

use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::scenario::{coallocation_sweep, paper_demand_steps, SweepRow};
use p2pmpi_grid5000::sites::{scale_factor_for_cores, scaled_table1};
use p2pmpi_grid5000::testbed::{grid5000_testbed, topology_from_specs};
use p2pmpi_mpi::model::CollectiveBackend;
use p2pmpi_mpi::placement::Placement;
use p2pmpi_mpi::runtime::MpiRuntime;
use p2pmpi_nas::classes::Class;
use p2pmpi_nas::ep::{ep_kernel, ep_model, EpConfig};
use p2pmpi_nas::ft::{ft_model, FtConfig};
use p2pmpi_nas::is::{is_kernel, is_model, IsConfig};
use p2pmpi_simgrid::memory::MemoryContentionModel;
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::time::SimDuration;
use p2pmpi_simgrid::topology::{HostId, Topology};
use std::sync::Arc;

/// Runs the Figure 2 / Figure 3 co-allocation sweep (100..600 processes by
/// 50) for a strategy, with the given probe-noise sigma (0 disables noise).
pub fn fig2_fig3_sweep(strategy: StrategyKind, seed: u64, noise_sigma: f64) -> Vec<SweepRow> {
    let noise = if noise_sigma == 0.0 {
        NoiseModel::disabled()
    } else {
        NoiseModel::with_sigma(noise_sigma)
    };
    coallocation_sweep(strategy, &paper_demand_steps(), seed, noise)
}

/// Which NAS kernel a Figure 4 run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Kernel {
    /// Embarrassingly Parallel (Figure 4, left).
    Ep,
    /// Integer Sort (Figure 4, right).
    Is,
    /// Fourier Transform (extension; model-only — the paper never ran FT,
    /// but its global transpose is the alltoall-heavy pattern the placement
    /// search targets at scale).
    Ft,
}

impl Fig4Kernel {
    /// Program name used on the `p2pmpirun` command line.
    pub fn program(&self) -> &'static str {
        match self {
            Fig4Kernel::Ep => "NAS.EP",
            Fig4Kernel::Is => "NAS.IS",
            Fig4Kernel::Ft => "NAS.FT",
        }
    }
}

/// Knobs of a Figure 4 style run.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Settings {
    /// NAS problem class (the paper uses B).
    pub class: Class,
    /// EP sampling divisor (the charged time stays class-accurate; see
    /// `p2pmpi-nas`).  EP class B generates 2^30 pairs, so some sampling is
    /// needed to keep wall-clock time reasonable.
    pub ep_sample_divisor: u64,
    /// IS sampling divisor (1 = sort the full key array).
    pub is_sample_divisor: u64,
    /// RNG seed for the testbed (probe noise).
    pub seed: u64,
    /// Override of the memory-contention coefficient (ablation); `None`
    /// keeps the default model.
    pub contention_alpha: Option<f64>,
    /// How collectives are costed: executed thread-per-rank (the default) or
    /// the LogGP analytical model (`p2pmpi_mpi::model`), which scales to
    /// thousands of ranks.
    pub backend: CollectiveBackend,
}

impl Default for Fig4Settings {
    fn default() -> Self {
        Fig4Settings {
            class: Class::B,
            ep_sample_divisor: 512,
            is_sample_divisor: 8,
            seed: 42,
            contention_alpha: None,
            backend: CollectiveBackend::Executed,
        }
    }
}

impl Fig4Settings {
    /// A configuration small enough for unit/integration tests.
    pub fn test_sized() -> Self {
        Fig4Settings {
            class: Class::S,
            ep_sample_divisor: 16,
            is_sample_divisor: 4,
            seed: 7,
            contention_alpha: None,
            backend: CollectiveBackend::Executed,
        }
    }

    /// The same settings with the analytical backend selected.
    pub fn modeled(mut self) -> Self {
        self.backend = CollectiveBackend::Modeled;
        self
    }
}

/// One measured point of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Number of MPI processes.
    pub processes: u32,
    /// Allocation strategy used.
    pub strategy: StrategyKind,
    /// Distinct hosts the job ran on.
    pub hosts_used: usize,
    /// Virtual execution time of the kernel.
    pub makespan: SimDuration,
    /// Whether the kernel's own verification passed.
    pub verified: bool,
}

/// Measures the kernel's virtual execution time for each process count under
/// one allocation strategy, on a fresh Grid'5000 testbed per point (as in
/// the paper, each point is an independent run).
pub fn fig4_kernel_times(
    kernel: Fig4Kernel,
    strategy: StrategyKind,
    counts: &[u32],
    settings: &Fig4Settings,
) -> Vec<Fig4Point> {
    counts
        .iter()
        .map(|&n| run_kernel_once(kernel, strategy, n, settings))
        .collect()
}

/// Allocates `n` processes with `strategy` on a fresh testbed and runs the
/// kernel once, returning the measured point.
///
/// The collectives are costed by `settings.backend`: executed thread-per-rank
/// or the analytical model (a modeled point carries `verified = true`, since
/// the model computes clocks, not data — there is no numerical result to
/// check).  Either way the placement comes from a real co-allocation on the
/// overlay, so the two backends are directly comparable point by point.
pub fn run_kernel_once(
    kernel: Fig4Kernel,
    strategy: StrategyKind,
    n: u32,
    settings: &Fig4Settings,
) -> Fig4Point {
    let mut tb = grid5000_testbed(settings.seed.wrapping_add(n as u64), NoiseModel::default());
    let request = JobRequest::new(n, strategy, kernel.program());
    let report = allocate(&mut tb.overlay, tb.submitter, &request);
    let allocation = report.allocation().clone();
    let placement = Placement::from_allocation(&allocation);
    run_kernel_on_placement(kernel, strategy, &placement, &tb.topology, settings)
}

/// Runs (or models) the kernel once over an explicit placement; `strategy`
/// only labels the resulting point (the placement already encodes it).
pub fn run_kernel_on_placement(
    kernel: Fig4Kernel,
    strategy: StrategyKind,
    placement: &Placement,
    topology: &Arc<Topology>,
    settings: &Fig4Settings,
) -> Fig4Point {
    let mut runtime = MpiRuntime::new(topology.clone()).with_backend(settings.backend);
    if let Some(alpha) = settings.contention_alpha {
        runtime = runtime.with_contention(MemoryContentionModel::with_alpha(alpha));
    }

    let (makespan, verified) = match (settings.backend, kernel) {
        (CollectiveBackend::Executed, Fig4Kernel::Ep) => {
            let config = EpConfig::sampled(settings.class, settings.ep_sample_divisor);
            let result = runtime.run(placement, move |comm| ep_kernel(comm, &config));
            let ok = result.all_ranks_completed()
                && result.result_of(0).map(|r| r.verify()).unwrap_or(false);
            (result.makespan, ok)
        }
        (CollectiveBackend::Executed, Fig4Kernel::Is) => {
            let config = IsConfig::sampled(settings.class, settings.is_sample_divisor);
            let result = runtime.run(placement, move |comm| is_kernel(comm, &config));
            let ok = result.all_ranks_completed()
                && result.result_of(0).map(|r| r.verified).unwrap_or(false);
            (result.makespan, ok)
        }
        (CollectiveBackend::Modeled, Fig4Kernel::Ep) => {
            let config = EpConfig::sampled(settings.class, settings.ep_sample_divisor);
            let mut model = runtime.model_comm(placement);
            (ep_model(&mut model, &config), true)
        }
        (CollectiveBackend::Modeled, Fig4Kernel::Is) => {
            let config = IsConfig::sampled(settings.class, settings.is_sample_divisor);
            let mut model = runtime.model_comm(placement);
            (is_model(&mut model, &config), true)
        }
        (CollectiveBackend::Executed, Fig4Kernel::Ft) => {
            panic!("FT is model-only (no executed kernel); run it with --modeled")
        }
        (CollectiveBackend::Modeled, Fig4Kernel::Ft) => {
            let config = FtConfig::new(settings.class);
            let mut model = runtime.model_comm(placement);
            (ft_model(&mut model, &config), true)
        }
    };

    Fig4Point {
        processes: placement.processes,
        strategy,
        hosts_used: placement.hosts_used(),
        makespan,
        verified,
    }
}

/// Host booking order the co-allocator uses on an *idle* grid: ascending
/// application-level RTT from the Nancy submitter (the first Nancy host),
/// ties broken by host id.
pub fn hosts_by_rtt(topology: &Topology) -> Vec<HostId> {
    let submitter = topology
        .site_by_name("nancy")
        .map(|s| s.id)
        .unwrap_or_else(|| topology.sites()[0].id);
    let submitter_host = topology
        .hosts_at_site(submitter)
        .next()
        .expect("the submitter site has at least one host")
        .id;
    let mut hosts: Vec<HostId> = topology.hosts().iter().map(|h| h.id).collect();
    hosts.sort_by_key(|&h| (topology.rtt(submitter_host, h), h));
    hosts
}

/// The placement `strategy` produces on an idle grid, built directly from
/// the topology (no overlay booking round): *concentrate* fills each host to
/// its core count in RTT order, *spread* deals one process per host in RTT
/// order, wrapping only once every host is used.  This is what sweep-scale
/// modeled experiments use beyond the real grid's 1040-core capacity, where
/// a live co-allocation could never succeed.
///
/// # Panics
///
/// Panics if `n` exceeds the topology's total cores, or for the `Balanced`
/// strategy (not used by any Figure 4 experiment).
pub fn synthetic_placement(topology: &Topology, strategy: StrategyKind, n: u32) -> Placement {
    assert!(
        n as usize <= topology.total_cores(),
        "{n} processes exceed the grid's {} cores; scale the topology first",
        topology.total_cores()
    );
    let hosts = hosts_by_rtt(topology);
    let mut slots: Vec<HostId> = Vec::with_capacity(n as usize);
    match strategy {
        StrategyKind::Concentrate => {
            'outer: for &h in &hosts {
                for _ in 0..topology.host(h).cores {
                    slots.push(h);
                    if slots.len() == n as usize {
                        break 'outer;
                    }
                }
            }
        }
        StrategyKind::Spread => {
            let mut filled = vec![0usize; hosts.len()];
            'rounds: loop {
                for (i, &h) in hosts.iter().enumerate() {
                    if filled[i] < topology.host(h).cores {
                        filled[i] += 1;
                        slots.push(h);
                        if slots.len() == n as usize {
                            break 'rounds;
                        }
                    }
                }
            }
        }
        StrategyKind::Balanced { .. } | StrategyKind::Searched => {
            panic!("synthetic placements support concentrate and spread only")
        }
    }
    Placement::one_per_host(&slots)
}

/// Measures modeled kernel times for each process count under one strategy,
/// on a Table-1 grid scaled just enough to hold the largest count (see
/// [`p2pmpi_grid5000::sites::scaled_table1`]).  This is the sweep-scale
/// entry point: 1k–4k-rank points complete in seconds because no threads are
/// spawned and no payload bytes move.
pub fn modeled_kernel_times(
    kernel: Fig4Kernel,
    strategy: StrategyKind,
    counts: &[u32],
    settings: &Fig4Settings,
    scale: Option<usize>,
) -> Vec<Fig4Point> {
    let max = counts.iter().copied().max().unwrap_or(0) as usize;
    let factor = scale.unwrap_or_else(|| scale_factor_for_cores(max));
    let topology = topology_from_specs(&scaled_table1(factor));
    let settings = settings.modeled();
    counts
        .iter()
        .map(|&n| {
            let placement = synthetic_placement(&topology, strategy, n);
            run_kernel_on_placement(kernel, strategy, &placement, &topology, &settings)
        })
        .collect()
}

/// Like [`modeled_kernel_times`], but with the placement *searched* instead
/// of fixed: each count runs a parallel-chain annealing search
/// ([`crate::search::search_placement`]) on the same scaled Table-1 grid the
/// synthetic concentrate/spread placements use, so the three curves of a
/// `fig4_* --searched` run are directly comparable point by point.  The
/// returned makespan is the searched placement's modeled cost — never worse
/// than best-of(concentrate, spread) by construction.
pub fn searched_kernel_times(
    kernel: Fig4Kernel,
    counts: &[u32],
    settings: &Fig4Settings,
    scale: Option<usize>,
    params: &crate::search::SearchParams,
) -> Vec<Fig4Point> {
    let max = counts.iter().copied().max().unwrap_or(0) as usize;
    let factor = scale.unwrap_or_else(|| scale_factor_for_cores(max));
    let topology = topology_from_specs(&scaled_table1(factor));
    let settings = settings.modeled();
    counts
        .iter()
        .map(|&n| {
            crate::search::search_placement(&topology, kernel, n, &settings, params).to_fig4_point()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_kernel_metadata() {
        assert_eq!(Fig4Kernel::Ep.program(), "NAS.EP");
        assert_eq!(Fig4Kernel::Is.program(), "NAS.IS");
        assert_eq!(Fig4Kernel::Ft.program(), "NAS.FT");
        let d = Fig4Settings::default();
        assert_eq!(d.class, Class::B);
        assert!(d.ep_sample_divisor > 1);
        let t = Fig4Settings::test_sized();
        assert_eq!(t.class, Class::S);
    }

    #[test]
    fn small_ep_point_runs_and_verifies() {
        let settings = Fig4Settings {
            ep_sample_divisor: 1,
            ..Fig4Settings::test_sized()
        };
        let point = run_kernel_once(Fig4Kernel::Ep, StrategyKind::Concentrate, 8, &settings);
        assert_eq!(point.processes, 8);
        assert!(point.verified);
        assert!(point.makespan > SimDuration::ZERO);
        // 8 processes concentrate onto two quad-core Nancy nodes.
        assert_eq!(point.hosts_used, 2);
    }

    #[test]
    fn small_is_point_runs_and_verifies() {
        let settings = Fig4Settings::test_sized();
        let point = run_kernel_once(Fig4Kernel::Is, StrategyKind::Spread, 8, &settings);
        assert!(point.verified);
        assert_eq!(point.hosts_used, 8);
        assert!(point.makespan > SimDuration::ZERO);
    }

    #[test]
    fn synthetic_placements_mirror_the_strategies() {
        let topology = topology_from_specs(&scaled_table1(1));
        // 64 concentrated processes fill 16 quad-core Nancy nodes.
        let conc = synthetic_placement(&topology, StrategyKind::Concentrate, 64);
        assert_eq!(conc.hosts_used(), 16);
        assert!(conc.validate().is_ok());
        // 64 spread processes take one host each.
        let spread = synthetic_placement(&topology, StrategyKind::Spread, 64);
        assert_eq!(spread.hosts_used(), 64);
        // Spread wraps once every host is used.
        let wrapped = synthetic_placement(&topology, StrategyKind::Spread, 400);
        assert_eq!(wrapped.hosts_used(), 350);
    }

    #[test]
    #[should_panic(expected = "exceed the grid")]
    fn synthetic_placement_rejects_oversubscription() {
        let topology = topology_from_specs(&scaled_table1(1));
        synthetic_placement(&topology, StrategyKind::Spread, 1041);
    }

    #[test]
    fn modeled_ep_point_matches_executed_exactly() {
        // EP's communication is data-independent, so the analytical backend
        // must reproduce the executed virtual makespan bit-for-bit on the
        // same placement.
        let settings = Fig4Settings::test_sized();
        let executed = run_kernel_once(Fig4Kernel::Ep, StrategyKind::Concentrate, 8, &settings);
        let modeled = run_kernel_once(
            Fig4Kernel::Ep,
            StrategyKind::Concentrate,
            8,
            &settings.modeled(),
        );
        assert_eq!(modeled.makespan, executed.makespan);
        assert_eq!(modeled.hosts_used, executed.hosts_used);
        assert!(modeled.verified);
    }

    #[test]
    fn modeled_sweep_scales_past_grid_capacity() {
        // 2048 ranks exceed the paper grid's 1040 cores; the modeled sweep
        // auto-scales the Table-1 grid and still produces a point (this runs
        // in well under a second — the executed backend could not even spawn
        // the threads comfortably).
        let settings = Fig4Settings::test_sized();
        let points = modeled_kernel_times(
            Fig4Kernel::Ep,
            StrategyKind::Spread,
            &[2048],
            &settings,
            None,
        );
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].processes, 2048);
        assert!(points[0].makespan > SimDuration::ZERO);
        // scale factor 2 doubles the grid to 700 hosts; spread wraps them.
        assert_eq!(points[0].hosts_used, 700);
    }

    #[test]
    fn fig2_sweep_first_point_is_nancy_only_under_concentrate() {
        let rows = fig2_fig3_sweep(StrategyKind::Concentrate, 1, 0.0);
        assert_eq!(rows.len(), 11);
        let first = &rows[0];
        assert_eq!(first.demanded, 100);
        assert!(first.success);
        let nancy = first.usage.iter().find(|u| u.site_name == "nancy").unwrap();
        assert_eq!(nancy.processes, 100);
    }
}
