//! Model-driven placement search: simulated annealing over host
//! assignments, with the LogGP model as the objective.
//!
//! The paper compares exactly two fixed allocation strategies — concentrate
//! and spread — because on the physical testbed each Figure 4 point was an
//! expensive real run.  The analytical backend (`p2pmpi_mpi::model`) makes a
//! point cost milliseconds, and its incremental evaluator
//! ([`PlacementCost`]) makes a candidate *move* cost microseconds, which
//! turns the model from a validator into an optimizer: anneal over host
//! assignments and return a placement at least as good as either fixed
//! strategy (and usually better wherever the grid is heterogeneous).
//!
//! # Moves and feasibility
//!
//! Two move kinds, proposed 50/50:
//!
//! * **swap** — exchange the hosts of two ranks (capacity-neutral);
//! * **migrate** — move one rank to an idle core slot, sampled uniformly
//!   over the grid's free slots via
//!   [`p2pmpi_grid5000::capacity::IdleSlotIndex`].  The evaluator enforces
//!   host capacity independently, so a race between the index and the
//!   bookkeeping cannot oversubscribe a host.
//!
//! # The chain driver
//!
//! [`search_placement`] runs `chains` independent annealing chains on
//! scoped `std::thread`s.  Chains share the compiled schedule (an `Arc`)
//! but own their evaluator, idle-slot index and RNG stream (derived with
//! SplitMix64 from the master seed, so results are reproducible and
//! independent of thread interleaving); the reduction keeps the best-ever
//! placement across chains *and* both fixed baselines, ties broken by
//! chain index — so the search result is never worse than
//! best-of(concentrate, spread) by construction, and `perf_report` gates
//! on it staying that way (and on beating the baselines by >3% on the
//! heterogeneity-skewed grid).
//!
//! Chains start from a *portfolio* of seeds, cycling speed-greedy
//! concentrate (fill the fastest cores first), the paper's concentrate and
//! spread, and speed-greedy spread.  The portfolio matters: on a
//! heterogeneous grid the makespan landscape has a wide barrier — moving
//! the *first* rank toward a fast remote site makes the job *worse*
//! (cross-site collective latency) until most ranks follow, and EP-style
//! kernels end in a synchronizing bcast that flattens any per-rank
//! gradient.  Annealing is a poor barrier-crosser but an excellent
//! *refiner*, so the greedy seeds carry it over the barrier and the moves
//! then do what no fixed strategy can: trade contention against locality
//! rank by rank (e.g. de-crowding four-resident nodes onto idle same-site
//! hosts).
//!
//! The temperature falls geometrically from 5% of the initial cost to 10⁻⁴
//! of that over the move budget; zero-cost moves are always accepted, which
//! lets rank assignments drift across the plateau a makespan objective
//! (a max over ranks) is full of.

use crate::experiments::{synthetic_placement, Fig4Kernel, Fig4Point, Fig4Settings};
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_grid5000::capacity::{host_capacities, IdleSlotIndex};
use p2pmpi_mpi::model::{CompiledSchedule, Move, PlacementCost};
use p2pmpi_mpi::placement::Placement;
use p2pmpi_nas::ep::{ep_schedule, EpConfig};
use p2pmpi_nas::ft::{ft_schedule, FtConfig};
use p2pmpi_nas::is::{is_schedule, IsConfig};
use p2pmpi_simgrid::compute::ComputeModel;
use p2pmpi_simgrid::memory::MemoryContentionModel;
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::rngutil::{derive_seed, seeded};
use p2pmpi_simgrid::time::SimDuration;
use p2pmpi_simgrid::topology::{HostId, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Knobs of one placement search.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Annealing moves per chain.
    pub moves: u64,
    /// Independent chains (scoped threads).
    pub chains: u32,
    /// Master seed; each chain derives its own stream.
    pub seed: u64,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            moves: 4_000,
            chains: 4,
            seed: 2008,
        }
    }
}

impl SearchParams {
    /// Per-kernel default move budget.  EP's delta moves are near-free
    /// (frontier absorption kills most of the schedule), so it can afford
    /// the full 4 000-move budget; IS and FT rings re-run an O(n²)
    /// wavefront per ring segment per move, so their defaults trade moves
    /// for wall-clock — the skewed-grid improvement saturates well before
    /// 1 500 moves on the communication-bound kernels, whose landscape is
    /// dominated by the site-count term rather than per-host speed.
    pub fn default_for(kernel: Fig4Kernel) -> Self {
        let moves = match kernel {
            Fig4Kernel::Ep => 4_000,
            Fig4Kernel::Is | Fig4Kernel::Ft => 1_500,
        };
        SearchParams {
            moves,
            ..SearchParams::default()
        }
    }
}

/// The starting placement of one chain of the portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedKind {
    /// The paper's concentrate placement (RTT order).
    Concentrate,
    /// The paper's spread placement (RTT order).
    Spread,
    /// Concentrate onto the fastest cores first (speed order, RTT
    /// tie-break).
    FastConcentrate,
    /// One rank per host, fastest hosts first.
    FastSpread,
}

impl SeedKind {
    /// Portfolio rotation for chain `i`.
    fn for_chain(i: u32) -> SeedKind {
        match i % 4 {
            0 => SeedKind::FastConcentrate,
            1 => SeedKind::Concentrate,
            2 => SeedKind::Spread,
            _ => SeedKind::FastSpread,
        }
    }

    /// The closest paper strategy (labels Figure 4 points).
    pub fn strategy_label(self) -> StrategyKind {
        match self {
            SeedKind::Concentrate | SeedKind::FastConcentrate => StrategyKind::Concentrate,
            SeedKind::Spread | SeedKind::FastSpread => StrategyKind::Spread,
        }
    }
}

/// What one annealing chain did.
#[derive(Debug, Clone)]
pub struct ChainOutcome {
    /// The seed placement the chain started from.
    pub seed: SeedKind,
    /// Modeled makespan of the starting placement.
    pub initial: SimDuration,
    /// Best makespan the chain ever held.
    pub best: SimDuration,
    /// Moves evaluated (capacity-rejected proposals excluded).
    pub evaluated: u64,
    /// Moves accepted.
    pub accepted: u64,
    /// Best-ever host assignment.
    best_hosts: Vec<HostId>,
}

/// The search result: both fixed baselines and the best placement found.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Rank count searched.
    pub ranks: u32,
    /// Modeled makespan of the synthetic concentrate placement.
    pub concentrate: SimDuration,
    /// Modeled makespan of the synthetic spread placement.
    pub spread: SimDuration,
    /// Best modeled makespan across all chains (≤ the baselines by
    /// construction).
    pub best: SimDuration,
    /// Host of every rank in the best placement.
    pub best_hosts: Vec<HostId>,
    /// The seed of the winning chain (or the winning baseline).
    pub best_seed: SeedKind,
    /// Per-chain outcomes.
    pub chains: Vec<ChainOutcome>,
}

impl SearchReport {
    /// The better of the two fixed strategies.
    pub fn baseline(&self) -> SimDuration {
        self.concentrate.min(self.spread)
    }

    /// Relative improvement over [`SearchReport::baseline`] (0.03 = 3%).
    pub fn improvement(&self) -> f64 {
        let base = self.baseline().as_secs_f64();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.best.as_secs_f64() / base
    }

    /// Distinct hosts of the best placement.
    pub fn hosts_used(&self) -> usize {
        let mut hosts = self.best_hosts.clone();
        hosts.sort_unstable();
        hosts.dedup();
        hosts.len()
    }

    /// Total moves evaluated across chains.
    pub fn evaluated(&self) -> u64 {
        self.chains.iter().map(|c| c.evaluated).sum()
    }

    /// The best placement as a [`Placement`].
    pub fn best_placement(&self) -> Placement {
        hosts_to_placement(&self.best_hosts)
    }

    /// The search result as a Figure 4 point (the makespan is the modeled
    /// cost the search optimised, so no re-run is needed; `strategy` labels
    /// the winning chain's seed).
    pub fn to_fig4_point(&self) -> Fig4Point {
        Fig4Point {
            processes: self.ranks,
            strategy: self.best_seed.strategy_label(),
            hosts_used: self.hosts_used(),
            makespan: self.best,
            verified: true,
        }
    }
}

/// Compiles the kernel's collective program for `n` ranks (the `p2pmpi-nas`
/// schedule hooks), honouring the settings' class and sample divisors.
pub fn kernel_schedule(kernel: Fig4Kernel, settings: &Fig4Settings, n: u32) -> CompiledSchedule {
    match kernel {
        Fig4Kernel::Ep => ep_schedule(
            &EpConfig::sampled(settings.class, settings.ep_sample_divisor),
            n,
        ),
        Fig4Kernel::Is => is_schedule(
            &IsConfig::sampled(settings.class, settings.is_sample_divisor),
            n,
        ),
        Fig4Kernel::Ft => ft_schedule(&FtConfig::new(settings.class), n),
    }
}

/// The cost models a search shares with `run_kernel_on_placement`, so the
/// searched objective and the reported Figure 4 points agree exactly.
fn models_for(topology: &Arc<Topology>, settings: &Fig4Settings) -> (NetworkModel, ComputeModel) {
    let network = NetworkModel::new(topology.clone());
    let compute = match settings.contention_alpha {
        Some(alpha) => ComputeModel::with_contention(
            topology.clone(),
            MemoryContentionModel::with_alpha(alpha),
        ),
        None => ComputeModel::new(topology.clone()),
    };
    (network, compute)
}

/// Host of each rank of a placement, indexed by rank (`perf_report` uses
/// this too when it rebuilds an evaluator from a synthetic placement).
pub fn placement_rank_hosts(placement: &Placement) -> Vec<HostId> {
    let mut hosts = vec![HostId(0); placement.processes as usize];
    for p in &placement.procs {
        hosts[p.rank as usize] = p.host;
    }
    hosts
}

fn hosts_to_placement(hosts: &[HostId]) -> Placement {
    Placement {
        processes: hosts.len() as u32,
        replication: 1,
        procs: hosts
            .iter()
            .enumerate()
            .map(|(rank, &host)| p2pmpi_mpi::placement::ProcSpec {
                rank: rank as u32,
                replica: 0,
                host,
            })
            .collect(),
    }
}

/// Proposes one move: 50/50 swap vs migrate-to-a-uniform-idle-slot.
fn propose(rng: &mut StdRng, n: u32, idle: &IdleSlotIndex) -> Move {
    if idle.free_slots() > 0 && rng.gen_range(0u32..2) == 1 {
        let rank = rng.gen_range(0..n);
        let slot = rng.gen_range(0..idle.free_slots());
        Move::Migrate {
            rank,
            to: idle.nth_free_slot(slot),
        }
    } else {
        Move::Swap {
            a: rng.gen_range(0..n),
            b: rng.gen_range(0..n),
        }
    }
}

/// Host booking order by descending core speed (ascending RTT from Nancy's
/// first host as the tie-break, then host id) — the compute-greedy
/// counterpart of `experiments::hosts_by_rtt`.
fn hosts_by_speed(topology: &Topology) -> Vec<HostId> {
    let rtt_order = crate::experiments::hosts_by_rtt(topology);
    let mut rtt_rank = vec![0usize; topology.host_count()];
    for (i, &h) in rtt_order.iter().enumerate() {
        rtt_rank[h.0] = i;
    }
    let mut hosts: Vec<HostId> = topology.hosts().iter().map(|h| h.id).collect();
    hosts.sort_by(|&a, &b| {
        let speed = topology
            .host(b)
            .ops_per_sec
            .partial_cmp(&topology.host(a).ops_per_sec)
            .expect("finite rates");
        speed
            .then(rtt_rank[a.0].cmp(&rtt_rank[b.0]))
            .then(a.cmp(&b))
    });
    hosts
}

/// Builds one seed placement of the portfolio.
fn seed_hosts(topology: &Topology, seed: SeedKind, n: u32) -> Vec<HostId> {
    match seed {
        SeedKind::Concentrate => {
            placement_rank_hosts(&synthetic_placement(topology, StrategyKind::Concentrate, n))
        }
        SeedKind::Spread => {
            placement_rank_hosts(&synthetic_placement(topology, StrategyKind::Spread, n))
        }
        SeedKind::FastConcentrate => {
            let order = hosts_by_speed(topology);
            let mut slots = Vec::with_capacity(n as usize);
            'outer: for &h in &order {
                for _ in 0..topology.host(h).cores {
                    slots.push(h);
                    if slots.len() == n as usize {
                        break 'outer;
                    }
                }
            }
            slots
        }
        SeedKind::FastSpread => {
            let order = hosts_by_speed(topology);
            let mut filled = vec![0usize; order.len()];
            let mut slots = Vec::with_capacity(n as usize);
            'rounds: loop {
                for (i, &h) in order.iter().enumerate() {
                    if filled[i] < topology.host(h).cores {
                        filled[i] += 1;
                        slots.push(h);
                        if slots.len() == n as usize {
                            break 'rounds;
                        }
                    }
                }
            }
            slots
        }
    }
}

/// What one annealing walk did (the chain- and context-independent core of
/// a [`ChainOutcome`]).
struct AnnealOutcome {
    initial: SimDuration,
    best: SimDuration,
    best_hosts: Vec<HostId>,
    evaluated: u64,
    accepted: u64,
}

/// The annealing walk proper, over an evaluator and idle-slot index the
/// caller prepared (freshly built by [`run_chain`], or rebased warm by a
/// [`SearchContext`]).  Leaves `cost` at the last *accepted* assignment —
/// exactly the state a warm context wants cached, since the next arrival's
/// rebase diffs against it.  Deterministic per `chain_seed` for a given
/// starting state, which is what makes warm == cold bit-exactness follow
/// from [`PlacementCost::rebase`]'s exactness.
fn anneal(
    cost: &mut PlacementCost,
    idle: &mut IdleSlotIndex,
    moves: u64,
    chain_seed: u64,
) -> AnnealOutcome {
    let mut rng = seeded(chain_seed);
    let n = cost.hosts().len() as u32;

    // Acceptance energy: the makespan plus a small multiple of the mean
    // per-rank clock.  A pure-makespan objective is a max() full of
    // plateaus — moving one rank off the slowest host leaves the maximum
    // unchanged, so nothing ratchets; the mean term restores a gradient
    // across those plateaus while staying too small to trade real makespan
    // away.  Best-placement tracking below is on the pure makespan.
    const MEAN_WEIGHT: f64 = 0.1;
    let energy = |makespan: SimDuration, mean: f64| makespan.as_secs_f64() + MEAN_WEIGHT * mean;

    let initial = cost.cost();
    let mut current_energy = energy(initial, cost.mean_clock_secs());
    let mut best = initial;
    let mut best_hosts = cost.hosts().to_vec();
    let t0 = (initial.as_secs_f64() * 0.05).max(1e-12);
    let t_end = t0 * 1e-4;
    let cooling = (t_end / t0).powf(1.0 / moves.max(1) as f64);
    let mut temp = t0;
    let mut evaluated = 0u64;
    let mut accepted = 0u64;

    for _ in 0..moves {
        let mv = propose(&mut rng, n, idle);
        // The idle index mirrors *committed* state: capture the migrate's
        // source before the evaluator mutates the assignment.
        let migrate_from = match mv {
            Move::Migrate { rank, .. } => Some(cost.hosts()[rank as usize]),
            Move::Swap { .. } => None,
        };
        temp *= cooling;
        let candidate = match cost.apply(mv) {
            Ok(c) => c,
            Err(_) => continue, // full host: nothing was mutated
        };
        evaluated += 1;
        let candidate_energy = energy(candidate, cost.mean_clock_secs());
        let delta = candidate_energy - current_energy;
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
        if !accept {
            cost.undo();
            continue;
        }
        cost.commit();
        accepted += 1;
        if let (Move::Migrate { to, .. }, Some(from)) = (mv, migrate_from) {
            if to != from {
                idle.release(from);
                let taken = idle.occupy(to);
                debug_assert!(taken, "evaluator accepted a move onto a full host");
            }
        }
        current_energy = candidate_energy;
        if candidate < best {
            best = candidate;
            best_hosts.clear();
            best_hosts.extend_from_slice(cost.hosts());
        }
    }

    AnnealOutcome {
        initial,
        best,
        best_hosts,
        evaluated,
        accepted,
    }
}

/// One annealing chain.
fn run_chain(
    schedule: Arc<CompiledSchedule>,
    topology: &Arc<Topology>,
    settings: &Fig4Settings,
    seed: SeedKind,
    initial_hosts: &[HostId],
    moves: u64,
    chain_seed: u64,
) -> ChainOutcome {
    let (network, compute) = models_for(topology, settings);
    let mut cost = PlacementCost::new(
        schedule,
        initial_hosts.to_vec(),
        host_capacities(topology),
        network,
        compute,
    );
    let mut idle = IdleSlotIndex::for_placement(topology, initial_hosts);
    let a = anneal(&mut cost, &mut idle, moves, chain_seed);
    ChainOutcome {
        seed,
        initial: a.initial,
        best: a.best,
        evaluated: a.evaluated,
        accepted: a.accepted,
        best_hosts: a.best_hosts,
    }
}

/// Runs the parallel-chain annealing search for `n` ranks of `kernel` on
/// `topology` and returns the baselines plus the best placement found.
///
/// # Panics
///
/// Panics if `n` exceeds the topology's total cores (searches run on
/// synthetic placements, like the modeled sweeps) or `params.chains == 0`.
pub fn search_placement(
    topology: &Arc<Topology>,
    kernel: Fig4Kernel,
    n: u32,
    settings: &Fig4Settings,
    params: &SearchParams,
) -> SearchReport {
    assert!(params.chains >= 1, "need at least one chain");
    let schedule = Arc::new(kernel_schedule(kernel, settings, n));
    let concentrate_hosts = seed_hosts(topology, SeedKind::Concentrate, n);
    let spread_hosts = seed_hosts(topology, SeedKind::Spread, n);

    let chain_seeds: Vec<(SeedKind, Vec<HostId>)> = (0..params.chains)
        .map(|i| {
            let kind = SeedKind::for_chain(i);
            (kind, seed_hosts(topology, kind, n))
        })
        .collect();

    let outcomes: Vec<ChainOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = chain_seeds
            .iter()
            .enumerate()
            .map(|(i, (kind, hosts))| {
                let schedule = schedule.clone();
                let chain_seed = derive_seed(params.seed, 0x5EA7C4 ^ i as u64);
                scope.spawn(move || {
                    run_chain(
                        schedule,
                        topology,
                        settings,
                        *kind,
                        hosts,
                        params.moves,
                        chain_seed,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("annealing chain panicked"))
            .collect()
    });

    // The fixed baselines are part of the reduction whether or not a chain
    // started from them, so the result can never lose to either.
    let baseline_cost = |hosts: &[HostId]| -> SimDuration {
        let (network, compute) = models_for(topology, settings);
        let mut m = p2pmpi_mpi::model::ModelComm::new(&hosts_to_placement(hosts), network, compute);
        schedule.drive(&mut m);
        m.makespan()
    };
    let concentrate = outcomes
        .iter()
        .find(|c| c.seed == SeedKind::Concentrate)
        .map(|c| c.initial)
        .unwrap_or_else(|| baseline_cost(&concentrate_hosts));
    let spread = outcomes
        .iter()
        .find(|c| c.seed == SeedKind::Spread)
        .map(|c| c.initial)
        .unwrap_or_else(|| baseline_cost(&spread_hosts));

    let mut candidates: Vec<(SimDuration, &[HostId], SeedKind)> = vec![
        (concentrate, &concentrate_hosts[..], SeedKind::Concentrate),
        (spread, &spread_hosts[..], SeedKind::Spread),
    ];
    candidates.extend(outcomes.iter().map(|c| (c.best, &c.best_hosts[..], c.seed)));
    let (best, best_hosts, best_seed) = candidates
        .iter()
        .enumerate()
        // Cost ties resolve toward the *earliest* candidate — i.e. a
        // baseline beats an equal-cost chain, keeping ties deterministic
        // and baseline-labelled (exactly what "no worse than best-of"
        // reports: an equal result is the baseline, not a lucky walk).
        .min_by_key(|(i, (cost, _, _))| (*cost, *i))
        .map(|(_, &(cost, hosts, kind))| (cost, hosts.to_vec(), kind))
        .expect("candidates is never empty");

    SearchReport {
        ranks: n,
        concentrate,
        spread,
        best,
        best_hosts,
        best_seed,
        chains: outcomes,
    }
}

// --- online per-arrival search (the day sweep's `searched` strategy) -----

/// Knobs of the *online* per-arrival search.
#[derive(Debug, Clone, Copy)]
pub struct OnlineSearchParams {
    /// Annealing moves per arrival.  One chain only: the speed-greedy
    /// capped seed is the portfolio leader on every grid the sweep runs,
    /// and per-arrival wall budget is the scarce resource.
    pub moves: u64,
    /// Master seed; every arrival derives its own RNG stream.
    pub seed: u64,
}

impl Default for OnlineSearchParams {
    fn default() -> Self {
        OnlineSearchParams {
            moves: 300,
            seed: 2008,
        }
    }
}

/// Counters of a day's online searching.  The nano counters are wall-clock
/// (diagnostics only — never compared by determinism pins).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineSearchStats {
    /// Searched-strategy arrivals seen.
    pub arrivals: u64,
    /// Arrivals that produced a plan.
    pub searched: u64,
    /// Arrivals the free cores could not hold (fell back to the fixed
    /// distribution over whatever brokering grants).
    pub infeasible: u64,
    /// Warm cache hits: the kernel shape was pooled and `rebase` resynced
    /// it.
    pub warm_rebases: u64,
    /// Cold builds: first sighting of a kernel shape (schedule compile +
    /// full evaluator construction).
    pub cold_builds: u64,
    /// Annealing moves evaluated across all arrivals.
    pub moves_evaluated: u64,
    /// Wall nanoseconds spent in `prepare` (rebase or build).
    pub prepare_nanos: u64,
    /// Wall nanoseconds spent annealing.
    pub anneal_nanos: u64,
}

/// One pooled warm evaluator, keyed by kernel shape.
struct ShapeEntry {
    kernel: Fig4Kernel,
    ranks: u32,
    cost: PlacementCost,
    idle: IdleSlotIndex,
}

/// The persistent cross-job search state the day sweep threads through
/// `SweepCore::submit`: a pool of warm [`PlacementCost`] evaluators keyed
/// by kernel shape — (kernel, rank count), the same pooling idea as the
/// evaluator's ring tables — each rebased per arrival instead of rebuilt
/// (see the warm-reuse contract in `p2pmpi_mpi::model`).  The day mix
/// repeats a handful of shapes (ranks 8–128), so after the first sighting
/// of each shape every arrival runs warm — and seeds from the shape's
/// previous annealed plan repaired for the new occupancy
/// ([`Self::seed_for`]), so the rebase diff is the handful of displaced
/// ranks rather than a wholesale reshuffle.
pub struct SearchContext {
    topology: Arc<Topology>,
    settings: Fig4Settings,
    params: OnlineSearchParams,
    pool: Vec<ShapeEntry>,
    /// Host order by descending core speed (static topology data, computed
    /// once, drives the capped seed placement).
    speed_order: Vec<HostId>,
    /// Test/benchmark knob: drop the pool before every `prepare`, forcing
    /// the cold path — the control arm of the warm == cold exactness pins
    /// and the ≥5× prepare-speedup gate.
    pub cold: bool,
    /// The last plan annealed per shape: the next arrival of that shape
    /// seeds from it, repaired for the new occupancy (see
    /// [`Self::seed_for`]).  Deliberately *not* dropped by [`Self::cold`]
    /// — it is part of the deterministic search trajectory, not a warm
    /// cache, so a cold context follows the same seed sequence and the
    /// warm == cold exactness pins keep holding.
    last_plan: Vec<(Fig4Kernel, u32, Vec<HostId>)>,
    stats: OnlineSearchStats,
}

impl SearchContext {
    /// A context with an empty pool (every shape's first arrival is cold).
    pub fn new(
        topology: Arc<Topology>,
        settings: Fig4Settings,
        params: OnlineSearchParams,
    ) -> SearchContext {
        let speed_order = hosts_by_speed(&topology);
        SearchContext {
            topology,
            settings,
            params,
            pool: Vec::new(),
            speed_order,
            cold: false,
            last_plan: Vec::new(),
            stats: OnlineSearchStats::default(),
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> OnlineSearchStats {
        self.stats
    }

    /// The search's seed placement under per-host free capacities:
    /// concentrate onto the fastest free cores.  `None` when the free
    /// cores cannot hold `n` ranks.
    pub fn seed_hosts_capped(&self, caps: &[u32], n: u32) -> Option<Vec<HostId>> {
        let mut slots = Vec::with_capacity(n as usize);
        for &h in &self.speed_order {
            for _ in 0..caps[h.0] {
                slots.push(h);
                if slots.len() == n as usize {
                    return Some(slots);
                }
            }
        }
        None
    }

    /// The seed placement of one arrival: the shape's previous annealed
    /// plan, repaired for the new occupancy — every rank whose host still
    /// has a free slot stays put (first keeper wins a contended slot), the
    /// displaced ones take the fastest remaining free cores.  Falls back
    /// to [`Self::seed_hosts_capped`] on a shape's first sighting.  The
    /// repair is what keeps the warm [`PlacementCost::rebase`] diff small:
    /// between two arrivals of a shape only the cores that changed hands
    /// displace ranks, so the warm prepare stays on the delta path instead
    /// of degenerating into a full recompute.  `None` when the free cores
    /// cannot hold `n` ranks (the same condition as the capped seed).
    fn seed_for(&self, kernel: Fig4Kernel, n: u32, caps: &[u32]) -> Option<Vec<HostId>> {
        let Some((_, _, prev)) = self
            .last_plan
            .iter()
            .find(|(k, r, _)| *k == kernel && *r == n)
        else {
            return self.seed_hosts_capped(caps, n);
        };
        let mut free = caps.to_vec();
        let kept: Vec<Option<HostId>> = prev
            .iter()
            .map(|&h| {
                if free[h.0] > 0 {
                    free[h.0] -= 1;
                    Some(h)
                } else {
                    None
                }
            })
            .collect();
        let displaced = kept.iter().filter(|k| k.is_none()).count();
        let mut spill = Vec::with_capacity(displaced);
        if displaced > 0 {
            'fill: for &h in &self.speed_order {
                for _ in 0..free[h.0] {
                    spill.push(h);
                    if spill.len() == displaced {
                        break 'fill;
                    }
                }
            }
            if spill.len() < displaced {
                return None;
            }
        }
        let mut spill = spill.into_iter();
        Some(
            kept.into_iter()
                .map(|k| k.unwrap_or_else(|| spill.next().expect("one spill slot per displaced")))
                .collect(),
        )
    }

    /// Phase 1 of one arrival: sync a pool entry for the kernel shape with
    /// the grid's current free capacities — a warm [`PlacementCost::rebase`]
    /// when the shape was pooled before, a cold schedule compile + evaluator
    /// build otherwise.  Returns the pool index, or `None` when the free
    /// cores cannot hold the job.  This phase is what the warm-vs-cold ≥5×
    /// gate times: the annealing walk after it is common to both paths.
    pub fn prepare(&mut self, kernel: Fig4Kernel, n: u32, caps: &[u32]) -> Option<usize> {
        let seed = self.seed_for(kernel, n, caps)?;
        if self.cold {
            self.pool.clear();
        }
        if let Some(i) = self
            .pool
            .iter()
            .position(|e| e.kernel == kernel && e.ranks == n)
        {
            let entry = &mut self.pool[i];
            entry.cost.rebase(&seed, caps);
            for (h, &cap) in caps.iter().enumerate() {
                let host = HostId(h);
                entry
                    .idle
                    .set_free(host, cap - entry.cost.residents_on(host));
            }
            self.stats.warm_rebases += 1;
            Some(i)
        } else {
            let schedule = Arc::new(kernel_schedule(kernel, &self.settings, n));
            let (network, compute) = models_for(&self.topology, &self.settings);
            let cost = PlacementCost::new(schedule, seed, caps.to_vec(), network, compute);
            let free: Vec<u32> = caps
                .iter()
                .enumerate()
                .map(|(h, &cap)| cap - cost.residents_on(HostId(h)))
                .collect();
            let idle = IdleSlotIndex::from_capacities(&free);
            self.pool.push(ShapeEntry {
                kernel,
                ranks: n,
                cost,
                idle,
            });
            self.stats.cold_builds += 1;
            Some(self.pool.len() - 1)
        }
    }

    /// Phase 2: the annealing walk over a prepared entry.  `arrival`
    /// indexes the job so every arrival gets its own derived RNG stream —
    /// identical between a warm and a cold context, which (with `rebase`'s
    /// exactness) is why the two paths produce bit-identical plans.
    pub fn anneal_prepared(&mut self, idx: usize, arrival: u64) -> Vec<HostId> {
        let chain_seed = derive_seed(self.params.seed, 0x0A11 ^ arrival);
        let entry = &mut self.pool[idx];
        let a = anneal(
            &mut entry.cost,
            &mut entry.idle,
            self.params.moves,
            chain_seed,
        );
        // Park the pooled evaluator on the best placement: the walk ends
        // at its last *accepted* state, typically dozens of ranks from
        // the best, and the next arrival of this shape seeds from the
        // best — without the re-park that drift alone would push every
        // warm rebase onto the wholesale path.  The idle index is left
        // stale: `prepare` fully resyncs it from the arrival's capacities
        // before the next walk, and it is the only path into a walk.
        entry.cost.rehome(&a.best_hosts);
        self.stats.moves_evaluated += a.evaluated;
        let (kernel, ranks) = (entry.kernel, entry.ranks);
        match self
            .last_plan
            .iter_mut()
            .find(|(k, r, _)| *k == kernel && *r == ranks)
        {
            Some(slot) => slot.2.clone_from(&a.best_hosts),
            None => self.last_plan.push((kernel, ranks, a.best_hosts.clone())),
        }
        a.best_hosts
    }

    /// One arrival's full search: prepare, anneal, count.  Returns the
    /// per-rank host assignment of the best placement found, or `None`
    /// when the grid cannot hold the job.
    pub fn searched_hosts(
        &mut self,
        kernel: Fig4Kernel,
        n: u32,
        caps: &[u32],
        arrival: u64,
    ) -> Option<Vec<HostId>> {
        self.stats.arrivals += 1;
        let start = std::time::Instant::now();
        let Some(idx) = self.prepare(kernel, n, caps) else {
            self.stats.infeasible += 1;
            return None;
        };
        let prepared = std::time::Instant::now();
        let hosts = self.anneal_prepared(idx, arrival);
        self.stats.prepare_nanos += (prepared - start).as_nanos() as u64;
        self.stats.anneal_nanos += prepared.elapsed().as_nanos() as u64;
        self.stats.searched += 1;
        Some(hosts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_grid5000::sites::{scaled_table1, skewed_table1};
    use p2pmpi_grid5000::testbed::topology_from_specs;

    fn quick_params(seed: u64) -> SearchParams {
        SearchParams {
            moves: 600,
            chains: 2,
            seed,
        }
    }

    #[test]
    fn search_never_loses_to_the_fixed_strategies() {
        let topology = topology_from_specs(&scaled_table1(1));
        let settings = Fig4Settings::test_sized();
        for kernel in [Fig4Kernel::Ep, Fig4Kernel::Is, Fig4Kernel::Ft] {
            let report = search_placement(&topology, kernel, 32, &settings, &quick_params(11));
            assert!(
                report.best <= report.baseline(),
                "{kernel:?}: searched {} vs baseline {}",
                report.best,
                report.baseline()
            );
            assert_eq!(report.best_hosts.len(), 32);
            // The best placement is capacity-feasible.
            let placement = report.best_placement();
            assert!(placement.validate().is_ok());
            let residents = placement.residents_per_host();
            for (&host, &count) in &residents {
                assert!(count <= topology.host(host).cores);
            }
        }
    }

    #[test]
    fn search_beats_both_baselines_on_the_skewed_grid() {
        // Concentrate books the (halved) Nancy nodes and spread deals one
        // rank to every slow host in RTT order: a compute-bound kernel must
        // find the boosted Opteron clusters instead.
        let topology = topology_from_specs(&skewed_table1(1));
        let settings = Fig4Settings::test_sized();
        let report = search_placement(
            &topology,
            Fig4Kernel::Ep,
            64,
            &settings,
            &SearchParams {
                moves: 2_500,
                chains: 2,
                seed: 5,
            },
        );
        assert!(
            report.improvement() > 0.03,
            "only {:.2}% better than best-of(concentrate, spread)",
            report.improvement() * 100.0
        );
    }

    #[test]
    fn per_kernel_move_budgets() {
        let ep = SearchParams::default_for(Fig4Kernel::Ep);
        assert_eq!(ep.moves, SearchParams::default().moves);
        assert_eq!(ep.chains, SearchParams::default().chains);
        let is = SearchParams::default_for(Fig4Kernel::Is);
        assert!(is.moves < ep.moves, "ring kernels get a smaller budget");
        assert_eq!(is.moves, SearchParams::default_for(Fig4Kernel::Ft).moves);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let topology = topology_from_specs(&scaled_table1(1));
        let settings = Fig4Settings::test_sized();
        let a = search_placement(&topology, Fig4Kernel::Ep, 24, &settings, &quick_params(7));
        let b = search_placement(&topology, Fig4Kernel::Ep, 24, &settings, &quick_params(7));
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_hosts, b.best_hosts);
        let c = search_placement(&topology, Fig4Kernel::Ep, 24, &settings, &quick_params(8));
        // A different seed walks differently (costs may tie, hosts differ
        // with overwhelming probability on a 350-host grid).
        assert!(c.best_hosts != a.best_hosts || c.best == a.best);
    }

    #[test]
    fn warm_context_matches_cold_context_bit_for_bit() {
        // One context keeps its pool warm across arrivals (rebase path),
        // the other rebuilds from scratch every time; under an identical
        // capacity-churn sequence and identical per-arrival RNG streams
        // the plans must be bit-identical.
        let topology = topology_from_specs(&scaled_table1(1));
        let settings = Fig4Settings::test_sized();
        let params = OnlineSearchParams {
            moves: 120,
            seed: 9,
        };
        let mut warm = SearchContext::new(topology.clone(), settings, params);
        let mut cold = SearchContext::new(topology.clone(), settings, params);
        cold.cold = true;
        let caps0 = host_capacities(&topology);
        let mut caps = caps0.clone();
        let mut rng = seeded(42);
        for arrival in 0..6u64 {
            for _ in 0..5 {
                let h = rng.gen_range(0..caps.len());
                caps[h] = if caps[h] == 0 { caps0[h] } else { 0 };
            }
            let kernel = if arrival % 2 == 0 {
                Fig4Kernel::Ep
            } else {
                Fig4Kernel::Is
            };
            let w = warm.searched_hosts(kernel, 16, &caps, arrival);
            let c = cold.searched_hosts(kernel, 16, &caps, arrival);
            assert_eq!(w, c, "arrival {arrival}");
            assert!(w.is_some(), "the scaled grid holds 16 ranks");
        }
        // Two shapes, six arrivals: the warm pool rebases every revisit.
        assert_eq!(warm.stats().cold_builds, 2);
        assert_eq!(warm.stats().warm_rebases, 4);
        assert_eq!(cold.stats().cold_builds, 6);
    }

    #[test]
    fn single_chain_still_covers_both_baselines() {
        let topology = topology_from_specs(&scaled_table1(1));
        let settings = Fig4Settings::test_sized();
        let report = search_placement(
            &topology,
            Fig4Kernel::Is,
            16,
            &settings,
            &SearchParams {
                moves: 50,
                chains: 1,
                seed: 3,
            },
        );
        assert!(report.best <= report.concentrate.min(report.spread));
        assert!(report.spread > SimDuration::ZERO);
        assert!(report.concentrate > SimDuration::ZERO);
    }
}
