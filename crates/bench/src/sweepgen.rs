//! Workload generators for job-submission sweeps.
//!
//! The paper submits jobs one at a time; pushing the reproduction to sweep
//! scale needs a synthetic arrival process.  [`PoissonArrivals`] draws
//! exponential inter-arrival gaps (a homogeneous Poisson process), and
//! [`BurstyArrivals`] alternates between two rates — a cheap stand-in for
//! the inhomogeneous-Poisson workloads of Hohmann's IPPP package cited in
//! PAPERS.md.

use p2pmpi_simgrid::rngutil::seeded;
use p2pmpi_simgrid::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;

/// Homogeneous Poisson arrival process: gaps are `Exp(rate)` distributed.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
    rng: StdRng,
}

impl PoissonArrivals {
    /// Creates a process with the given arrival rate (events per second of
    /// virtual time) and RNG seed.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        PoissonArrivals {
            rate_per_sec,
            rng: seeded(seed),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Draws the next inter-arrival gap.
    pub fn next_gap(&mut self) -> SimDuration {
        // Inverse-CDF sampling; 1 - u keeps the argument of ln() positive.
        let u: f64 = self.rng.gen();
        let secs = -(1.0 - u).ln() / self.rate_per_sec;
        SimDuration::from_secs_f64(secs)
    }

    /// Draws `n` gaps into a vector (convenience for pre-scheduling a whole
    /// sweep so the event queue can be `reserve`d once).
    pub fn gaps(&mut self, n: usize) -> Vec<SimDuration> {
        (0..n).map(|_| self.next_gap()).collect()
    }
}

/// Two-phase inhomogeneous arrivals: `burst_len` arrivals at `burst_rate`,
/// then `quiet_len` arrivals at `quiet_rate`, repeating.
#[derive(Debug, Clone)]
pub struct BurstyArrivals {
    burst: PoissonArrivals,
    quiet: PoissonArrivals,
    burst_len: usize,
    quiet_len: usize,
    position: usize,
}

impl BurstyArrivals {
    /// Creates the alternating process.  Lengths must be positive.
    pub fn new(
        burst_rate: f64,
        burst_len: usize,
        quiet_rate: f64,
        quiet_len: usize,
        seed: u64,
    ) -> Self {
        assert!(
            burst_len > 0 && quiet_len > 0,
            "phase lengths must be positive"
        );
        BurstyArrivals {
            burst: PoissonArrivals::new(burst_rate, seed ^ 0x9E37),
            quiet: PoissonArrivals::new(quiet_rate, seed ^ 0x79B9),
            burst_len,
            quiet_len,
            position: 0,
        }
    }

    /// Draws the next inter-arrival gap.
    pub fn next_gap(&mut self) -> SimDuration {
        let cycle = self.burst_len + self.quiet_len;
        let in_burst = self.position % cycle < self.burst_len;
        self.position += 1;
        if in_burst {
            self.burst.next_gap()
        } else {
            self.quiet.next_gap()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_gap_approximates_inverse_rate() {
        let mut p = PoissonArrivals::new(0.5, 42); // mean gap 2 s
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.next_gap().as_secs_f64()).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean gap {mean}");
    }

    #[test]
    fn gaps_are_deterministic_per_seed() {
        let a: Vec<_> = PoissonArrivals::new(1.0, 7).gaps(50);
        let b: Vec<_> = PoissonArrivals::new(1.0, 7).gaps(50);
        assert_eq!(a, b);
    }

    #[test]
    fn bursty_alternates_between_rates() {
        let mut g = BurstyArrivals::new(100.0, 50, 0.1, 50, 3);
        let burst_mean: f64 = (0..50).map(|_| g.next_gap().as_secs_f64()).sum::<f64>() / 50.0;
        let quiet_mean: f64 = (0..50).map(|_| g.next_gap().as_secs_f64()).sum::<f64>() / 50.0;
        assert!(
            quiet_mean > burst_mean * 10.0,
            "quiet {quiet_mean} vs burst {burst_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        PoissonArrivals::new(0.0, 1);
    }
}
