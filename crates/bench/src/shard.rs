//! The sharded parallel sweep driver: week-scale traces partitioned into
//! per-site shard timelines that run concurrently between conservative
//! synchronization barriers.
//!
//! # Why shards
//!
//! The sequential sweep ([`crate::workload::run_day_sweep`]) is one
//! discrete-event timeline over all of Table 1; a week-scale trace at 10×
//! traffic is millions of timeline events and its wall-clock is bounded by
//! one core.  But the Grid'5000 workload is *mostly site-local*: a job
//! brokered from a site's submitter books hosts ordered by RTT, and the
//! overlay's periodic machinery (heartbeats, expiry sweeps, cache
//! refreshes, churn) never crosses sites at all.  The driver exploits that:
//! [`ShardPlan`] partitions the grid into site-aligned shards, each shard
//! gets its own [`crate::workload::SweepCore`] — overlay, event timeline,
//! allocator, RNG substreams, sharing **nothing** with its siblings — and
//! the shard timelines run on scoped threads between barriers.
//!
//! # The barrier protocol
//!
//! Every job of the trace is classified up front (a deterministic pre-pass
//! on its own RNG substream) as **shard-local** — submitted to its home
//! shard's core exactly as the sequential sweep would — or **cross-shard**
//! — needing capacity from more than one shard's sites.  Cross-shard jobs
//! are the only synchronization points:
//!
//! 1. **Advance.**  Every shard runs its own timeline — local
//!    submissions, completions, heartbeats, churn — up to the cross-shard
//!    job's arrival time `T`.  This is conservative lookahead in the
//!    classic sense: between barriers no shard can schedule an event on
//!    another shard's timeline, so `T` (the next cross arrival) is a safe
//!    horizon for every shard.  After advancing, each shard asserts the
//!    contract via the engine's reported safe horizon
//!    (`Overlay::run_until_horizon`): its earliest pending event must lie
//!    strictly after `T`.
//! 2. **Broker.**  On the coordinator thread, the job is brokered against
//!    the *merged view*: per-shard free-core estimates feed
//!    `StrategyKind::distribute_into`, each shard allocates its split
//!    all-or-nothing through its own allocator, and a refusal anywhere
//!    rolls back the shards already booked (their gatekeeper slots are
//!    freed immediately, as a completion would).  On success the
//!    sub-placements are merged onto a global Table-1 topology (ranks
//!    re-offset per shard) and the job's kernel is costed **once** on the
//!    merged placement, so a cross-shard job pays the real cross-site
//!    communication cost.
//! 3. **Scatter.**  The hold charges each shard's per-site ledger, and one
//!    completion event per involved shard is spliced back onto that
//!    shard's timeline (`Overlay::schedule_completion_batch`) at
//!    `T + hold`.  The next parallel phase begins.
//!
//! Shard order is fixed everywhere (classification, brokering, scatter,
//! merge), all coordinator work happens between joined phases, and shards
//! share no state — so the parallel driver is **bit-identical** to running
//! the same per-shard operation sequence on one thread
//! ([`ShardSweepConfig::parallel`] = false), and with one shard it
//! reproduces [`crate::workload::run_day_sweep`] bit-for-bit
//! (`tests/shard_sweep.rs` pins both).
//!
//! Site-scoped faults route to the owning shard; flash crowds reshape the
//! shared trace before classification; a supernode outage applies to every
//! shard's registry.  Wall-clock speedup comes from the parallel phases:
//! with a low cross-shard fraction the phases are long and the expected
//! speedup approaches the shard count (on hardware with that many cores).

use crate::experiments::{run_kernel_on_placement, Fig4Settings};
use crate::workload::{
    burst_profile, day_trace, sample_running, DaySweepConfig, DaySweepResult, FaultSpec, JobSpec,
    SweepCore, UtilisationSample,
};
use p2pmpi_core::allocation::{AllocatedHost, Allocation};
use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::testbed::topology_from_specs;
use p2pmpi_grid5000::{ShardPlan, TABLE1};
use p2pmpi_mpi::placement::Placement;
use p2pmpi_overlay::{PeerId, RankAssignment, ReservationKey};
use p2pmpi_simgrid::event::EventKey;
use p2pmpi_simgrid::rngutil::{derive_seed, seeded};
use p2pmpi_simgrid::time::SimTime;
use p2pmpi_simgrid::topology::Topology;
use rand::Rng;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one [`run_shard_sweep`] run.
#[derive(Debug, Clone)]
pub struct ShardSweepConfig {
    /// The sweep everything else is expressed against: profile, mix,
    /// strategy, queue kind, churn, faults, reap cadence.  With
    /// `shards == 1` the driver reproduces `run_day_sweep(&base)`
    /// bit-for-bit.
    pub base: DaySweepConfig,
    /// Number of site-aligned shards (see [`ShardPlan::partition`]).
    pub shards: usize,
    /// Fraction of jobs classified cross-shard (each one a barrier).
    /// Ignored at `shards == 1`, where every job is local.
    pub cross_fraction: f64,
    /// Run shard timelines on scoped threads between barriers.  `false`
    /// runs the identical per-shard operation sequence on one thread —
    /// same result bit-for-bit, the baseline for speedup measurements.
    pub parallel: bool,
}

impl ShardSweepConfig {
    /// `shards` shards over `base`, parallel, with a 5% cross-shard
    /// fraction.
    pub fn new(base: DaySweepConfig, shards: usize) -> Self {
        ShardSweepConfig {
            base,
            shards,
            cross_fraction: 0.05,
            parallel: true,
        }
    }
}

/// What a sharded sweep produced: the merged view plus per-shard detail.
#[derive(Debug, Clone)]
pub struct ShardSweepResult {
    /// The merged result, shaped exactly like a sequential
    /// [`DaySweepResult`] over the full grid: global site order,
    /// per-sample utilisation summed across shards, cross-shard jobs
    /// folded into the submission/outcome/timeout counts.
    pub merged: DaySweepResult,
    /// Each shard's own result, in shard order (site vectors are in the
    /// shard's local site order).
    pub per_shard: Vec<DaySweepResult>,
    /// Cross-shard jobs brokered at barriers.
    pub cross_submitted: usize,
    /// Cross-shard jobs placed (all shards of the split accepted).
    pub cross_succeeded: usize,
    /// Cross-shard jobs refused (infeasible split or a shard refusal —
    /// already-booked shards were rolled back).
    pub cross_failed: usize,
    /// Synchronization barriers executed (= cross-shard jobs in the trace).
    pub barriers: usize,
    /// Wall-clock time of the whole run (trace generation through merge).
    pub wall: std::time::Duration,
}

impl ShardSweepResult {
    /// Sustained event throughput: merged timeline events delivered per
    /// wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.merged.events_processed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Sustained job throughput per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        self.merged.submitted as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// One parallel phase's work for one shard, plus its barrier advance.
struct Segment {
    /// Shard-local jobs per shard, in arrival order.
    batches: Vec<Vec<JobSpec>>,
    /// The cross-shard job ending this segment (`None` for the tail).
    cross: Option<JobSpec>,
}

/// Cross-shard bookkeeping accumulated at barriers.
#[derive(Default)]
struct CrossStats {
    submitted: usize,
    succeeded: usize,
    failed: usize,
    timeouts: u64,
    hold_secs: f64,
}

/// Runs one shard's share of a parallel phase: submit the local batch,
/// then advance to the barrier and assert the safe-horizon contract.
fn run_segment(core: &mut SweepCore, batch: &[JobSpec], barrier: Option<SimTime>) {
    for job in batch {
        core.submit(job);
    }
    if let Some(at) = barrier {
        core.advance_to(at);
        // The conservative-lookahead contract: with the shard advanced to
        // the barrier, its earliest pending event lies strictly after it,
        // so brokering at the barrier cannot be invalidated by shard-local
        // work.  See the `p2pmpi_simgrid::event` queue-selection guide.
        let (_, horizon) = core.tb.overlay.run_until_horizon(at);
        assert!(
            horizon.is_none_or(|h| h > at),
            "shard timeline violated the safe-horizon contract at barrier {at:?}"
        );
    }
}

/// Brokers one cross-shard job at a barrier (every shard already advanced
/// to `job.at`): split, all-or-nothing per-shard allocation with rollback,
/// merged costing, scatter-back.
#[allow(clippy::too_many_arguments)]
fn broker_cross(
    cores: &mut [SweepCore],
    job: &JobSpec,
    base: &DaySweepConfig,
    global_topology: &Arc<Topology>,
    settings: &Fig4Settings,
    stats: &mut CrossStats,
    scatter_keys: &mut Vec<EventKey>,
) {
    stats.submitted += 1;
    // The merged view: free cores per shard (capacity minus running work,
    // sampled from each quiesced shard at the barrier).
    let capacities: Vec<u32> = cores
        .iter()
        .map(|core| {
            let running: u32 = sample_running(&core.tb).iter().sum();
            (core.tb.topology.total_cores() as u32).saturating_sub(running)
        })
        .collect();
    let split = base.strategy.distribute(&capacities, job.ranks);
    if split.iter().sum::<u32>() != job.ranks {
        stats.failed += 1;
        return;
    }
    // All-or-nothing: each shard of the split books through its own
    // allocator; any refusal rolls back the shards already booked.
    let mut booked: Vec<(usize, ReservationKey, Allocation)> = Vec::new();
    let mut refused = false;
    for (s, &n) in split.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let core = &mut cores[s];
        let request = JobRequest::new(n, base.strategy, job.kernel.program());
        let report = core
            .allocator
            .allocate(&mut core.tb.overlay, core.tb.submitter, &request);
        stats.timeouts += report.dead as u64;
        match report.outcome {
            Ok(alloc) => booked.push((s, report.key, alloc)),
            Err(_) => {
                refused = true;
                break;
            }
        }
    }
    if refused {
        for (s, key, alloc) in &booked {
            let core = &mut cores[*s];
            for h in &alloc.hosts {
                core.tb.overlay.complete_job(h.peer, *key);
            }
        }
        stats.failed += 1;
        return;
    }
    // Merge the sub-placements onto the global topology (ranks re-offset
    // per shard) and cost the kernel once on the merged placement, so the
    // job pays its real cross-site communication.
    let mut hosts: Vec<AllocatedHost> = Vec::new();
    let mut offset = 0u32;
    for (s, _, alloc) in &booked {
        let shard_topology = &cores[*s].tb.topology;
        for h in &alloc.hosts {
            let name = &shard_topology.host(h.host).name;
            let global = global_topology
                .host_by_name(name)
                .unwrap_or_else(|| panic!("shard host '{name}' missing from the global topology"));
            hosts.push(AllocatedHost {
                peer: h.peer,
                host: global.id,
                capacity: h.capacity,
                ranks: h
                    .ranks
                    .iter()
                    .map(|ra| RankAssignment {
                        rank: ra.rank + offset,
                        replica: ra.replica,
                    })
                    .collect(),
            });
        }
        offset += alloc.processes;
    }
    let merged = Allocation {
        key: booked[0].1,
        processes: job.ranks,
        replication: 1,
        strategy: base.strategy,
        hosts,
    };
    let placement = Placement::from_allocation(&merged);
    let point = run_kernel_on_placement(
        job.kernel,
        base.strategy,
        &placement,
        global_topology,
        settings,
    );
    let hold = point.makespan.mul_f64(base.duration_scale);
    stats.hold_secs += hold.as_secs_f64();
    // Scatter-back: charge each shard's ledger and splice one completion
    // event per involved shard onto its timeline at the common barrier
    // clock plus the hold.
    for (s, key, alloc) in &booked {
        let core = &mut cores[*s];
        core.charge_remote(alloc, hold);
        let done_at = core.tb.overlay.now() + hold;
        let peers: Vec<PeerId> = alloc.hosts.iter().map(|h| h.peer).collect();
        scatter_keys.clear();
        core.tb
            .overlay
            .schedule_completion_batch([(done_at, *key, peers)], scatter_keys);
    }
    stats.succeeded += 1;
}

/// Runs the sharded sweep.  See the module docs for the barrier protocol;
/// the `week_sweep` binary renders the result.
pub fn run_shard_sweep(cfg: &ShardSweepConfig) -> ShardSweepResult {
    let start = Instant::now();
    let base = &cfg.base;
    let plan = ShardPlan::partition(TABLE1, cfg.shards);
    let shards = plan.shard_count();

    // One shared trace, classified deterministically on its own RNG
    // substream: a home shard weighted by shard capacity, and (at > 1
    // shard) an independent cross-shard coin per job.
    let profile = burst_profile(&base.profile, &base.faults);
    let trace = day_trace(&profile, &base.mix, base.seed);
    let shard_cores = plan.cores_per_shard();
    let total_cores: usize = shard_cores.iter().sum();
    let mut class_rng = seeded(derive_seed(base.seed, 0x5C1A));
    let mut segments = vec![Segment {
        batches: vec![Vec::new(); shards],
        cross: None,
    }];
    let mut local_counts = vec![0usize; shards];
    for job in &trace {
        let draw = class_rng.gen_range(0..total_cores);
        let mut cum = 0usize;
        let mut home = 0usize;
        for (i, &c) in shard_cores.iter().enumerate() {
            cum += c;
            if draw < cum {
                home = i;
                break;
            }
        }
        let cross = shards > 1 && class_rng.gen::<f64>() < cfg.cross_fraction;
        let segment = segments.last_mut().expect("one open segment");
        if cross {
            segment.cross = Some(*job);
            segments.push(Segment {
                batches: vec![Vec::new(); shards],
                cross: None,
            });
        } else {
            local_counts[home] += 1;
            segment.batches[home].push(*job);
        }
    }
    let barriers = segments.len() - 1;

    // One SweepCore per shard: shard 0 keeps the base seed (with one shard
    // it *is* the sequential sweep), the rest derive independent noise and
    // churn substreams.  Combinator trees are flattened up front so each
    // primitive routes independently; site-scoped faults go to the owning
    // shard.
    let flat_faults = crate::workload::flatten_faults(&base.faults);
    let mut cores: Vec<SweepCore> = (0..shards)
        .map(|s| {
            let mut shard_cfg = base.clone();
            shard_cfg.faults = flat_faults
                .iter()
                .filter(|f| match f {
                    FaultSpec::FlashCrowd { .. } | FaultSpec::SupernodeOutage { .. } => true,
                    FaultSpec::SiteOutage { site, .. }
                    | FaultSpec::SlowLinks { site, .. }
                    | FaultSpec::PartialSite { site, .. } => {
                        plan.shard_of_site(site)
                            .unwrap_or_else(|| panic!("fault names unknown site '{site}'"))
                            == s
                    }
                    FaultSpec::Compose(_) | FaultSpec::PhaseShift { .. } => {
                        unreachable!("flatten_faults only yields primitives")
                    }
                })
                .cloned()
                .collect();
            let seed = if s == 0 {
                base.seed
            } else {
                derive_seed(base.seed, 0x5AD0 + s as u64)
            };
            SweepCore::new(&shard_cfg, plan.specs_for(s), seed, local_counts[s] / 2)
        })
        .collect();

    // The merged view cross-shard placements are costed on.
    let global_topology = topology_from_specs(TABLE1);
    let settings = Fig4Settings {
        seed: base.seed,
        ..Fig4Settings::default()
    }
    .modeled();

    let mut stats = CrossStats::default();
    let mut scatter_keys: Vec<EventKey> = Vec::new();
    for segment in &segments {
        let barrier = segment.cross.as_ref().map(|j| j.at);
        if cfg.parallel {
            std::thread::scope(|scope| {
                for (core, batch) in cores.iter_mut().zip(&segment.batches) {
                    // An empty batch with no barrier is a no-op; don't pay
                    // a thread for it.
                    if !batch.is_empty() || barrier.is_some() {
                        scope.spawn(move || run_segment(core, batch, barrier));
                    }
                }
            });
        } else {
            for (core, batch) in cores.iter_mut().zip(&segment.batches) {
                run_segment(core, batch, barrier);
            }
        }
        if let Some(job) = &segment.cross {
            broker_cross(
                &mut cores,
                job,
                base,
                &global_topology,
                &settings,
                &mut stats,
                &mut scatter_keys,
            );
        }
    }

    // Drain every shard's tail (remaining samples, completions,
    // heartbeats) and close its books — in parallel too, it is the same
    // per-shard work.
    let horizon = SimTime::ZERO + base.profile.horizon();
    let per_shard: Vec<DaySweepResult> = if cfg.parallel {
        std::thread::scope(|scope| {
            let handles: Vec<_> = cores
                .into_iter()
                .map(|core| scope.spawn(move || core.finish(horizon)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        })
    } else {
        cores.into_iter().map(|c| c.finish(horizon)).collect()
    };

    let merged = merge_results(&per_shard, &stats, &global_topology);
    ShardSweepResult {
        merged,
        per_shard,
        cross_submitted: stats.submitted,
        cross_succeeded: stats.succeeded,
        cross_failed: stats.failed,
        barriers,
        wall: start.elapsed(),
    }
}

/// Folds per-shard results and cross-shard stats into one sequential-shaped
/// [`DaySweepResult`] in global site order.
fn merge_results(
    per_shard: &[DaySweepResult],
    stats: &CrossStats,
    global_topology: &Arc<Topology>,
) -> DaySweepResult {
    let site_names: Vec<String> = global_topology
        .sites()
        .iter()
        .map(|s| s.name.clone())
        .collect();
    let site_cores: Vec<usize> = global_topology
        .sites()
        .iter()
        .map(|s| global_topology.cores_at_site(s.id))
        .collect();
    // Shard-local site index -> global site index, by name.
    let maps: Vec<Vec<usize>> = per_shard
        .iter()
        .map(|r| {
            r.site_names
                .iter()
                .map(|n| {
                    site_names
                        .iter()
                        .position(|g| g == n)
                        .unwrap_or_else(|| panic!("shard site '{n}' missing globally"))
                })
                .collect()
        })
        .collect();

    // Shards sample on the same cadence to the same horizon, so their
    // sample trains line up instant for instant.
    let sample_count = per_shard[0].samples.len();
    let mut samples = Vec::with_capacity(sample_count);
    for k in 0..sample_count {
        let t = per_shard[0].samples[k].t;
        let mut running = vec![0u32; site_names.len()];
        for (r, map) in per_shard.iter().zip(&maps) {
            debug_assert_eq!(r.samples[k].t, t, "shard sample trains diverged");
            for (j, &v) in r.samples[k].running.iter().enumerate() {
                running[map[j]] += v;
            }
        }
        samples.push(UtilisationSample { t, running });
    }
    let mut core_seconds = vec![0.0f64; site_names.len()];
    for (r, map) in per_shard.iter().zip(&maps) {
        for (j, &v) in r.core_seconds.iter().enumerate() {
            core_seconds[map[j]] += v;
        }
    }

    // Binned core-second timelines merge like `core_seconds`, element-wise
    // on the shared bin grid (shards share the sample period; a shard that
    // charged less far into the tail just pads with zeros).
    let bin_secs = per_shard[0].bin_secs;
    let bin_count = per_shard
        .iter()
        .map(|r| r.site_core_bins.first().map_or(0, |s| s.len()))
        .max()
        .unwrap_or(0);
    let mut site_core_bins = vec![vec![0.0f64; bin_count]; site_names.len()];
    for (r, map) in per_shard.iter().zip(&maps) {
        debug_assert_eq!(r.bin_secs, bin_secs, "shard bin widths diverged");
        for (j, series) in r.site_core_bins.iter().enumerate() {
            for (b, &v) in series.iter().enumerate() {
                site_core_bins[map[j]][b] += v;
            }
        }
    }

    let succeeded = per_shard.iter().map(|r| r.succeeded).sum::<usize>() + stats.succeeded;
    let hold_total: f64 = per_shard
        .iter()
        .map(|r| r.mean_hold_secs * r.succeeded.max(1) as f64)
        .sum::<f64>()
        + stats.hold_secs;
    DaySweepResult {
        site_names,
        site_cores,
        samples,
        bin_secs,
        site_core_bins,
        core_seconds,
        submitted: per_shard.iter().map(|r| r.submitted).sum::<usize>() + stats.submitted,
        succeeded,
        failed: per_shard.iter().map(|r| r.failed).sum::<usize>() + stats.failed,
        timeouts: per_shard.iter().map(|r| r.timeouts).sum::<u64>() + stats.timeouts,
        mean_hold_secs: hold_total / succeeded.max(1) as f64,
        events_processed: per_shard.iter().map(|r| r.events_processed).sum(),
        virtual_end: per_shard
            .iter()
            .map(|r| r.virtual_end)
            .max()
            .expect("at least one shard"),
        events_capacity_mid: per_shard.iter().map(|r| r.events_capacity_mid).sum(),
        events_capacity_end: per_shard.iter().map(|r| r.events_capacity_end).sum(),
        rs_scratch_capacity_mid: per_shard.iter().map(|r| r.rs_scratch_capacity_mid).sum(),
        rs_scratch_capacity_end: per_shard.iter().map(|r| r.rs_scratch_capacity_end).sum(),
        jobs_killed: per_shard.iter().map(|r| r.jobs_killed).sum(),
        leaked_grants: per_shard.iter().map(|r| r.leaked_grants).sum(),
        leaked_grant_hwm: per_shard.iter().map(|r| r.leaked_grant_hwm).sum(),
        reaped_tickets: per_shard.iter().map(|r| r.reaped_tickets).sum(),
        dead_ticket_hwm: per_shard
            .iter()
            .map(|r| r.dead_ticket_hwm)
            .max()
            .expect("at least one shard"),
        // Per-shard search pools never merge: fold the counters when any
        // shard searched (the sharded driver defaults to fixed strategies,
        // so this is usually `None`).
        search: per_shard
            .iter()
            .filter_map(|r| r.search)
            .reduce(|mut a, b| {
                a.arrivals += b.arrivals;
                a.searched += b.searched;
                a.infeasible += b.infeasible;
                a.warm_rebases += b.warm_rebases;
                a.cold_builds += b.cold_builds;
                a.moves_evaluated += b.moves_evaluated;
                a.prepare_nanos += b.prepare_nanos;
                a.anneal_nanos += b.anneal_nanos;
                a
            }),
    }
}
