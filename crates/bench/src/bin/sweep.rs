//! Extra experiments backing the paper's narrative and the design-choice
//! ablations listed in DESIGN.md.
//!
//! ```text
//! cargo run --release -p p2pmpi-bench --bin sweep -- latency-ranking [--sigma S] [--seed N]
//! cargo run --release -p p2pmpi-bench --bin sweep -- overbooking [--churn F] [--processes N] [--seed N]
//! cargo run --release -p p2pmpi-bench --bin sweep -- contention [--processes N]
//! ```
//!
//! * `latency-ranking` — compares the application-level RTT ranking measured
//!   by the Nancy submitter against the ICMP ranking (Section 5.1's
//!   discussion of measurement accuracy and the Lyon/Rennes/Bordeaux
//!   interleaving).
//! * `overbooking` — co-allocation success rate and booking effort for the
//!   different overbooking policies when a fraction of the peers has crashed.
//! * `contention` — the EP spread/concentrate gap as a function of the
//!   memory-contention coefficient (ablation of the cost model).
//!
//! Flags are parsed once through [`p2pmpi_bench::cliargs::ablation_flags`],
//! the same structured path the Figure 4 binaries use for their sweep flags.

use p2pmpi_bench::cliargs::{ablation_flags, AblationFlags};
use p2pmpi_bench::experiments::{run_kernel_once, Fig4Kernel, Fig4Settings};
use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::scenario::probe_vs_icmp_ranking;
use p2pmpi_grid5000::testbed::grid5000_testbed;
use p2pmpi_overlay::churn::random_churn;
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::rngutil;
use p2pmpi_simgrid::time::SimDuration;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: sweep <latency-ranking|overbooking|contention> [flags]");
        std::process::exit(2);
    });
    let flags = ablation_flags();
    match mode.as_str() {
        "latency-ranking" => latency_ranking(&flags),
        "overbooking" => overbooking(&flags),
        "contention" => contention(&flags),
        other => {
            eprintln!("unknown sweep '{other}'");
            std::process::exit(2);
        }
    }
}

/// Probe-vs-ICMP ranking per site; `--sigma` replaces the built-in noise
/// ladder with a single level.
fn latency_ranking(flags: &AblationFlags) {
    let sigmas: Vec<f64> = match flags.sigma {
        Some(s) => vec![s],
        None => vec![0.0, 0.03, 0.06, 0.12],
    };
    println!("# sigma\trank\tsite\tmeasured_rtt_ms\ticmp_rtt_ms");
    for (i, &sigma) in sigmas.iter().enumerate() {
        let noise = if sigma == 0.0 {
            NoiseModel::disabled()
        } else {
            NoiseModel::with_sigma(sigma)
        };
        let tb = grid5000_testbed(flags.seed.wrapping_add(100 + i as u64), noise);
        for (rank, (site, measured, icmp)) in probe_vs_icmp_ranking(&tb).iter().enumerate() {
            println!("{sigma}\t{rank}\t{site}\t{measured:.3}\t{icmp:.3}");
        }
    }
}

/// Overbooking ablation: allocation success and booking effort under churn.
fn overbooking(flags: &AblationFlags) {
    let churn_fraction = flags.churn;
    let demand = flags.processes.unwrap_or(300);
    let policies: [(&str, OverbookingPolicy); 4] = [
        ("none", OverbookingPolicy::None),
        ("factor_1.25", OverbookingPolicy::Factor(1.25)),
        ("factor_1.5", OverbookingPolicy::Factor(1.5)),
        ("factor_2.0", OverbookingPolicy::Factor(2.0)),
    ];
    println!("# policy\tsuccess\thosts_used\tbooked\tgranted\tdead\tcancelled\telapsed_ms");
    for (name, policy) in policies {
        let mut tb = grid5000_testbed(flags.seed.wrapping_add(9), NoiseModel::default());
        // Crash a fraction of the peers before the submission arrives.
        let peers: Vec<_> = tb
            .overlay
            .peer_ids()
            .into_iter()
            .filter(|&p| p != tb.submitter)
            .collect();
        let mut rng = rngutil::substream(77, 1);
        let schedule = random_churn(
            &peers,
            churn_fraction,
            SimDuration::from_secs(1),
            SimDuration::from_secs(3600),
            &mut rng,
        );
        tb.overlay.schedule_churn(schedule.finish());
        tb.overlay.advance(SimDuration::from_secs(2));

        let allocator = CoAllocator::with_params(CoAllocatorParams {
            overbooking: policy,
            ..CoAllocatorParams::default()
        });
        let report = allocator.allocate(
            &mut tb.overlay,
            tb.submitter,
            &JobRequest::new(demand, StrategyKind::Spread, "hostname"),
        );
        let hosts_used = report.outcome.as_ref().map(|a| a.hosts_used()).unwrap_or(0);
        println!(
            "{name}\t{}\t{hosts_used}\t{}\t{}\t{}\t{}\t{:.2}",
            report.is_success(),
            report.booked,
            report.granted,
            report.dead,
            report.cancelled_unused,
            report.elapsed.as_millis_f64()
        );
    }
}

/// Memory-contention ablation: the EP gap between strategies vs alpha.
fn contention(flags: &AblationFlags) {
    let alphas = [0.0, 0.1, 0.28, 0.5];
    let n = flags.processes.unwrap_or(128);
    println!("# alpha\tconcentrate_s\tspread_s\tratio");
    for alpha in alphas {
        let settings = Fig4Settings {
            contention_alpha: Some(alpha),
            ..Fig4Settings::default()
        };
        let c = run_kernel_once(Fig4Kernel::Ep, StrategyKind::Concentrate, n, &settings);
        let s = run_kernel_once(Fig4Kernel::Ep, StrategyKind::Spread, n, &settings);
        println!(
            "{alpha}\t{:.3}\t{:.3}\t{:.3}",
            c.makespan.as_secs_f64(),
            s.makespan.as_secs_f64(),
            c.makespan.as_secs_f64() / s.makespan.as_secs_f64().max(1e-9)
        );
    }
}
