//! Regenerates Figure 3: where the *spread* strategy places processes
//! (hosts and cores allocated per site) as the demanded process count grows
//! from 100 to 600.
//!
//! ```text
//! cargo run --release -p p2pmpi-bench --bin fig3_spread [-- --seed N --sigma S]
//! ```

use p2pmpi_bench::cliargs as util;
use p2pmpi_bench::experiments::fig2_fig3_sweep;
use p2pmpi_bench::output::print_sweep_tables;
use p2pmpi_core::strategy::StrategyKind;

fn main() {
    let seed = util::flag_u64("--seed").unwrap_or(2008);
    let sigma = util::flag_f64("--sigma").unwrap_or(0.06);
    eprintln!("# spread sweep, seed={seed}, probe noise sigma={sigma}");
    let rows = fig2_fig3_sweep(StrategyKind::Spread, seed, sigma);
    print!("{}", print_sweep_tables(&rows));
}
