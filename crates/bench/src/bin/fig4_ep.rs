//! Regenerates Figure 4 (left): execution times of NAS EP class B from 32 to
//! 512 processes, under the *concentrate* and *spread* strategies.
//!
//! ```text
//! cargo run --release -p p2pmpi-bench --bin fig4_ep [-- --class B --divisor 512 --alpha A]
//! cargo run --release -p p2pmpi-bench --bin fig4_ep -- --modeled [--ranks 512,1024,2048] [--scale K]
//! ```
//!
//! The reported times are *virtual* (cost-model) seconds: the shape —
//! spread slightly ahead of concentrate until the per-process problem size
//! shrinks at 512 processes — is what reproduces the paper, not the absolute
//! values.
//!
//! `--modeled` switches the collectives to the LogGP analytical backend
//! (`p2pmpi_mpi::model`): no threads are spawned, so `--ranks` can sweep to
//! thousands of processes.  Counts beyond the paper grid's 1040 cores run on
//! a Table-1 grid scaled by `--scale` (default: just large enough), with
//! placements built synthetically in the co-allocator's idle-grid booking
//! order.
//!
//! `--searched` (implies the modeled backend for that curve) adds a third
//! column: the placement found by the annealing search
//! (`p2pmpi_bench::search`), never worse than the better fixed strategy and
//! usually well ahead of both on the heterogeneous Table-1 grid.  Tune it
//! with `--moves`/`--chains`/`--seed`.

use p2pmpi_bench::cliargs as util;
use p2pmpi_bench::experiments::{
    fig4_kernel_times, modeled_kernel_times, searched_kernel_times, Fig4Kernel, Fig4Settings,
};
use p2pmpi_bench::output::print_fig4_table;
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_grid5000::scenario::paper_ep_process_counts;
use p2pmpi_nas::classes::Class;

fn main() {
    let class: Class = util::flag_value("--class")
        .and_then(|v| v.parse().ok())
        .unwrap_or(Class::B);
    let divisor = util::flag_u64("--divisor").unwrap_or(512);
    let settings = Fig4Settings {
        class,
        ep_sample_divisor: divisor,
        contention_alpha: util::flag_f64("--alpha"),
        ..Fig4Settings::default()
    };
    let flags = util::sweep_flags();
    let counts = flags.ranks.clone().unwrap_or_else(paper_ep_process_counts);

    let run = |strategy| {
        if flags.modeled {
            modeled_kernel_times(Fig4Kernel::Ep, strategy, &counts, &settings, flags.scale)
        } else {
            fig4_kernel_times(Fig4Kernel::Ep, strategy, &counts, &settings)
        }
    };
    eprintln!(
        "# EP class {class}, sample divisor {divisor}, processes {counts:?}, backend {}",
        flags.backend_name()
    );
    let concentrate = run(StrategyKind::Concentrate);
    let spread = run(StrategyKind::Spread);
    assert!(
        concentrate.iter().chain(&spread).all(|p| p.verified),
        "EP verification failed on at least one point"
    );
    let searched = flags.searched.then(|| {
        searched_kernel_times(
            Fig4Kernel::Ep,
            &counts,
            &settings,
            flags.scale,
            &flags.search_params(Fig4Kernel::Ep),
        )
    });
    let mut series: Vec<(&str, &[p2pmpi_bench::Fig4Point])> =
        vec![("concentrate", &concentrate), ("spread", &spread)];
    if let Some(searched) = &searched {
        series.push(("searched", searched));
    }
    print!("{}", print_fig4_table("EP", &class.to_string(), &series));
}
