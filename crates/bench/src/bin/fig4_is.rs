//! Regenerates Figure 4 (right): execution times of NAS IS class B from 32
//! to 128 processes, under the *concentrate* and *spread* strategies.
//!
//! ```text
//! cargo run --release -p p2pmpi-bench --bin fig4_is [-- --class B --divisor 8 --alpha A]
//! cargo run --release -p p2pmpi-bench --bin fig4_is -- --modeled [--ranks 256,512,1024] [--scale K]
//! ```
//!
//! The reported times are *virtual* (cost-model) seconds.  The expected shape
//! (Section 5.2): at 32 processes spread wins because all processes still fit
//! in the Nancy cluster with one per host; from 64 processes on, spread pays
//! inter-site latency for its Alltoall/Allreduce traffic while concentrate
//! stays local and roughly flat.
//!
//! `--modeled` switches to the LogGP analytical backend (see `fig4_ep` for
//! the flags): IS at 1k+ ranks models the full ring alltoall(v) schedule in
//! seconds instead of spawning thousands of threads.
//!
//! `--searched` adds the annealing-search curve (see `fig4_ep`).  The
//! search's incremental evaluator keeps its ring state in pooled transfer
//! tables of O(ranks · sites) bytes, so searched IS runs at 1024+ ranks;
//! the default move budget is IS's own (smaller than EP's — override with
//! `--moves`).

use p2pmpi_bench::cliargs as util;
use p2pmpi_bench::experiments::{
    fig4_kernel_times, modeled_kernel_times, searched_kernel_times, Fig4Kernel, Fig4Settings,
};
use p2pmpi_bench::output::print_fig4_table;
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_grid5000::scenario::paper_is_process_counts;
use p2pmpi_nas::classes::Class;

fn main() {
    let class: Class = util::flag_value("--class")
        .and_then(|v| v.parse().ok())
        .unwrap_or(Class::B);
    let divisor = util::flag_u64("--divisor").unwrap_or(8);
    let settings = Fig4Settings {
        class,
        is_sample_divisor: divisor,
        contention_alpha: util::flag_f64("--alpha"),
        ..Fig4Settings::default()
    };
    let flags = util::sweep_flags();
    let counts = flags.ranks.clone().unwrap_or_else(paper_is_process_counts);

    let run = |strategy| {
        if flags.modeled {
            modeled_kernel_times(Fig4Kernel::Is, strategy, &counts, &settings, flags.scale)
        } else {
            fig4_kernel_times(Fig4Kernel::Is, strategy, &counts, &settings)
        }
    };
    eprintln!(
        "# IS class {class}, sample divisor {divisor}, processes {counts:?}, backend {}",
        flags.backend_name()
    );
    let concentrate = run(StrategyKind::Concentrate);
    let spread = run(StrategyKind::Spread);
    assert!(
        concentrate.iter().chain(&spread).all(|p| p.verified),
        "IS verification failed on at least one point"
    );
    let searched = flags.searched.then(|| {
        searched_kernel_times(
            Fig4Kernel::Is,
            &counts,
            &settings,
            flags.scale,
            &flags.search_params(Fig4Kernel::Is),
        )
    });
    let mut series: Vec<(&str, &[p2pmpi_bench::Fig4Point])> =
        vec![("concentrate", &concentrate), ("spread", &spread)];
    if let Some(searched) = &searched {
        series.push(("searched", searched));
    }
    print!("{}", print_fig4_table("IS", &class.to_string(), &series));
}
