//! Figures 2–3 at sweep scale: per-site utilisation timelines from a
//! day-long submission trace.
//!
//! ```text
//! cargo run --release -p p2pmpi-bench --bin fig23_sweep -- \
//!     [--strategy concentrate|spread|searched|both|all] [--searched] \
//!     [--queue ladder|calendar|heap] [--seed N] [--compress F] \
//!     [--rate-scale F] [--duration-scale F] [--sample-secs S] \
//!     [--ranks a,b,c] [--churn F] [--search-moves N] [--search-cold]
//! ```
//!
//! Where the paper's Figures 2 and 3 submit one job at a time and plot where
//! its processes land, this binary replays a **day** of bursty submissions
//! (the [`DayProfile::paper_day`] trace, ~21.7k jobs over 86,400 virtual
//! seconds) through the co-allocator and plots where the *fleet* of jobs
//! lands over time.  Per strategy it prints one `[utilisation_<strategy>]`
//! table — a row per 5-minute sample, a column per site with the processes
//! running there — plus a work-share summary.  The concentrate run keeps
//! the bulk of the work at Nancy (the submitter's site, lowest RTT),
//! spilling to Lyon/Rennes/... only during bursts; the spread run deals
//! work across all six sites from the first sample on — the same contrast
//! the paper's figures show, now visible as a timeline.
//!
//! # The driver loop
//!
//! The whole run is one discrete-event simulation on the overlay's
//! ladder-queue timeline (`--queue calendar|heap` opts into the other
//! structures for comparison; see `perf_report`'s `sweep_engine` and
//! `timeout_timeline` sections):
//!
//! 1. The trace is materialised up front ([`p2pmpi_bench::workload::day_trace`]):
//!    arrival instants from the piecewise-rate profile, job shapes (rank
//!    count, EP vs IS kernel) from the mix.
//! 2. For each job, `Overlay::run_until(job.at)` delivers everything due
//!    first — job completions, heartbeat rounds, periodic cache refreshes,
//!    reservation-expiry sweeps, churn — so the allocator sees exactly the
//!    overlay state a live system would have at that instant.
//! 3. The job is submitted through `CoAllocator::allocate`.  The brokering
//!    step is event-driven: every reservation request arms a timeout event
//!    that the simulated reply cancels, so the clock genuinely waits out
//!    dead peers' timeouts.  On success the job's **modeled** kernel
//!    duration (the LogGP analytical backend on the job's real placement)
//!    is charged as a hold, and an `Overlay::schedule_completion` event
//!    frees the booked hosts when it elapses.  On refusal (gatekeepers
//!    busy, infeasible) the job counts as failed — burst-hour refusals are
//!    part of the narrative.
//! 4. Utilisation is sampled every `--sample-secs` by reading each RS's
//!    running-process count, grouped by site.
//!
//! `--compress 24 --rate-scale 0.05` replays the full day's burst shape in
//! one virtual hour at ~1k jobs — the CI smoke configuration.  `--churn F`
//! adds the dead-peer flapping scenario (fraction `F` of peers on the
//! default down/up cycle, compressed with the profile): booked-but-dead
//! peers park full `rs_timeout` stalls on the timeline, the timeout-heavy
//! population the ladder queue exists for.

use p2pmpi_bench::cliargs::{day_sweep_flags, DaySweepFlags};
use p2pmpi_bench::workload::{
    run_day_sweep, DaySweepConfig, DaySweepResult, DeadPeerChurn, JobMix,
};
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_simgrid::event::QueueKind;
use p2pmpi_simgrid::time::SimDuration;
use std::time::Instant;

fn config_for(strategy: StrategyKind, flags: &DaySweepFlags) -> DaySweepConfig {
    // --churn F opts into the dead-peer scenario wholesale (flapping peers,
    // fast cache refresh) with only the flapping fraction overridden, so
    // the CLI cannot drift from the named scenario the tests and
    // perf_report gate on.
    let mut cfg = match flags.churn {
        Some(fraction) => {
            if !(0.0..=1.0).contains(&fraction) {
                eprintln!("--churn takes a fraction in [0, 1], got {fraction}");
                std::process::exit(2);
            }
            let mut cfg = DaySweepConfig::dead_peer_day(strategy);
            cfg.churn = Some(DeadPeerChurn {
                fraction,
                ..DeadPeerChurn::default()
            });
            cfg
        }
        None => DaySweepConfig::new(strategy),
    };
    cfg.seed = flags.seed;
    cfg.queue = match flags.queue.as_str() {
        "calendar" => QueueKind::Calendar,
        "heap" => QueueKind::BinaryHeap,
        "ladder" => QueueKind::Ladder,
        other => {
            eprintln!("unknown --queue {other:?} (expected calendar|heap|ladder)");
            std::process::exit(2);
        }
    };
    if let Some(f) = flags.compress {
        // Compresses the churn cycle and refresh cadence along with the
        // profile, preserving the per-job timeout pressure.
        cfg = cfg.compress(f);
    }
    if let Some(f) = flags.rate_scale {
        cfg.profile = cfg.profile.scaled(f);
    }
    if let Some(f) = flags.duration_scale {
        cfg.duration_scale = f;
    }
    if let Some(s) = flags.sample_secs {
        cfg.sample_period = SimDuration::from_secs(s);
    }
    if let Some(ranks) = &flags.ranks {
        cfg.mix = JobMix {
            ranks: ranks.clone(),
            ..JobMix::default()
        };
    }
    if let Some(moves) = flags.search_moves {
        cfg.search_moves = moves;
    }
    cfg.search_cold = flags.search_cold;
    cfg
}

fn print_result(name: &str, result: &DaySweepResult, wall_ms: f64) {
    println!("\n[utilisation_{name}]");
    print!("t_secs");
    for site in &result.site_names {
        print!("\t{site}");
    }
    println!("\ttotal");
    for sample in &result.samples {
        print!("{:.0}", sample.t.as_secs_f64());
        let mut total = 0u32;
        for &r in &sample.running {
            total += r;
            print!("\t{r}");
        }
        println!("\t{total}");
    }

    println!("\n[work_share_{name}]");
    print!("# site");
    for site in &result.site_names {
        print!("\t{site}");
    }
    println!();
    print!("# share");
    for share in result.site_work_share() {
        print!("\t{share:.3}");
    }
    println!();

    eprintln!(
        "# {name}: {} submitted, {} succeeded, {} failed, {} reservation timeouts, \
         mean hold {:.1}s, {} timeline events, virtual end {:.0}s, wall {wall_ms:.0}ms",
        result.submitted,
        result.succeeded,
        result.failed,
        result.timeouts,
        result.mean_hold_secs,
        result.events_processed,
        result.virtual_end.as_secs_f64(),
    );
    if let Some(s) = &result.search {
        eprintln!(
            "# {name} online search: {} arrivals ({} searched, {} infeasible), \
             {} warm rebases vs {} cold builds, {} moves, \
             prepare {:.0}ms + anneal {:.0}ms wall",
            s.arrivals,
            s.searched,
            s.infeasible,
            s.warm_rebases,
            s.cold_builds,
            s.moves_evaluated,
            s.prepare_nanos as f64 / 1e6,
            s.anneal_nanos as f64 / 1e6,
        );
    }
}

fn main() {
    let flags = day_sweep_flags();
    // `--searched` is shorthand for `--strategy searched`.
    let selected = if flags.searched {
        "searched"
    } else {
        flags.strategy.as_str()
    };
    let strategies: Vec<(&str, StrategyKind)> = match selected {
        "concentrate" => vec![("concentrate", StrategyKind::Concentrate)],
        "spread" => vec![("spread", StrategyKind::Spread)],
        "searched" => vec![("searched", StrategyKind::Searched)],
        "both" => vec![
            ("concentrate", StrategyKind::Concentrate),
            ("spread", StrategyKind::Spread),
        ],
        "all" => vec![
            ("concentrate", StrategyKind::Concentrate),
            ("spread", StrategyKind::Spread),
            ("searched", StrategyKind::Searched),
        ],
        other => {
            eprintln!(
                "unknown --strategy {other:?} (expected concentrate|spread|searched|both|all)"
            );
            std::process::exit(2);
        }
    };

    for (name, strategy) in strategies {
        let cfg = config_for(strategy, &flags);
        eprintln!(
            "# {name} day sweep: ~{:.0} jobs over {:.0}s virtual, queue={:?}, seed={}",
            cfg.profile.expected_jobs(),
            cfg.profile.horizon().as_secs_f64(),
            cfg.queue,
            cfg.seed,
        );
        let start = Instant::now();
        let result = run_day_sweep(&cfg);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        print_result(name, &result, wall_ms);
    }
}
