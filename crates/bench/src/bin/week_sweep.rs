//! Week-scale sharded sweep: the Figures 2–3 day trace tiled across a
//! week and replayed over per-site shard timelines running in parallel
//! between conservative synchronization barriers.
//!
//! ```text
//! cargo run --release -p p2pmpi-bench --bin week_sweep -- \
//!     [--shards N] [--days N] [--cross-fraction F] \
//!     [--strategy concentrate|spread] [--queue ladder|calendar|heap] \
//!     [--seed N] [--compress F] [--rate-scale F] \
//!     [--sequential] [--baseline]
//! ```
//!
//! The full week at 10× traffic (`--rate-scale 10`, ~1.5M jobs) is the
//! production-scale target; `--shards 4 --compress 168 --rate-scale 0.02`
//! squeezes the week's shape into one virtual hour at ~3k jobs — the CI
//! smoke configuration.  See `p2pmpi_bench::shard` for the barrier
//! protocol; `--baseline` also runs the bit-identical single-thread
//! driver and reports the wall-clock speedup.

use p2pmpi_bench::cliargs::{week_sweep_flags, WeekSweepFlags};
use p2pmpi_bench::shard::{run_shard_sweep, ShardSweepConfig, ShardSweepResult};
use p2pmpi_bench::workload::{DayProfile, DaySweepConfig};
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_simgrid::event::QueueKind;

fn config_for(flags: &WeekSweepFlags) -> ShardSweepConfig {
    let strategy = match flags.strategy.as_str() {
        "concentrate" => StrategyKind::Concentrate,
        "spread" => StrategyKind::Spread,
        other => {
            eprintln!("unknown --strategy {other:?} (expected concentrate|spread)");
            std::process::exit(2);
        }
    };
    let mut base = DaySweepConfig::new(strategy);
    base.seed = flags.seed;
    base.queue = match flags.queue.as_str() {
        "calendar" => QueueKind::Calendar,
        "heap" => QueueKind::BinaryHeap,
        "ladder" => QueueKind::Ladder,
        other => {
            eprintln!("unknown --queue {other:?} (expected calendar|heap|ladder)");
            std::process::exit(2);
        }
    };
    if flags.days == 0 {
        eprintln!("--days must be >= 1");
        std::process::exit(2);
    }
    base.profile = DayProfile::paper_day().repeated(flags.days);
    if let Some(f) = flags.compress {
        base = base.compress(f);
    }
    if let Some(f) = flags.rate_scale {
        base.profile = base.profile.scaled(f);
    }
    let mut cfg = ShardSweepConfig::new(base, flags.shards);
    cfg.cross_fraction = flags.cross_fraction;
    cfg.parallel = !flags.sequential;
    cfg
}

fn print_result(label: &str, r: &ShardSweepResult) {
    println!("\n[{label}]");
    println!(
        "shards\t{}\tbarriers\t{}\tcross\t{}/{} placed ({} refused)",
        r.per_shard.len(),
        r.barriers,
        r.cross_succeeded,
        r.cross_submitted,
        r.cross_failed,
    );
    print!("per_shard_submitted");
    for s in &r.per_shard {
        print!("\t{}", s.submitted);
    }
    println!();
    let m = &r.merged;
    println!(
        "submitted\t{}\tsucceeded\t{}\tfailed\t{}\ttimeouts\t{}",
        m.submitted, m.succeeded, m.failed, m.timeouts
    );
    println!(
        "events\t{}\tvirtual_end\t{:.0}s\treaped\t{}\tdead_hwm\t{}",
        m.events_processed,
        m.virtual_end.as_secs_f64(),
        m.reaped_tickets,
        m.dead_ticket_hwm
    );
    print!("# work_share");
    for (site, share) in m.site_names.iter().zip(m.site_work_share()) {
        print!("\t{site}:{share:.3}");
    }
    println!();
    println!(
        "wall_ms\t{:.1}\tevents_per_sec\t{:.0}\tjobs_per_sec\t{:.1}",
        r.wall.as_secs_f64() * 1e3,
        r.events_per_sec(),
        r.jobs_per_sec()
    );
}

fn main() {
    let flags = week_sweep_flags();
    let cfg = config_for(&flags);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "# week_sweep: {} shard(s), {} day(s), cross fraction {}, {} driver, {cores} hw thread(s)",
        cfg.shards,
        flags.days,
        cfg.cross_fraction,
        if cfg.parallel {
            "parallel"
        } else {
            "single-thread"
        },
    );

    let result = run_shard_sweep(&cfg);
    print_result(
        if cfg.parallel {
            "week_sweep_parallel"
        } else {
            "week_sweep_sequential"
        },
        &result,
    );

    if flags.baseline && cfg.parallel {
        let mut baseline_cfg = cfg.clone();
        baseline_cfg.parallel = false;
        let baseline = run_shard_sweep(&baseline_cfg);
        print_result("week_sweep_baseline", &baseline);
        assert_eq!(
            baseline.merged.events_processed, result.merged.events_processed,
            "the single-thread baseline must be bit-identical"
        );
        println!(
            "\nspeedup\t{:.2}x\t({} hw threads)",
            baseline.wall.as_secs_f64() / result.wall.as_secs_f64().max(1e-9),
            cores
        );
    }
}
