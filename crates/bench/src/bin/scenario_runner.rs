//! Runs the fault-injection scenario matrix and prints one JSON verdict per
//! scenario.
//!
//! ```text
//! cargo run --release -p p2pmpi-bench --bin scenario_runner -- \
//!     (--all | --scenario NAME) [--compress F] [--rate-scale F] \
//!     [--seed N] [--queue ladder|calendar|heap] \
//!     [--strategy spread|concentrate|searched|balanced:<k>]
//! ```
//!
//! Each scenario replays a day-scale submission trace with one named
//! adversity injected (see `p2pmpi_bench::scenario` for the matrix and the
//! fault-event contract) and is judged against explicit graceful-degradation
//! criteria: the supernode-crash day must complete ≥ 90% of its no-fault
//! twin's jobs, a site outage's utilisation must recover to within 5% of the
//! twin's, the standard day must leak zero grants, and so on.  Verdicts go
//! to stdout as JSON; progress and a pass/fail summary go to stderr; the
//! exit status is non-zero if any scenario failed its criteria.
//!
//! `--compress 24` replays each scenario's day (and its fault windows) in
//! one virtual hour — the CI configuration.  `--rate-scale` defaults to
//! 0.05 (~1.1k jobs per day-equivalent).

use p2pmpi_bench::cliargs::{flag_f64, flag_present, flag_u64, flag_value};
use p2pmpi_bench::scenario::{run_scenario, Scenario, ScenarioParams, ALL_SCENARIOS};
use p2pmpi_simgrid::event::QueueKind;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: scenario_runner (--all | --scenario NAME) [--compress F] [--rate-scale F] \
         [--seed N] [--queue ladder|calendar|heap] [--strategy NAME]\n\nscenarios:"
    );
    for s in ALL_SCENARIOS {
        eprintln!("  {:<18} {}", s.name(), s.summary());
    }
    std::process::exit(2);
}

fn main() {
    let scenarios: Vec<Scenario> = if flag_present("--all") {
        ALL_SCENARIOS.to_vec()
    } else if let Some(name) = flag_value("--scenario") {
        match Scenario::from_name(&name) {
            Ok(s) => vec![s],
            Err(e) => {
                eprintln!("{e}");
                usage();
            }
        }
    } else {
        usage();
    };

    let mut params = ScenarioParams::default();
    if let Some(f) = flag_f64("--compress") {
        if f < 1.0 {
            eprintln!("--compress must be >= 1, got {f}");
            std::process::exit(2);
        }
        params.compress = f;
    }
    if let Some(f) = flag_f64("--rate-scale") {
        params.rate_scale = f;
    }
    if let Some(s) = flag_u64("--seed") {
        params.seed = s;
    }
    if let Some(q) = flag_value("--queue") {
        params.queue = match q.as_str() {
            "ladder" => QueueKind::Ladder,
            "calendar" => QueueKind::Calendar,
            "heap" => QueueKind::BinaryHeap,
            other => {
                eprintln!("unknown --queue {other:?} (expected ladder|calendar|heap)");
                std::process::exit(2);
            }
        };
    }
    if let Some(s) = flag_value("--strategy") {
        match s.parse() {
            Ok(strategy) => params.strategy = Some(strategy),
            Err(e) => {
                eprintln!("bad --strategy: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut failures = 0usize;
    let total = scenarios.len();
    for (i, scenario) in scenarios.into_iter().enumerate() {
        eprintln!(
            "[{}/{total}] running {} (compress {}, rate scale {}, seed {})...",
            i + 1,
            scenario.name(),
            params.compress,
            params.rate_scale,
            params.seed,
        );
        let start = Instant::now();
        let verdict = run_scenario(scenario, &params);
        let wall = start.elapsed().as_secs_f64();
        println!("{}", verdict.to_json());
        let status = if verdict.passed() { "PASS" } else { "FAIL" };
        eprintln!(
            "[{}/{total}] {status} {} in {wall:.1}s wall ({}/{} jobs placed)",
            i + 1,
            scenario.name(),
            verdict.result.succeeded,
            verdict.result.submitted,
        );
        if !verdict.passed() {
            failures += 1;
            for check in verdict.checks.iter().filter(|c| !c.passed) {
                eprintln!("  failed check {}: {}", check.name, check.detail);
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures}/{total} scenarios failed their graceful-degradation criteria");
        std::process::exit(1);
    }
    eprintln!("all {total} scenarios passed");
}
