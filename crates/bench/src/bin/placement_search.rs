//! Model-driven placement search: anneal host assignments under the LogGP
//! model and compare the found placement against the paper's two fixed
//! strategies.
//!
//! ```text
//! cargo run --release -p p2pmpi-bench --bin placement_search -- \
//!     [--kernel ep|is|ft] [--ranks N] [--scale K] [--skewed] \
//!     [--moves M] [--chains C] [--seed S] [--class B] [--divisor D]
//! ```
//!
//! Defaults: EP at 256 ranks, 10 000 moves (IS/FT: 2 000) on 4 chains, on a Table-1 grid
//! scaled just large enough (`--skewed` swaps in the heterogeneity-skewed
//! grid of `p2pmpi_grid5000::sites::skewed_table1`, where fixed strategies
//! are provably poor).  The search itself lives in `p2pmpi_bench::search`;
//! its hot path is the incremental evaluator of `p2pmpi_mpi::model`, which
//! re-costs a candidate move against cached per-segment state instead of a
//! full model replay — `perf_report`'s `placement_search` and `is_search`
//! sections gate that speedup and the search quality.
//!
//! Ring kernels (IS, FT): the evaluator's ring state is pooled transfer
//! tables of O(ranks · sites) bytes (see the `p2pmpi_mpi::model` memory
//! note), so alltoall-heavy searches run at 1024+ ranks; a move still
//! replays each ring's wavefront, so their per-move cost is higher than
//! EP's — budget moves accordingly (`SearchParams::default_for`).

use p2pmpi_bench::cliargs as util;
use p2pmpi_bench::experiments::{Fig4Kernel, Fig4Settings};
use p2pmpi_bench::search::{search_placement, SearchParams};
use p2pmpi_grid5000::sites::{scale_factor_for_cores, scaled_table1, skewed_table1};
use p2pmpi_grid5000::testbed::topology_from_specs;
use p2pmpi_nas::classes::Class;
use std::time::Instant;

fn main() {
    let kernel = match util::flag_value("--kernel").as_deref() {
        None | Some("ep") => Fig4Kernel::Ep,
        Some("is") => Fig4Kernel::Is,
        Some("ft") => Fig4Kernel::Ft,
        Some(other) => {
            eprintln!("unknown kernel {other:?} (expected ep, is or ft)");
            std::process::exit(2);
        }
    };
    let ranks = util::flag_u64("--ranks").unwrap_or(256) as u32;
    let class: Class = util::flag_value("--class")
        .and_then(|v| v.parse().ok())
        .unwrap_or(Class::B);
    let mut settings = Fig4Settings {
        class,
        ..Fig4Settings::default()
    }
    .modeled();
    if let Some(divisor) = util::flag_u64("--divisor") {
        match kernel {
            Fig4Kernel::Ep => settings.ep_sample_divisor = divisor,
            Fig4Kernel::Is => settings.is_sample_divisor = divisor,
            Fig4Kernel::Ft => {
                eprintln!("--divisor is ignored for FT (it always models the full class)")
            }
        }
    }
    let default_moves = match kernel {
        Fig4Kernel::Ep => 10_000,
        // Ring kernels pay a wavefront per ring segment per move.
        Fig4Kernel::Is | Fig4Kernel::Ft => 2_000,
    };
    let params = SearchParams {
        moves: util::flag_u64("--moves").unwrap_or(default_moves),
        chains: util::flag_u64("--chains").unwrap_or(4) as u32,
        seed: util::flag_u64("--seed").unwrap_or(2008),
    };
    let factor = util::flag_u64("--scale")
        .map(|s| s as usize)
        .unwrap_or_else(|| scale_factor_for_cores(ranks as usize));
    let skewed = util::flag_present("--skewed");
    let specs = if skewed {
        skewed_table1(factor)
    } else {
        scaled_table1(factor)
    };
    let topology = topology_from_specs(&specs);

    eprintln!(
        "# placement_search: {} {} ranks on the {}scale-{factor} Table-1 grid ({} hosts, {} cores), {} moves x {} chains, seed {}",
        kernel.program(),
        ranks,
        if skewed { "SKEWED " } else { "" },
        topology.host_count(),
        topology.total_cores(),
        params.moves,
        params.chains,
        params.seed,
    );

    let start = Instant::now();
    let report = search_placement(&topology, kernel, ranks, &settings, &params);
    let wall = start.elapsed();

    println!("placement\tmodeled_s\thosts_used");
    println!("concentrate\t{:.6}\t-", report.concentrate.as_secs_f64());
    println!("spread\t{:.6}\t-", report.spread.as_secs_f64());
    println!(
        "searched\t{:.6}\t{}",
        report.best.as_secs_f64(),
        report.hosts_used()
    );
    println!(
        "# searched is {:.2}% better than best-of(concentrate, spread); winning seed {:?}",
        report.improvement() * 100.0,
        report.best_seed,
    );
    for c in &report.chains {
        eprintln!(
            "# chain {:?}: initial {:.6}s -> best {:.6}s ({} evaluated, {} accepted)",
            c.seed,
            c.initial.as_secs_f64(),
            c.best.as_secs_f64(),
            c.evaluated,
            c.accepted,
        );
    }
    eprintln!(
        "# wall {:.2}s ({:.0} moves/s across chains)",
        wall.as_secs_f64(),
        report.evaluated() as f64 / wall.as_secs_f64().max(1e-9),
    );
}
