//! Hunts the adversarial phase of the Nancy outage against the flash
//! crowd: sweeps `PhaseShift` offsets of the composed outage-in-crowd
//! scenario and reports the offset that maximises recovery time.
//!
//! ```text
//! cargo run --release -p p2pmpi-bench --bin fault_search -- \
//!     [--offsets s1,s2,...] [--refine N] [--compress F] [--rate-scale F] \
//!     [--seed N] [--queue ladder|calendar|heap] [--no-gate]
//! ```
//!
//! Offsets are seconds on the *uncompressed* day (negative = the outage
//! starts earlier); the default grid is ±2 h around the nominal 10:30
//! onset in half-hour steps.  `--refine N` adds N golden-section
//! iterations around the worst grid bracket.  One JSON report goes to
//! stdout: every evaluated point, the nominal point, and the worst.
//!
//! Unless `--no-gate` is given, the run fails (exit 1) when the worst
//! phase's recovery time is not at least 10% worse than the nominal
//! onset's — the acceptance bound that proves fault timing *matters* and
//! guards the pinned `outage_in_crowd_worst` scenario
//! (`OUTAGE_IN_CROWD_WORST_OFFSET_SECS`) against drifting stale.

use p2pmpi_bench::cliargs::{flag_f64, flag_present, flag_u64, flag_value, parse_f64_list};
use p2pmpi_bench::faultsearch::{search_worst_phase, PhasePoint, PhaseSearchParams};
use p2pmpi_bench::scenario::OUTAGE_IN_CROWD_WORST_OFFSET_SECS;
use p2pmpi_simgrid::event::QueueKind;
use std::time::Instant;

/// The worst phase must be at least this much worse than the nominal
/// onset for the gate to pass.
const WORST_OVER_NOMINAL_MIN: f64 = 1.1;

fn point_json(p: &PhasePoint) -> String {
    format!(
        r#"{{ "offset_secs": {:.1}, "recovery_secs": {:.1}, "recovered": {}, "succeeded": {}, "submitted": {}, "jobs_killed": {} }}"#,
        p.offset_secs, p.recovery_secs, p.recovered, p.succeeded, p.submitted, p.jobs_killed
    )
}

fn main() {
    let mut params = PhaseSearchParams::default();
    if let Some(v) = flag_value("--offsets") {
        params.offsets = parse_f64_list(&v, "--offsets");
    }
    if let Some(n) = flag_u64("--refine") {
        params.refine_iters = n as usize;
    }
    if let Some(f) = flag_f64("--compress") {
        if f < 1.0 {
            eprintln!("--compress must be >= 1, got {f}");
            std::process::exit(2);
        }
        params.scenario.compress = f;
    } else {
        // The search default is the CI scale: one virtual hour per day.
        params.scenario.compress = 24.0;
    }
    if let Some(f) = flag_f64("--rate-scale") {
        params.scenario.rate_scale = f;
    }
    if let Some(s) = flag_u64("--seed") {
        params.scenario.seed = s;
    }
    if let Some(q) = flag_value("--queue") {
        params.scenario.queue = match q.as_str() {
            "ladder" => QueueKind::Ladder,
            "calendar" => QueueKind::Calendar,
            "heap" => QueueKind::BinaryHeap,
            other => {
                eprintln!("unknown --queue {other:?} (expected ladder|calendar|heap)");
                std::process::exit(2);
            }
        };
    }

    eprintln!(
        "sweeping {} phase offsets (+{} refinement iters) at compress {}, rate scale {}, seed {}...",
        params.offsets.len(),
        params.refine_iters,
        params.scenario.compress,
        params.scenario.rate_scale,
        params.scenario.seed,
    );
    let start = Instant::now();
    let report = search_worst_phase(&params);
    let wall = start.elapsed().as_secs_f64();

    let points = report
        .points
        .iter()
        .map(|p| format!("    {}", point_json(p)))
        .collect::<Vec<_>>()
        .join(",\n");
    let ratio = report.worst_over_nominal();
    println!(
        r#"{{
  "compress": {compress},
  "rate_scale": {rate},
  "seed": {seed},
  "refined_evals": {refined},
  "points": [
{points}
  ],
  "nominal": {nominal},
  "worst": {worst},
  "worst_over_nominal": {ratio:.3},
  "pinned_offset_secs": {pinned:.1},
  "wall_s": {wall:.1}
}}"#,
        compress = params.scenario.compress,
        rate = params.scenario.rate_scale,
        seed = params.scenario.seed,
        refined = report.refined_evals,
        nominal = point_json(&report.nominal),
        worst = point_json(&report.worst),
        pinned = OUTAGE_IN_CROWD_WORST_OFFSET_SECS,
    );

    eprintln!(
        "worst phase {:+.0}s: recovery {:.1}s vs nominal {:.1}s ({ratio:.2}x) in {wall:.1}s wall",
        report.worst.offset_secs, report.worst.recovery_secs, report.nominal.recovery_secs,
    );
    if !flag_present("--no-gate") && ratio < WORST_OVER_NOMINAL_MIN {
        eprintln!(
            "GATE FAILED: worst recovery is only {ratio:.2}x the nominal onset's \
             (bound {WORST_OVER_NOMINAL_MIN}) — fault timing no longer matters here, \
             or the search grid misses the worst basin"
        );
        std::process::exit(1);
    }
}
