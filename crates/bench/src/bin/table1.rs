//! Regenerates Table 1 of the paper: the characteristics of the available
//! computing resources at the different Grid'5000 sites.
//!
//! ```text
//! cargo run -p p2pmpi-bench --bin table1
//! ```

use p2pmpi_bench::output::format_table1;
use p2pmpi_grid5000::sites::TABLE1;

fn main() {
    print!("{}", format_table1(TABLE1));
}
