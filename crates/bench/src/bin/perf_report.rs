//! Hot-path performance report.
//!
//! Measures the co-allocation hot path on the warm Grid'5000 testbed and
//! writes `BENCH_hotpath.json` so successive PRs accumulate a perf
//! trajectory.  Thirteen measurements:
//!
//! 1. **ranking** — walking the booking order of a warm 349-peer cache via
//!    the incremental index versus the seed's naive sort-per-read.
//! 2. **allocate_warm** — full job submissions (book → broker → distribute →
//!    start → complete) with tracing off and on, compared against the seed
//!    tree's measured cost for the identical workload.
//! 3. **job_sweep_poisson** — throughput of a Poisson-arriving sweep, the
//!    workload the Figure 2–4 reproductions submit at scale; best of 3
//!    rounds, with the machine's hardware-thread count recorded alongside
//!    (the same discipline as `sustained_throughput`) so trajectory points
//!    from different machines are distinguishable.
//! 4. **event_engine** — steady-state events/s of the discrete-event queue:
//!    the seed's boxed-closure binary heap (reconstructed inline here as the
//!    baseline) versus the arena-backed store behind a binary heap, a
//!    calendar queue and a ladder queue (`p2pmpi_simgrid::event`).
//! 5. **modeled_collectives** — agreement between the executed thread-per-
//!    rank runtime and the LogGP analytical backend on the same placements
//!    (EP must match to [`EP_DIVERGENCE_TOLERANCE`], IS — whose alltoallv
//!    block sizes the model approximates as balanced — to
//!    [`IS_DIVERGENCE_TOLERANCE`]; the report **exits non-zero** if either
//!    bound is violated), plus modeled-sweep throughput at 1k–2k ranks.
//! 6. **sweep_engine** — wall time of the day-scale submission trace
//!    (compressed to ~2h virtual / ~1.8k jobs) on the overlay's event
//!    timeline, binary heap vs calendar vs ladder queue, best of 3
//!    interleaved rounds.  The ladder queue is the sweep default, so the
//!    report **exits non-zero** if it loses to the best alternative by more
//!    than the documented [`SWEEP_ENGINE_NOISE_MARGIN`] (the trace's wall
//!    time is dominated by the co-allocations themselves, identical under
//!    every kind, so the margin only absorbs scheduler noise and the
//!    structures' small-population constant factors).
//! 7. **timeout_timeline** — the headline numbers of the event-driven
//!    brokering step: the **full** `paper_day()` trace (~21.7k jobs) with
//!    one armed-then-cancelled timeout event per reservation request
//!    (~1.6M timeline events), on all three queue kinds.  The best queue
//!    must stay within [`TIMEOUT_TIMELINE_LIMIT`]× of
//!    [`ANALYTICAL_DAY_WALL_MS`] — the same day measured when timeouts
//!    were charged analytically off-timeline — or the report exits
//!    non-zero.  The section also asserts the brokering scratch and event
//!    store reached an allocation-free steady state
//!    (`DaySweepResult::steady_state_alloc_free`).
//! 8. **placement_search** — the model-driven placement search
//!    (`p2pmpi_bench::search` over `p2pmpi_mpi::model::PlacementCost`).
//!    Four gates, all **exit non-zero** when violated: (a) delta evaluation
//!    must be at least [`PLACEMENT_DELTA_SPEEDUP_MIN`]× cheaper per move
//!    than a full model replay at 256 ranks (EP — the kernel whose `max()`
//!    absorption makes delta evaluation pay; IS ring frontiers propagate
//!    more broadly and are documented, not gated); (b) on every standard
//!    scaled-Table-1 grid case the searched placement must be **no worse**
//!    than best-of(concentrate, spread); (c) on the heterogeneity-skewed
//!    `skewed_table1` grid it must be more than
//!    [`PLACEMENT_SKEWED_IMPROVEMENT_MIN`] better; (d) the full-scale
//!    1024-rank, 10k-move, 4-chain EP search must finish within
//!    [`PLACEMENT_SEARCH_WALL_BUDGET_S`] seconds of wall time (full runs
//!    only; `--test` runs (a)–(c) at reduced scale).
//! 9. **is_search** — the ring-dominated IS schedule at 1024 ranks through
//!    the same evaluator: delta evaluation must be at least
//!    [`IS_SEARCH_DELTA_SPEEDUP_MIN`]× cheaper than a full replay (the
//!    pooled integer transfer tables versus per-receive float costing),
//!    the ring caches must stay under [`IS_SEARCH_RING_CACHE_BYTES_MAX`]
//!    (O(ranks·sites) tables, not the O(steps·ranks²) rows they replaced),
//!    the searched placement must not lose to best-of(concentrate,
//!    spread), and the at-scale search must finish within
//!    [`IS_SEARCH_WALL_BUDGET_S`] (full runs; `--test` runs the relative
//!    gates at IS@128).  The section also pins the `Uniform` ring
//!    specialisation: IS's uniform sample alltoall must stay on the
//!    move-invariant site×site table form and save at least
//!    [`IS_SEARCH_UNIFORM_SAVINGS_MIN`]× over the journaled `PerSrc`
//!    layout it would otherwise occupy.  All **exit non-zero** when
//!    violated.
//! 10. **scenario_matrix** — the fault-injection scenario matrix
//!     (`p2pmpi_bench::scenario`) at the CI scale (compress 24, rate scale
//!     0.05): every scenario's graceful-degradation verdict must pass —
//!     zero leaked grants on the standard day, utilisation recovery after a
//!     correlated site outage, stale-view brokering through a supernode
//!     crash, eager reclamation under grant-leak stress — or the report
//!     **exits non-zero**.
//! 11. **skewed dead-peer trace** (inside `timeout_timeline`) — the
//!     churn-heavy [`DaySweepConfig::dead_peer_day`] scenario compressed
//!     12×: thousands of reservation timeouts whose 2 s windows ride on
//!     millisecond replies and hour-scale completions, the trimodal skew
//!     where the calendar queue's uniform bucket width degrades.
//!     [`QueueKind::Ladder`] must beat [`QueueKind::Calendar`] by more than
//!     [`LADDER_VS_CALENDAR_MARGIN`] here, or the report exits non-zero.
//! 12. **sustained_throughput** — the sharded week-scale driver
//!     (`p2pmpi_bench::shard`, the `week_sweep` binary): the paper day
//!     tiled across seven days and replayed over [`SUSTAINED_SHARDS`]
//!     site-aligned shard timelines, parallel versus the bit-identical
//!     single-thread driver.  Records sustained events/s, jobs/s, the
//!     wall-clock speedup and the machine's hardware-thread count.  The
//!     speedup gate is architecture-aware: with at least two hardware
//!     threads the parallel driver must reach
//!     [`SUSTAINED_PARALLEL_EFFICIENCY`] of the effective shard count
//!     (`min(shards, hw_threads)`); on a single hardware thread — where no
//!     speedup is physically available — the gate only bounds the
//!     thread/barrier overhead via [`SUSTAINED_SINGLE_THREAD_FLOOR`].
//!     Full runs additionally compare sustained events/s against the
//!     `previous` trajectory block of the existing report and **exit
//!     non-zero** on a drop of more than [`SUSTAINED_DROP_LIMIT`].
//! 13. **online_placement** — the day sweep's `searched` booking strategy
//!     (`StrategyKind::Searched` through `SweepCore`): every arrival
//!     re-runs the annealing search over the grid's current free cores,
//!     reusing one pooled warm `PlacementCost` + Fenwick free-slot index
//!     per kernel shape via `rebase` instead of rebuilding
//!     (`p2pmpi_bench::search::SearchContext`).  Four relative gates, all
//!     **exit non-zero**: in the steady-state churn benchmark (a few whole
//!     hosts change hands between consecutive arrivals of the day-mix
//!     shapes) the warm per-arrival prepare must be at least
//!     [`ONLINE_WARM_PREPARE_SPEEDUP_MIN`]× cheaper than the cold
//!     per-arrival build with bit-identical warm/cold plans, the warm and
//!     cold searched *days* must produce bit-identical outcomes (the
//!     rebase exactness contract of `p2pmpi_mpi::model` under the bursty
//!     day's wholesale-heavy churn), and the searched compressed day's
//!     mean job makespan must beat the best fixed strategy by at least
//!     [`ONLINE_DAY_IMPROVEMENT_MIN`].  The day's own amortized prepare
//!     numbers are reported as diagnostics (the bursty day displaces most
//!     ranks on most arrivals, capping the warm prepare at the rebuild
//!     cost — see [`ONLINE_WARM_PREPARE_SPEEDUP_MIN`]).  Full runs
//!     additionally hold the searched day inside
//!     [`ONLINE_DAY_WALL_BUDGET_S`] of wall time.
//!
//! Usage:
//! `cargo run --release -p p2pmpi-bench --bin perf_report [out.json] [--seed-allocate-ns N] [--test]`
//!
//! `--test` runs only the queue-sensitive sections (6–7, 11), the
//! placement-search, is-search and online-placement sections (8–9, 13) at
//! reduced scale, the scenario matrix (10) and the sustained
//! sharded-throughput section (12) at its CI-smoke scale, with the same
//! *relative* gates (ladder-vs-calendar on the skewed trace, sweep default
//! within noise of the best, allocation-free steady state, delta-vs-replay
//! speedups, ring cache ceiling and Uniform savings, search quality, the
//! warm-prepare speedup and warm==cold exactness, the searched-day
//! improvement, every scenario verdict, the architecture-aware shard
//! speedup) — the CI smoke.
//! Machine-absolute gates (the analytical-day baseline, the search wall
//! budgets, the sustained-trajectory drop limit) only apply to the full
//! run, and `--test` never writes the JSON report.
//!
//! Each JSON section carries a `"previous"` block holding the prior
//! report's headline numbers for that section (string-scanned from the
//! existing out file — the workspace deliberately vendors no JSON parser —
//! or `null` on the first run), so the committed report is a perf
//! *trajectory*, not just a snapshot.
//!
//! Since the alive-peer fast path landed in `Overlay::rs_send`, the warm
//! brokering path arms no timeout events; the `timeout_timeline` sections
//! pin the fast path **off** so they keep measuring the armed machinery
//! they exist for, and `allocate_warm` reports the µs/job the fast path
//! reclaims on the warm single-job path.
//!
//! The seed baseline defaults to the median of five runs of the seed tree
//! (commit `fa2eb37`, rebuilt with this workspace's manifests and vendored
//! deps, same machine) driving the identical warm 100-process concentrate
//! workload.  To re-measure it: check out the seed commit in a worktree,
//! copy in `Cargo.toml`, `crates/*/Cargo.toml` and `vendor/`, add a driver
//! that loops `CoAllocator::allocate` on `grid5000_topology()` with a
//! disabled tracer, and pass its ns/job via `--seed-allocate-ns`.

use p2pmpi_bench::experiments::{
    modeled_kernel_times, run_kernel_once, synthetic_placement, Fig4Kernel, Fig4Settings,
};
use p2pmpi_bench::scenario::{run_matrix, ScenarioParams, ScenarioVerdict, ALL_SCENARIOS};
use p2pmpi_bench::search::{
    kernel_schedule, placement_rank_hosts, search_placement, OnlineSearchParams, OnlineSearchStats,
    SearchContext, SearchParams, SearchReport,
};
use p2pmpi_bench::shard::{run_shard_sweep, ShardSweepConfig};
use p2pmpi_bench::workload::{
    run_day_sweep, DayProfile, DaySweepConfig, DaySweepResult, PoissonArrivals,
};
use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::capacity::host_capacities;
use p2pmpi_grid5000::sites::{scaled_table1, skewed_table1};
use p2pmpi_grid5000::testbed::{grid5000_testbed, topology_from_specs, Grid5000Testbed};
use p2pmpi_mpi::model::{Move, PlacementCost};
use p2pmpi_simgrid::compute::ComputeModel;
use p2pmpi_simgrid::event::{EventQueue, QueueKind};
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::rngutil::seeded;
use p2pmpi_simgrid::time::SimTime;
use p2pmpi_simgrid::topology::HostId;
use rand::Rng;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const RANKING_REPS: usize = 2_000;
const ALLOC_JOBS: usize = 400;
const SWEEP_JOBS: usize = 1_000;

/// Median warm-allocate cost of the seed tree (ns/job, tracing disabled) for
/// the same workload; see the module docs for how to re-measure.
const SEED_ALLOCATE_NS_PER_JOB: f64 = 65_556.0;

/// Pending-event population held during the event-engine churn.
const ENGINE_POPULATION: usize = 10_000;
/// Pop-push cycles measured per event-engine variant.
const ENGINE_CHURN: usize = 300_000;

/// Maximum relative |modeled − executed| / executed divergence tolerated for
/// EP.  EP's communication is data-independent, so the model replays the
/// executed clock arithmetic exactly; anything above float-noise level means
/// the model's schedule has drifted from `Comm`'s.
const EP_DIVERGENCE_TOLERANCE: f64 = 1e-9;
/// Tolerance for IS, whose alltoallv key-redistribution volumes the model
/// approximates as perfectly balanced (see `p2pmpi_nas::is::is_model`).  The
/// documented bound is 10%, deliberately loose; the divergence observed at
/// this report's IS@32 / divisor-64 point is ~3e-5 (0.003%), because the
/// hump-shaped key distribution redistributes almost uniformly.
const IS_DIVERGENCE_TOLERANCE: f64 = 0.10;

fn ns_per_iter(total_ns: u128, iters: usize) -> f64 {
    total_ns as f64 / iters.max(1) as f64
}

/// One full job submission, completed immediately so the next job finds the
/// gatekeepers free.  Returns the number of booked hosts.
fn submit_one(tb: &mut Grid5000Testbed, allocator: &CoAllocator, request: &JobRequest) -> usize {
    let report = allocator.allocate(&mut tb.overlay, tb.submitter, request);
    if let Ok(alloc) = &report.outcome {
        for h in &alloc.hosts {
            tb.overlay.complete_job(h.peer, report.key);
        }
    }
    report.booked
}

fn measure_ranking(tb: &Grid5000Testbed) -> (f64, f64) {
    let cache = &tb.overlay.node(tb.submitter).cache;

    let start = Instant::now();
    for _ in 0..RANKING_REPS {
        // The seed's booking order: collect every entry, sort, materialize.
        black_box(cache.sorted_by_latency_naive().len());
    }
    let naive_ns = ns_per_iter(start.elapsed().as_nanos(), RANKING_REPS);

    let start = Instant::now();
    for _ in 0..RANKING_REPS {
        // The incremental index: walk, no sort, no allocation.
        black_box(cache.ranking_iter().fold(0usize, |acc, p| acc + p.0));
    }
    let incremental_ns = ns_per_iter(start.elapsed().as_nanos(), RANKING_REPS);

    (naive_ns, incremental_ns)
}

/// Returns (tracing-off ns/job with the alive-peer fast path, tracing-on
/// ns/job, tracing-off ns/job with every reservation arming its timeout).
fn measure_allocate(tb: &mut Grid5000Testbed) -> (f64, f64, f64) {
    let allocator = CoAllocator::new();
    let request = JobRequest::new(100, StrategyKind::Concentrate, "hostname");

    // Warm up scratch buffers and caches.
    for _ in 0..10 {
        submit_one(tb, &allocator, &request);
    }

    tb.overlay.tracer().set_enabled(false);
    let start = Instant::now();
    for _ in 0..ALLOC_JOBS {
        submit_one(tb, &allocator, &request);
    }
    let off_ns = ns_per_iter(start.elapsed().as_nanos(), ALLOC_JOBS);

    // The armed path: what the same warm jobs cost when every reservation
    // parks (and then cancels) a timeout event — the µs/job the alive-peer
    // fast path reclaims.
    tb.overlay.set_rs_timeout_fast_path(false);
    for _ in 0..10 {
        submit_one(tb, &allocator, &request);
    }
    let start = Instant::now();
    for _ in 0..ALLOC_JOBS {
        submit_one(tb, &allocator, &request);
    }
    let armed_ns = ns_per_iter(start.elapsed().as_nanos(), ALLOC_JOBS);
    tb.overlay.set_rs_timeout_fast_path(true);

    tb.overlay.tracer().set_enabled(true);
    let start = Instant::now();
    for _ in 0..ALLOC_JOBS {
        submit_one(tb, &allocator, &request);
    }
    let on_ns = ns_per_iter(start.elapsed().as_nanos(), ALLOC_JOBS);
    tb.overlay.tracer().clear();
    tb.overlay.tracer().set_enabled(false);

    (off_ns, on_ns, armed_ns)
}

/// The machine's hardware-thread count, recorded next to every best-of
/// wall-clock trajectory number so points from different machines stay
/// distinguishable.
fn hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Best-of-`rounds` Poisson sweep: each round continues the same arrival
/// process on the shared warm testbed, so the rounds measure identical
/// steady-state work and the minimum wall time strips scheduler noise —
/// the same discipline `sustained_throughput` uses.
fn measure_sweep(tb: &mut Grid5000Testbed, rounds: usize) -> (f64, f64) {
    let allocator = CoAllocator::new();
    let request = JobRequest::new(100, StrategyKind::Concentrate, "hostname");
    let mut arrivals = PoissonArrivals::new(1.0 / 30.0, 23);
    tb.overlay.tracer().set_enabled(false);
    let mut best_wall = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..SWEEP_JOBS {
            let gap = arrivals.next_gap();
            tb.overlay.advance(gap);
            submit_one(tb, &allocator, &request);
        }
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
    }
    (best_wall * 1e3, SWEEP_JOBS as f64 / best_wall)
}

/// One schedulable action for the engine benches, matching
/// `p2pmpi_simgrid::engine::Action`'s shape (a boxed `FnOnce`).
type BenchAction = Box<dyn FnOnce() -> u64>;

/// The seed tree's event queue, reconstructed as the baseline: the boxed
/// closure lives *inside* the heap entry, so every sift moves a fat entry
/// and the heap buffer is the only storage.
struct SeedEntry {
    time: SimTime,
    seq: u64,
    payload: BenchAction,
}

impl PartialEq for SeedEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for SeedEntry {}
impl PartialOrd for SeedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SeedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Steady-state churn: hold `ENGINE_POPULATION` pending events, then pop the
/// earliest and push a replacement `ENGINE_CHURN` times (the hold-and-churn
/// pattern of a periodic-behaviour simulation).  Returns events/s.
/// Required arena-binary-heap throughput as a fraction of the seed's
/// boxed-closure heap.  The packed `(time << 64) | seq` ticket key closed
/// most of the slab-indirection gap (the heap sifts now compare one `u128`
/// instead of two fields behind a slab lookup), so the binary-heap
/// configuration must stay within 10% of the baseline; the calendar and
/// ladder — the configurations the arena store exists for — are gated at
/// parity and above separately.
const ARENA_HEAP_VS_BOXED_MIN: f64 = 0.9;

fn measure_engine_events_per_sec(variant: &str) -> f64 {
    let mut rng = seeded(0xE4E47);
    let mut gap = move || SimTime::from_nanos(rng.gen_range(1u64..2_000_000));
    let action = |i: u64| -> BenchAction { Box::new(move || i) };

    let mut sum = 0u64;
    let start;
    match variant {
        "boxed_heap" => {
            let mut heap: BinaryHeap<SeedEntry> = BinaryHeap::new();
            let mut seq = 0u64;
            let push = |heap: &mut BinaryHeap<SeedEntry>, time: SimTime, seq: &mut u64| {
                heap.push(SeedEntry {
                    time,
                    seq: *seq,
                    payload: action(*seq),
                });
                *seq += 1;
            };
            for _ in 0..ENGINE_POPULATION {
                let t = gap();
                push(&mut heap, t, &mut seq);
            }
            start = Instant::now();
            for _ in 0..ENGINE_CHURN {
                let e = heap.pop().expect("population never drains");
                sum += (e.payload)();
                let t = e.time + gap().saturating_since(SimTime::ZERO);
                push(&mut heap, t, &mut seq);
            }
        }
        kind => {
            let kind = match kind {
                "arena_heap" => QueueKind::BinaryHeap,
                "arena_calendar" => QueueKind::Calendar,
                "arena_ladder" => QueueKind::Ladder,
                other => panic!("unknown event-engine bench variant {other:?}"),
            };
            let mut q: EventQueue<BenchAction> =
                EventQueue::with_capacity_and_kind(ENGINE_POPULATION, kind);
            for i in 0..ENGINE_POPULATION {
                q.push(gap(), action(i as u64));
            }
            start = Instant::now();
            for i in 0..ENGINE_CHURN {
                let e = q.pop().expect("population never drains");
                sum += (e.payload)();
                let t = e.time + gap().saturating_since(SimTime::ZERO);
                q.push(t, action(i as u64));
            }
        }
    }
    black_box(sum);
    ENGINE_CHURN as f64 / start.elapsed().as_secs_f64()
}

/// Best-of-N interleaved rounds per variant: the engine bench runs in a
/// shared environment where a single shot can be perturbed by scheduling
/// noise, and interleaving keeps slow phases from biasing one variant.
fn measure_engine_all(rounds: usize) -> (f64, f64, f64, f64) {
    let variants = ["boxed_heap", "arena_heap", "arena_calendar", "arena_ladder"];
    let mut best = [0f64; 4];
    for _ in 0..rounds {
        for (i, v) in variants.iter().enumerate() {
            best[i] = best[i].max(measure_engine_events_per_sec(v));
        }
    }
    (best[0], best[1], best[2], best[3])
}

/// Executed-vs-modeled makespans of one Figure 4 point on the same
/// co-allocated placement; returns (executed_s, modeled_s, divergence).
fn measure_agreement(kernel: Fig4Kernel, n: u32, settings: &Fig4Settings) -> (f64, f64, f64) {
    let strategy = StrategyKind::Concentrate;
    let executed = run_kernel_once(kernel, strategy, n, settings);
    let modeled = run_kernel_once(kernel, strategy, n, &settings.modeled());
    assert!(
        executed.verified,
        "{kernel:?} executed run failed to verify"
    );
    let e = executed.makespan.as_secs_f64();
    let m = modeled.makespan.as_secs_f64();
    (e, m, (m - e).abs() / e)
}

/// Wall-clock of a modeled sweep point at `ranks`; returns (virtual_s, wall_ms).
fn measure_modeled_sweep(kernel: Fig4Kernel, ranks: u32, settings: &Fig4Settings) -> (f64, f64) {
    let start = Instant::now();
    let points = modeled_kernel_times(kernel, StrategyKind::Spread, &[ranks], settings, None);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (points[0].makespan.as_secs_f64(), wall_ms)
}

/// Noise margin for the sweep-default queue gates: the ladder must not lose
/// to the best alternative by more than this on the standard (non-churn)
/// traces.  The binary heap genuinely runs ~5–15% ahead there — O(log n)
/// with tiny constants is hard to beat while the pending population is only
/// a few hundred events — and shared-runner scheduling noise adds several
/// percent more, so the margin is deliberately generous: its job is to
/// catch *structural* regressions of the ladder (which present as 2×+, the
/// way the calendar degrades on the skewed trace), not to relitigate the
/// small-population constant factors documented in `simgrid::event`.
const SWEEP_ENGINE_NOISE_MARGIN: f64 = 0.25;

/// Wall time of the *analytical-timeout* full `paper_day()` concentrate
/// sweep — the same trace `timeout_timeline` replays, measured at commit
/// `b805ba5` (the last tree where `rs_request` charged `rs_timeout`
/// analytically off-timeline and the timeline carried ~19k events instead
/// of ~1.6M), best of 3 on this machine with the calendar queue, its best
/// configuration at the time.  Putting every reservation's timeout on the
/// timeline must not cost more than [`TIMEOUT_TIMELINE_LIMIT`]× this.
const ANALYTICAL_DAY_WALL_MS: f64 = 1085.0;

/// Allowed slowdown of the event-driven full day vs the analytical
/// baseline, on the best queue.
const TIMEOUT_TIMELINE_LIMIT: f64 = 1.5;

/// Required ladder win over the calendar on the skewed dead-peer trace:
/// the report fails unless `ladder_wall < calendar_wall × (1 − margin)`.
/// The observed gap is ~2× (the calendar's sorted bucket inserts degrade
/// toward O(cluster) on the timeout cluster); 10% keeps the gate far from
/// noise while still catching any real regression of the ladder's O(1)
/// amortised behaviour.
const LADDER_VS_CALENDAR_MARGIN: f64 = 0.10;

const QUEUE_KINDS: [QueueKind; 3] = [
    QueueKind::BinaryHeap,
    QueueKind::Calendar,
    QueueKind::Ladder,
];

/// Best-of-N interleaved wall times of `cfg` per queue kind (heap,
/// calendar, ladder order); returns the walls and the last ladder result
/// (outcomes are bit-identical across kinds — pinned by
/// `crates/bench/tests/day_sweep.rs` — so one result describes all three).
fn measure_three_way(cfg: &DaySweepConfig, rounds: usize) -> ([f64; 3], DaySweepResult) {
    let mut best = [f64::INFINITY; 3];
    let mut last = None;
    for _ in 0..rounds {
        for (i, kind) in QUEUE_KINDS.iter().enumerate() {
            let mut cfg = cfg.clone();
            cfg.queue = *kind;
            let start = Instant::now();
            let result = run_day_sweep(&cfg);
            best[i] = best[i].min(start.elapsed().as_secs_f64() * 1e3);
            if *kind == QueueKind::Ladder {
                last = Some(result);
            }
        }
    }
    (best, last.expect("at least one round ran"))
}

/// The reduced day trace the sweep-engine comparison replays: the paper-day
/// burst shape compressed to ~2 h virtual at ~1.8k jobs.
fn sweep_engine_config() -> DaySweepConfig {
    let mut cfg = DaySweepConfig::new(StrategyKind::Concentrate).compress(12.0);
    cfg.profile = cfg.profile.scaled(1.8 / 21.7); // ~1.8k of the day's ~21.7k jobs
    cfg
}

/// The full-scale timeout-timeline trace (the whole paper day), or its
/// reduced `--test` shape (~5.4k jobs in one virtual hour).
fn timeout_timeline_config(test_mode: bool) -> DaySweepConfig {
    let mut cfg = DaySweepConfig::new(StrategyKind::Concentrate);
    // This section measures the armed per-reservation timeout machinery, so
    // the alive-peer fast path (which would skip nearly every arm on the
    // warm day) is pinned off.
    cfg.rs_timeout_fast_path = false;
    if test_mode {
        cfg = cfg.compress(24.0);
        cfg.profile = cfg.profile.scaled(0.25);
    }
    cfg
}

/// The skewed dead-peer trace: the full churn-heavy day compressed 12× (so
/// thousands of 2 s timeout windows overlap millisecond replies and
/// hour-scale completions), or its reduced `--test` shape.
fn skewed_trace_config(test_mode: bool) -> DaySweepConfig {
    let mut cfg = DaySweepConfig::dead_peer_day(StrategyKind::Concentrate);
    if test_mode {
        cfg = cfg.compress(24.0);
        cfg.profile = cfg.profile.scaled(0.25);
    } else {
        cfg = cfg.compress(12.0);
    }
    cfg
}

/// Everything the queue-sensitive sections (6–8) measure; gathered the same
/// way in full and `--test` runs so the relative gates are shared.
struct QueueSections {
    sweep_walls: [f64; 3],
    sweep_jobs: usize,
    timeline_walls: [f64; 3],
    timeline: DaySweepResult,
    skewed_walls: [f64; 3],
    skewed: DaySweepResult,
}

fn measure_queue_sections(test_mode: bool, rounds: usize) -> QueueSections {
    eprintln!("measuring day-trace sweep engine, heap vs calendar vs ladder (best of {rounds} interleaved rounds)...");
    let (sweep_walls, sweep_result) = measure_three_way(&sweep_engine_config(), rounds);
    eprintln!(
        "measuring timeout timeline ({} paper day, ~{:.0} jobs, every reservation's timeout on the timeline)...",
        if test_mode { "reduced" } else { "FULL" },
        timeout_timeline_config(test_mode).profile.expected_jobs(),
    );
    let (timeline_walls, timeline) = measure_three_way(&timeout_timeline_config(test_mode), rounds);
    eprintln!(
        "measuring skewed dead-peer trace (flapping churn, compressed; ladder must beat calendar)..."
    );
    let (skewed_walls, skewed) = measure_three_way(&skewed_trace_config(test_mode), rounds);
    QueueSections {
        sweep_walls,
        sweep_jobs: sweep_result.submitted,
        timeline_walls,
        timeline,
        skewed_walls,
        skewed,
    }
}

/// The relative gates shared by full and `--test` runs.  Returns true if
/// anything drifted (the caller exits non-zero).
fn check_queue_gates(q: &QueueSections) -> bool {
    let mut drifted = false;
    let [_, skewed_cal, skewed_lad] = q.skewed_walls;
    if skewed_lad > skewed_cal * (1.0 - LADDER_VS_CALENDAR_MARGIN) {
        eprintln!(
            "FAIL: ladder queue ({skewed_lad:.1} ms) must beat the calendar ({skewed_cal:.1} ms) \
             by more than {LADDER_VS_CALENDAR_MARGIN:.0}% on the skewed dead-peer trace",
            LADDER_VS_CALENDAR_MARGIN = LADDER_VS_CALENDAR_MARGIN * 100.0
        );
        drifted = true;
    }
    let sweep_best = q.sweep_walls.iter().cloned().fold(f64::INFINITY, f64::min);
    let sweep_ladder = q.sweep_walls[2];
    if sweep_ladder > sweep_best * (1.0 + SWEEP_ENGINE_NOISE_MARGIN) {
        eprintln!(
            "FAIL: the sweep default (ladder, {sweep_ladder:.1} ms) lost to the best queue \
             ({sweep_best:.1} ms) past the {SWEEP_ENGINE_NOISE_MARGIN} noise margin on the day trace"
        );
        drifted = true;
    }
    let timeline_ladder = q.timeline_walls[2];
    let timeline_best = q
        .timeline_walls
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    if timeline_ladder > timeline_best * (1.0 + SWEEP_ENGINE_NOISE_MARGIN) {
        eprintln!(
            "FAIL: the sweep default (ladder, {timeline_ladder:.1} ms) lost to the best queue \
             ({timeline_best:.1} ms) past the {SWEEP_ENGINE_NOISE_MARGIN} noise margin on the timeout timeline"
        );
        drifted = true;
    }
    for (name, result) in [
        ("timeout timeline", &q.timeline),
        ("skewed trace", &q.skewed),
    ] {
        if !result.steady_state_alloc_free() {
            eprintln!(
                "FAIL: {name} brokering re-allocated past the mid-trace high-water mark \
                 (events {} -> {}, scratch {} -> {})",
                result.events_capacity_mid,
                result.events_capacity_end,
                result.rs_scratch_capacity_mid,
                result.rs_scratch_capacity_end
            );
            drifted = true;
        }
    }
    drifted
}

// ---------------------------------------------------------------------------
// scenario_matrix
// ---------------------------------------------------------------------------

/// Runs the fault-injection scenario matrix at the CI scale (the same
/// configuration `scenario_runner --all --compress 24` replays) and returns
/// every verdict with the wall time of the whole matrix.
fn measure_scenario_matrix() -> (Vec<ScenarioVerdict>, f64) {
    eprintln!(
        "running the fault-injection scenario matrix ({} scenarios, compress 24)...",
        ALL_SCENARIOS.len()
    );
    let params = ScenarioParams {
        compress: 24.0,
        ..ScenarioParams::default()
    };
    let start = Instant::now();
    let verdicts = run_matrix(&params);
    (verdicts, start.elapsed().as_secs_f64())
}

/// The graceful-degradation gates: every scenario verdict must pass.
/// Returns true if anything drifted.
fn check_scenario_gates(verdicts: &[ScenarioVerdict]) -> bool {
    let mut drifted = false;
    for v in verdicts {
        if v.passed() {
            continue;
        }
        drifted = true;
        for check in v.checks.iter().filter(|c| !c.passed) {
            eprintln!(
                "FAIL: scenario {} failed its {} criterion: {}",
                v.scenario.name(),
                check.name,
                check.detail
            );
        }
    }
    drifted
}

/// Allowed relative growth of a scenario's recovery time between
/// consecutive reports before the trajectory gate fails.
const RECOVERY_REGRESSION_LIMIT: f64 = 0.20;

/// Absolute slack on the recovery trend (seconds).  Recovery is read off
/// the binned utilisation timeline, so at the CI scale it is quantized to
/// 12.5 s bins — without at least one bin of slack, a single-bin wobble on
/// a small recovery (25 s → 37.5 s) would trip the 20% gate.
const RECOVERY_TREND_EPSILON_S: f64 = 15.0;

/// The recovery-time trajectory gate: a scenario whose recovery time grew
/// more than [`RECOVERY_REGRESSION_LIMIT`] (plus one bin of slack) over
/// the previous report's fails loudly, even while it still meets its SLO —
/// quiet erosion toward the SLO is exactly what a trend gate is for.
/// Returns true if anything drifted.
fn check_recovery_trend(verdicts: &[ScenarioVerdict], prior: Option<&str>) -> bool {
    let Some(slice) = prior.and_then(|p| section_slice(p, "scenario_matrix")) else {
        return false;
    };
    let mut drifted = false;
    for v in verdicts {
        if v.scenario.recovery_slo_secs().is_none() {
            continue;
        }
        // A never-recovered run already fails its own recovery_observed
        // criterion; the trend gate only judges measured values.
        let Some(now) = v.recovery_secs else { continue };
        let key = format!("{}_recovery_s", v.scenario.name());
        let Some(prev) = scan_f64(slice, &key) else {
            continue;
        };
        let bound = prev * (1.0 + RECOVERY_REGRESSION_LIMIT) + RECOVERY_TREND_EPSILON_S;
        if now > bound {
            eprintln!(
                "FAIL: scenario {} recovery time {now:.1}s regressed past the trend bound \
                 {bound:.1}s (previous report {prev:.1}s + {:.0}% + {RECOVERY_TREND_EPSILON_S}s \
                 quantization slack)",
                v.scenario.name(),
                RECOVERY_REGRESSION_LIMIT * 100.0
            );
            drifted = true;
        }
    }
    drifted
}

// ---------------------------------------------------------------------------
// sustained_throughput
// ---------------------------------------------------------------------------

/// Shard count of the sustained-throughput section — the Table-1 sites
/// partitioned four ways, the `week_sweep --shards 4` configuration.
const SUSTAINED_SHARDS: usize = 4;

/// Required parallel efficiency when the machine can actually run the
/// shards concurrently: with at least two hardware threads the parallel
/// driver must reach this fraction of the effective shard count
/// (`min(shards, hw_threads)`) — at 4 shards on a 4-thread machine that is
/// a 3× floor under the documented 4× target, leaving room for the
/// conservative barriers without letting the scoped-thread plumbing rot.
const SUSTAINED_PARALLEL_EFFICIENCY: f64 = 0.75;

/// Speedup floor on a single hardware thread, where the parallel driver
/// cannot beat the single-thread one and the gate's only job is to bound
/// the thread-spawn and barrier overhead (observed ~0.78× on a 1-thread
/// container; a collapse past this floor means the coordination cost
/// regressed structurally, not that the machine is small).
const SUSTAINED_SINGLE_THREAD_FLOOR: f64 = 0.5;

/// Allowed drop of sustained events/s between consecutive full reports on
/// the same machine; a larger drop fails the report outright.
const SUSTAINED_DROP_LIMIT: f64 = 0.15;

/// The sharded week-shape trace the sustained section replays: the paper
/// day tiled across seven days, compressed 168× so the week's shape fits
/// one virtual hour, at 2% (CI smoke, ~3k jobs) or 10% (full run, ~15k
/// jobs) of the paper's arrival rates — the same configuration the
/// `week_sweep` binary documents as its smoke shape.
fn sustained_config(test_mode: bool) -> ShardSweepConfig {
    let mut base = DaySweepConfig::new(StrategyKind::Spread);
    base.profile = DayProfile::paper_day().repeated(7);
    base = base.compress(168.0);
    base.profile = base.profile.scaled(if test_mode { 0.02 } else { 0.1 });
    ShardSweepConfig::new(base, SUSTAINED_SHARDS)
}

/// Everything the sustained-throughput section records.
struct SustainedSection {
    jobs: usize,
    events: u64,
    barriers: usize,
    cross_submitted: usize,
    cross_succeeded: usize,
    parallel_wall_ms: f64,
    single_thread_wall_ms: f64,
    events_per_sec: f64,
    jobs_per_sec: f64,
    speedup: f64,
    shards: usize,
    hw_threads: usize,
    rate_scale: f64,
}

/// Best-of-N rounds of the week-shape sharded sweep, parallel and
/// single-thread; every round asserts the two drivers stayed bit-identical
/// (the same contract `tests/shard_sweep.rs` pins at reduced scale).
fn measure_sustained(test_mode: bool, rounds: usize) -> SustainedSection {
    let cfg = sustained_config(test_mode);
    let mut seq_cfg = cfg.clone();
    seq_cfg.parallel = false;
    let mut par_wall = f64::INFINITY;
    let mut seq_wall = f64::INFINITY;
    let mut last = None;
    for _ in 0..rounds {
        let par = run_shard_sweep(&cfg);
        let seq = run_shard_sweep(&seq_cfg);
        assert_eq!(
            par.merged.events_processed, seq.merged.events_processed,
            "the parallel and single-thread drivers diverged"
        );
        assert_eq!(
            par.merged.succeeded, seq.merged.succeeded,
            "the parallel and single-thread drivers diverged"
        );
        par_wall = par_wall.min(par.wall.as_secs_f64() * 1e3);
        seq_wall = seq_wall.min(seq.wall.as_secs_f64() * 1e3);
        last = Some(par);
    }
    let par = last.expect("at least one round ran");
    let hw_threads = hw_threads();
    SustainedSection {
        jobs: par.merged.submitted,
        events: par.merged.events_processed,
        barriers: par.barriers,
        cross_submitted: par.cross_submitted,
        cross_succeeded: par.cross_succeeded,
        parallel_wall_ms: par_wall,
        single_thread_wall_ms: seq_wall,
        events_per_sec: par.merged.events_processed as f64 / (par_wall / 1e3).max(1e-9),
        jobs_per_sec: par.merged.submitted as f64 / (par_wall / 1e3).max(1e-9),
        speedup: seq_wall / par_wall.max(1e-9),
        shards: par.per_shard.len(),
        hw_threads,
        rate_scale: if test_mode { 0.02 } else { 0.1 },
    }
}

/// The architecture-aware speedup gate of the sharded driver; returns true
/// if it drifted.
fn check_sustained_gates(s: &SustainedSection) -> bool {
    if s.hw_threads >= 2 {
        let effective = s.shards.min(s.hw_threads) as f64;
        let required = SUSTAINED_PARALLEL_EFFICIENCY * effective;
        if s.speedup < required {
            eprintln!(
                "FAIL: the {}-shard parallel driver reached only {:.2}x over the single-thread \
                 baseline on {} hardware threads; the gate requires {:.2}x \
                 ({SUSTAINED_PARALLEL_EFFICIENCY} x min(shards, hw_threads))",
                s.shards, s.speedup, s.hw_threads, required
            );
            return true;
        }
    } else if s.speedup < SUSTAINED_SINGLE_THREAD_FLOOR {
        eprintln!(
            "FAIL: on a single hardware thread the parallel driver fell to {:.2}x of the \
             single-thread baseline; the thread/barrier overhead floor is \
             {SUSTAINED_SINGLE_THREAD_FLOOR}x",
            s.speedup
        );
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// trajectory
// ---------------------------------------------------------------------------

/// Brace-matched slice of one top-level section of a prior report.  The
/// report's own output is the only input (stable shape, no braces inside
/// its strings), so a real JSON parser — which the workspace deliberately
/// does not vendor — is not needed.
fn section_slice<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\": {{");
    let start = json.find(&needle)? + needle.len() - 1;
    let mut depth = 0usize;
    for (i, b) in json.as_bytes()[start..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// First `"key": <number>` inside a section slice.  Sections emit their
/// `"previous"` block last, so the first occurrence is always the
/// section's own current value.
fn scan_f64(slice: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = slice.find(&needle)? + needle.len();
    let rest = &slice[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The `"previous"` trajectory block of one section: the named headline
/// keys scanned out of the prior report, or `null` when there is no prior
/// report or the section is new.
fn previous_block(prior: Option<&str>, section: &str, keys: &[&str]) -> String {
    let Some(slice) = prior.and_then(|p| section_slice(p, section)) else {
        return "null".to_string();
    };
    let fields: Vec<String> = keys
        .iter()
        .filter_map(|k| scan_f64(slice, k).map(|v| format!(r#""{k}": {v}"#)))
        .collect();
    if fields.is_empty() {
        "null".to_string()
    } else {
        format!("{{ {} }}", fields.join(", "))
    }
}

// ---------------------------------------------------------------------------
// placement_search
// ---------------------------------------------------------------------------

/// Required per-move speedup of delta evaluation over a full model replay
/// (EP at 256 ranks; observed ~10–13×).  EP is the gated kernel because its
/// `max()`-absorbing trees keep the affected set small; IS's ring frontiers
/// propagate more broadly and its ratio is closer to 1 — reported in the
/// docs, not gated.
const PLACEMENT_DELTA_SPEEDUP_MIN: f64 = 5.0;

/// Required improvement of the searched placement over
/// best-of(concentrate, spread) on the heterogeneity-skewed grid
/// (`skewed_table1`); observed ~70%+.
const PLACEMENT_SKEWED_IMPROVEMENT_MIN: f64 = 0.03;

/// Wall budget of the full-scale search shape (EP, 1024 ranks, 10k moves,
/// 4 chains); observed ~1 s, so single digits leaves generous headroom for
/// slower machines.
const PLACEMENT_SEARCH_WALL_BUDGET_S: f64 = 8.0;

/// One standard-grid quality case of the placement-search section.
struct SearchCase {
    kernel: Fig4Kernel,
    ranks: u32,
    report: SearchReport,
}

/// Everything the placement-search section measures.
struct PlacementSearchSection {
    delta_ranks: u32,
    delta_ns_per_move: f64,
    replay_ns: f64,
    delta_speedup: f64,
    avg_delta_ops: f64,
    schedule_ops: usize,
    standard: Vec<SearchCase>,
    skewed: SearchReport,
    skewed_ranks: u32,
    /// Full runs only: (wall seconds, moves) of the 1024-rank budget shape.
    budget: Option<(f64, SearchReport)>,
}

/// Ring-cache byte accounting returned by [`measure_delta_vs_replay`]:
/// the total the evaluator holds plus the `Uniform` specialisation's share
/// and the `PerSrc` bytes those tables would otherwise occupy.
struct RingCacheStats {
    bytes: usize,
    uniform_tables: usize,
    uniform_bytes: usize,
    uniform_per_src_bytes: usize,
}

/// Times delta evaluation (apply + commit of a random move mix) against a
/// full `ModelComm` replay of the same schedule at `ranks` ranks of
/// `kernel`.  Returns `(delta_ns, replay_ns, avg_delta_ops, schedule_ops,
/// ring_cache_stats)`.
fn measure_delta_vs_replay(
    kernel: Fig4Kernel,
    ranks: u32,
    moves: usize,
    replays: usize,
) -> (f64, f64, f64, usize, RingCacheStats) {
    let topology = topology_from_specs(&scaled_table1(
        p2pmpi_grid5000::sites::scale_factor_for_cores(ranks as usize),
    ));
    let settings = Fig4Settings::default().modeled();
    let schedule = Arc::new(kernel_schedule(kernel, &settings, ranks));
    let schedule_ops = schedule.op_count();
    let hosts = placement_rank_hosts(&synthetic_placement(&topology, StrategyKind::Spread, ranks));
    let mut cost = PlacementCost::new(
        schedule,
        hosts,
        host_capacities(&topology),
        NetworkModel::new(topology.clone()),
        ComputeModel::new(topology.clone()),
    );
    let mut rng = seeded(0x5EA7);
    let host_count = topology.host_count();
    let mix: Vec<Move> = (0..moves)
        .map(|_| {
            if rng.gen_range(0u32..2) == 0 {
                Move::Swap {
                    a: rng.gen_range(0..ranks),
                    b: rng.gen_range(0..ranks),
                }
            } else {
                Move::Migrate {
                    rank: rng.gen_range(0..ranks),
                    to: HostId(rng.gen_range(0..host_count)),
                }
            }
        })
        .collect();
    // Warm the caches and branch predictors.
    for mv in mix.iter().take(moves / 10) {
        if cost.apply(*mv).is_ok() {
            cost.undo();
        }
    }
    let mut applied = 0usize;
    let mut delta_ops = 0usize;
    let start = Instant::now();
    for mv in &mix {
        if cost.apply(*mv).is_ok() {
            applied += 1;
            delta_ops += cost.last_delta_ops();
            cost.commit();
        }
    }
    let delta_ns = ns_per_iter(start.elapsed().as_nanos(), applied);
    let start = Instant::now();
    for _ in 0..replays {
        black_box(cost.oracle_cost());
    }
    let replay_ns = ns_per_iter(start.elapsed().as_nanos(), replays);
    let (uniform_tables, uniform_bytes, uniform_per_src_bytes) = cost.uniform_ring_summary();
    (
        delta_ns,
        replay_ns,
        delta_ops as f64 / applied.max(1) as f64,
        schedule_ops,
        RingCacheStats {
            bytes: cost.ring_cache_bytes(),
            uniform_tables,
            uniform_bytes,
            uniform_per_src_bytes,
        },
    )
}

fn measure_placement_search(test_mode: bool) -> PlacementSearchSection {
    let settings = Fig4Settings::default().modeled();
    // The ≥5x gate is defined at 256 ranks in both modes (only the number
    // of timed moves shrinks under --test).
    let delta_ranks = 256;
    eprintln!("measuring placement-search delta evaluation vs full replay (EP@{delta_ranks})...");
    let (timed_moves, replays) = if test_mode { (600, 60) } else { (2_000, 200) };
    let (delta_ns_per_move, replay_ns, avg_delta_ops, schedule_ops, _) =
        measure_delta_vs_replay(Fig4Kernel::Ep, delta_ranks, timed_moves, replays);

    let standard_cases: &[(Fig4Kernel, u32, u64, u32)] = if test_mode {
        &[(Fig4Kernel::Ep, 64, 800, 2), (Fig4Kernel::Is, 16, 300, 2)]
    } else {
        &[
            (Fig4Kernel::Ep, 256, 4_000, 4),
            (Fig4Kernel::Ep, 1024, 4_000, 4),
            (Fig4Kernel::Is, 32, 800, 2),
        ]
    };
    let mut standard = Vec::new();
    for &(kernel, ranks, moves, chains) in standard_cases {
        eprintln!("measuring placement search quality ({kernel:?}@{ranks}, standard grid)...");
        let topology = topology_from_specs(&scaled_table1(
            p2pmpi_grid5000::sites::scale_factor_for_cores(ranks as usize),
        ));
        let report = search_placement(
            &topology,
            kernel,
            ranks,
            &settings,
            &SearchParams {
                moves,
                chains,
                seed: 2008,
            },
        );
        standard.push(SearchCase {
            kernel,
            ranks,
            report,
        });
    }

    let (skewed_ranks, skewed_moves, skewed_chains) = if test_mode {
        (64, 1_500, 2)
    } else {
        (256, 4_000, 4)
    };
    eprintln!("measuring placement search on the heterogeneity-skewed grid (EP@{skewed_ranks})...");
    let topology = topology_from_specs(&skewed_table1(
        p2pmpi_grid5000::sites::scale_factor_for_cores(skewed_ranks as usize),
    ));
    let skewed = search_placement(
        &topology,
        Fig4Kernel::Ep,
        skewed_ranks,
        &settings,
        &SearchParams {
            moves: skewed_moves,
            chains: skewed_chains,
            seed: 2008,
        },
    );

    let budget = if test_mode {
        None
    } else {
        eprintln!("measuring the wall budget shape (EP@1024, 10k moves, 4 chains)...");
        let topology = topology_from_specs(&scaled_table1(1));
        let start = Instant::now();
        let report = search_placement(
            &topology,
            Fig4Kernel::Ep,
            1024,
            &settings,
            &SearchParams {
                moves: 10_000,
                chains: 4,
                seed: 2008,
            },
        );
        Some((start.elapsed().as_secs_f64(), report))
    };

    PlacementSearchSection {
        delta_ranks,
        delta_ns_per_move,
        replay_ns,
        delta_speedup: replay_ns / delta_ns_per_move.max(1.0),
        avg_delta_ops,
        schedule_ops,
        standard,
        skewed,
        skewed_ranks,
        budget,
    }
}

/// The placement-search gates; returns true if anything failed.
fn check_placement_search_gates(p: &PlacementSearchSection) -> bool {
    let mut drifted = false;
    if p.delta_speedup < PLACEMENT_DELTA_SPEEDUP_MIN {
        eprintln!(
            "FAIL: delta evaluation ({:.0} ns/move) is only {:.1}x cheaper than a full replay \
             ({:.0} ns) at EP@{} — the gate requires {PLACEMENT_DELTA_SPEEDUP_MIN}x",
            p.delta_ns_per_move, p.delta_speedup, p.replay_ns, p.delta_ranks
        );
        drifted = true;
    }
    for case in &p.standard {
        let report = &case.report;
        if report.best > report.baseline() {
            eprintln!(
                "FAIL: searched placement ({:?}@{}) is worse than best-of(concentrate, spread): \
                 {:.6}s vs {:.6}s",
                case.kernel,
                case.ranks,
                report.best.as_secs_f64(),
                report.baseline().as_secs_f64()
            );
            drifted = true;
        }
    }
    if p.skewed.improvement() <= PLACEMENT_SKEWED_IMPROVEMENT_MIN {
        eprintln!(
            "FAIL: on the skewed grid (EP@{}) the search is only {:.2}% better than \
             best-of(concentrate, spread); the gate requires more than {:.0}%",
            p.skewed_ranks,
            p.skewed.improvement() * 100.0,
            PLACEMENT_SKEWED_IMPROVEMENT_MIN * 100.0
        );
        drifted = true;
    }
    if let Some((wall_s, _)) = p.budget {
        if wall_s > PLACEMENT_SEARCH_WALL_BUDGET_S {
            eprintln!(
                "FAIL: the EP@1024 / 10k-move / 4-chain search took {wall_s:.2}s; the documented \
                 budget is {PLACEMENT_SEARCH_WALL_BUDGET_S}s"
            );
            drifted = true;
        }
    }
    drifted
}

// ---------------------------------------------------------------------------
// is_search
// ---------------------------------------------------------------------------

/// Required per-move speedup of delta evaluation over a full `ModelComm`
/// replay on the *ring-dominated* IS schedule at 1024 ranks.  A move still
/// re-runs every ring's O(ranks²) wavefront, so this is a constant-factor
/// gate, not an asymptotic one: the pooled integer transfer tables must
/// keep beating the replay's per-receive float `transfer_time` + stats
/// accounting by a healthy margin (observed well above the 5× floor).
const IS_SEARCH_DELTA_SPEEDUP_MIN: f64 = 5.0;

/// Ceiling on [`PlacementCost::ring_cache_bytes`] at IS@1024.  The pooled
/// tables are O(ranks · sites); the per-(step, rank) rows they replaced
/// were O(steps · ranks²) ≈ 168 MB at this shape.
const IS_SEARCH_RING_CACHE_BYTES_MAX: usize = 1 << 20;

/// Floor on the compression of the move-invariant `Uniform` site×site ring
/// tables versus the journaled `PerSrc` layout they would otherwise occupy
/// (a `tsame` entry plus a site row per rank).  IS's sample alltoall is
/// uniform, so at least one pooled table must hold the form — losing it
/// (or its compression) regresses both the bytes and the no-journaling
/// move fast path the specialisation buys.
const IS_SEARCH_UNIFORM_SAVINGS_MIN: f64 = 8.0;

/// Wall budget of the full-scale IS search shape (1024 ranks, 400 moves,
/// 2 chains).  Ring moves are orders of magnitude costlier than EP's, so
/// the shape is smaller than EP's 10k-move budget run; the point of the
/// gate is that a searched `fig4_is` point at 1024 ranks is *minutes*, not
/// hours.
const IS_SEARCH_WALL_BUDGET_S: f64 = 90.0;

/// Everything the IS-at-scale search section measures.
struct IsSearchSection {
    ranks: u32,
    delta_ns_per_move: f64,
    replay_ns: f64,
    delta_speedup: f64,
    avg_delta_ops: f64,
    schedule_ops: usize,
    ring_cache_bytes: usize,
    uniform_tables: usize,
    uniform_bytes: usize,
    uniform_per_src_bytes: usize,
    search: SearchReport,
    search_moves: u64,
    search_chains: u32,
    search_wall_s: f64,
    test_mode: bool,
}

fn measure_is_search(test_mode: bool) -> IsSearchSection {
    let settings = Fig4Settings::default().modeled();
    // The tentpole gate is defined at 1024 ranks; --test shrinks the rank
    // count (the ratio is a constant-factor property of the wavefront, so
    // it holds at the reduced scale too) to keep the CI smoke fast.
    let (ranks, timed_moves, replays) = if test_mode {
        (128, 60, 20)
    } else {
        (1024, 30, 8)
    };
    eprintln!("measuring IS delta evaluation vs full replay (IS@{ranks})...");
    let (delta_ns_per_move, replay_ns, avg_delta_ops, schedule_ops, ring) =
        measure_delta_vs_replay(Fig4Kernel::Is, ranks, timed_moves, replays);

    let (search_moves, search_chains) = if test_mode { (120, 2) } else { (400, 2) };
    eprintln!("measuring IS search at scale (IS@{ranks}, {search_moves} moves x {search_chains} chains)...");
    let topology = topology_from_specs(&scaled_table1(
        p2pmpi_grid5000::sites::scale_factor_for_cores(ranks as usize),
    ));
    let start = Instant::now();
    let search = search_placement(
        &topology,
        Fig4Kernel::Is,
        ranks,
        &settings,
        &SearchParams {
            moves: search_moves,
            chains: search_chains,
            seed: 2008,
        },
    );
    let search_wall_s = start.elapsed().as_secs_f64();

    IsSearchSection {
        ranks,
        delta_ns_per_move,
        replay_ns,
        delta_speedup: replay_ns / delta_ns_per_move.max(1.0),
        avg_delta_ops,
        schedule_ops,
        ring_cache_bytes: ring.bytes,
        uniform_tables: ring.uniform_tables,
        uniform_bytes: ring.uniform_bytes,
        uniform_per_src_bytes: ring.uniform_per_src_bytes,
        search,
        search_moves,
        search_chains,
        search_wall_s,
        test_mode,
    }
}

/// The IS-at-scale gates; returns true if anything failed.
fn check_is_search_gates(s: &IsSearchSection) -> bool {
    let mut drifted = false;
    if s.delta_speedup < IS_SEARCH_DELTA_SPEEDUP_MIN {
        eprintln!(
            "FAIL: IS@{} delta evaluation ({:.0} ns/move) is only {:.1}x cheaper than a full \
             replay ({:.0} ns) — the gate requires {IS_SEARCH_DELTA_SPEEDUP_MIN}x",
            s.ranks, s.delta_ns_per_move, s.delta_speedup, s.replay_ns
        );
        drifted = true;
    }
    if s.ring_cache_bytes > IS_SEARCH_RING_CACHE_BYTES_MAX {
        eprintln!(
            "FAIL: the evaluator's ring caches hold {} bytes at IS@{}; the ceiling is {} \
             (the compact-table contract of p2pmpi_mpi::model)",
            s.ring_cache_bytes, s.ranks, IS_SEARCH_RING_CACHE_BYTES_MAX
        );
        drifted = true;
    }
    if s.uniform_tables == 0
        || (s.uniform_per_src_bytes as f64) < IS_SEARCH_UNIFORM_SAVINGS_MIN * s.uniform_bytes as f64
    {
        eprintln!(
            "FAIL: IS@{} holds {} Uniform ring tables at {} bytes (PerSrc equivalent {} bytes); \
             the move-invariant site x site specialisation must exist and save at least \
             {IS_SEARCH_UNIFORM_SAVINGS_MIN}x",
            s.ranks, s.uniform_tables, s.uniform_bytes, s.uniform_per_src_bytes
        );
        drifted = true;
    }
    if s.search.best > s.search.baseline() {
        eprintln!(
            "FAIL: searched IS@{} placement is worse than best-of(concentrate, spread): \
             {:.6}s vs {:.6}s",
            s.ranks,
            s.search.best.as_secs_f64(),
            s.search.baseline().as_secs_f64()
        );
        drifted = true;
    }
    // The wall budget is machine-absolute, so full runs only.
    if !s.test_mode && s.search_wall_s > IS_SEARCH_WALL_BUDGET_S {
        eprintln!(
            "FAIL: the IS@{} / {}-move / {}-chain search took {:.2}s; the documented budget \
             is {IS_SEARCH_WALL_BUDGET_S}s",
            s.ranks, s.search_moves, s.search_chains, s.search_wall_s
        );
        drifted = true;
    }
    drifted
}

// ---------------------------------------------------------------------------
// online_placement
// ---------------------------------------------------------------------------

/// Required speedup of the warm per-arrival prepare phase (a
/// [`PlacementCost::rebase`] resync of the pooled kernel shape plus the
/// Fenwick free-slot resync) over the cold one (schedule compile + full
/// evaluator build), measured in the steady-state regime the pool
/// targets: light host-granular occupancy churn between consecutive
/// arrivals of the day-mix shapes, where the repaired seed
/// (`SearchContext::seed_for`) displaces only the ranks whose hosts
/// changed hands and the rebase stays on the delta path.  The annealing
/// walk after prepare is common to both paths, so the gate isolates
/// exactly what the cross-job cache pool saves per arrival.
///
/// The compressed paper day is the adversarial regime, not the gated
/// one: its arrival-weighted contention is extreme (bursts dominate the
/// arrival count, hosts are all-or-nothing under one-app-per-MPD, and
/// every plan chases the same fastest hosts), so most arrivals displace
/// most ranks and the wholesale rebase fallback caps the warm prepare at
/// the rebuild cost — roughly 2x the cold build, not 5x.  The day's
/// amortized prepare numbers are therefore reported as diagnostics in
/// the `day` block but held only to the bit-exactness gate, not to this
/// floor.
const ONLINE_WARM_PREPARE_SPEEDUP_MIN: f64 = 5.0;

/// Hosts toggled busy<->free between consecutive arrivals of the
/// steady-state prepare benchmark (each churn step frees this many busy
/// hosts and occupies as many free ones, whole hosts at a time — the
/// day's one-application-per-MPD granularity).  One pair per arrival:
/// consecutive arrivals of the compressed day are seconds apart, so in
/// steady state roughly one neighbouring job starts or finishes — a
/// couple of hosts changing hands — between them.
const ONLINE_BENCH_CHURN_HOSTS: usize = 1;

/// Hosts busy at the start of the steady-state prepare benchmark (~9% of
/// the 350-host grid — a handful of neighbouring jobs in flight).
const ONLINE_BENCH_BUSY_HOSTS: usize = 30;

/// Identical-sequence passes of the steady-state prepare benchmark; each
/// arm reports its fastest pass (additive scheduler noise only slows a
/// pass down, so the minimum is the noise-robust estimate).
const ONLINE_BENCH_PASSES: usize = 3;

/// Required improvement of the searched day's mean job makespan over the
/// best fixed strategy (concentrate or spread) on the compressed day.
const ONLINE_DAY_IMPROVEMENT_MIN: f64 = 0.05;

/// Wall budget of the searched compressed day (full runs only; observed
/// ~6 s release at the CI shape, so this leaves generous headroom for
/// slower machines).
const ONLINE_DAY_WALL_BUDGET_S: f64 = 120.0;

/// The steady-state prepare benchmark: warm rebase vs cold build per
/// arrival under light host-granular churn (see
/// [`ONLINE_WARM_PREPARE_SPEEDUP_MIN`] for why this regime, not the
/// bursty day, carries the speedup gate).
struct OnlinePrepareBench {
    arrivals: u64,
    warm_prepare_us: f64,
    cold_prepare_us: f64,
    speedup: f64,
    plans_equal: bool,
}

fn measure_online_prepare(test_mode: bool) -> OnlinePrepareBench {
    eprintln!(
        "measuring steady-state warm-vs-cold prepare (host-granular churn, day-mix shapes, \
         best of {ONLINE_BENCH_PASSES})..."
    );
    let rounds = if test_mode { 15 } else { 40 };
    let topology = topology_from_specs(&scaled_table1(1));
    let settings = Fig4Settings::default().modeled();
    let params = OnlineSearchParams::default();
    let full = host_capacities(&topology);
    let hosts = full.len();
    let shapes = [
        (Fig4Kernel::Ep, 8u32),
        (Fig4Kernel::Ep, 32),
        (Fig4Kernel::Ep, 64),
        (Fig4Kernel::Ep, 128),
        (Fig4Kernel::Is, 8),
        (Fig4Kernel::Is, 32),
    ];
    // Every pass replays the identical arrival/churn sequence on fresh
    // contexts; the reported cost of each arm is its fastest pass —
    // additive scheduler noise only ever slows a pass down, so the
    // minimum is the noise-robust estimate (same idiom as the best-of
    // rounds of the sweep sections).
    let mut arrivals = 0;
    let mut warm_prepare_us = f64::INFINITY;
    let mut cold_prepare_us = f64::INFINITY;
    let mut plans_equal = true;
    for _ in 0..ONLINE_BENCH_PASSES {
        let mut warm = SearchContext::new(topology.clone(), settings, params);
        let mut cold = SearchContext::new(topology.clone(), settings, params);
        cold.cold = true;
        let mut busy = vec![false; hosts];
        let mut caps = full.clone();
        let mut rng = seeded(0x5EED_DA11);
        let flip = |want_busy: bool,
                    busy: &mut [bool],
                    caps: &mut [u32],
                    rng: &mut dyn FnMut(usize) -> usize| loop {
            let h = rng(hosts);
            if busy[h] != want_busy {
                busy[h] = want_busy;
                caps[h] = if want_busy { 0 } else { full[h] };
                break;
            }
        };
        let mut draw = move |n: usize| rng.gen_range(0..n);
        for _ in 0..ONLINE_BENCH_BUSY_HOSTS {
            flip(true, &mut busy, &mut caps, &mut draw);
        }
        // Round 0 is the warm-up lap: every shape's first sighting is a
        // cold build in both contexts, so its prepare nanos are
        // snapshotted and subtracted — the comparison is steady-state
        // arrivals only.
        let mut warm_base = warm.stats();
        let mut cold_base = cold.stats();
        for round in 0..rounds {
            for (i, &(kernel, n)) in shapes.iter().enumerate() {
                for _ in 0..ONLINE_BENCH_CHURN_HOSTS {
                    flip(false, &mut busy, &mut caps, &mut draw);
                    flip(true, &mut busy, &mut caps, &mut draw);
                }
                let arrival = (round * shapes.len() + i) as u64;
                let w = warm.searched_hosts(kernel, n, &caps, arrival);
                let c = cold.searched_hosts(kernel, n, &caps, arrival);
                plans_equal &= w == c;
            }
            if round == 0 {
                warm_base = warm.stats();
                cold_base = cold.stats();
            }
        }
        let (ws, cs) = (warm.stats(), cold.stats());
        arrivals = ws.searched - warm_base.searched;
        warm_prepare_us = warm_prepare_us.min(
            (ws.prepare_nanos - warm_base.prepare_nanos) as f64 / arrivals.max(1) as f64 / 1e3,
        );
        cold_prepare_us = cold_prepare_us.min(
            (cs.prepare_nanos - cold_base.prepare_nanos) as f64
                / (cs.searched - cold_base.searched).max(1) as f64
                / 1e3,
        );
    }
    OnlinePrepareBench {
        arrivals,
        warm_prepare_us,
        cold_prepare_us,
        speedup: cold_prepare_us / warm_prepare_us.max(1e-9),
        plans_equal,
    }
}

/// Everything the online-placement section measures.
struct OnlinePlacementSection {
    bench: OnlinePrepareBench,
    day_warm_prepare_us: f64,
    day_cold_prepare_us: f64,
    day_prepare_speedup: f64,
    warm_equals_cold: bool,
    concentrate: DaySweepResult,
    spread: DaySweepResult,
    searched: DaySweepResult,
    cold_stats: OnlineSearchStats,
    searched_wall_s: f64,
    search_moves: u64,
    improvement: f64,
    test_mode: bool,
}

/// Deterministic-outcome equality of two searched day runs: every job
/// count, the timeline event count, the bit-exact mean hold and the
/// search decision counters must match.  The wall-clock nanoseconds in
/// [`OnlineSearchStats`] are diagnostics, not outcomes, and stay out.
fn same_searched_day(a: &DaySweepResult, b: &DaySweepResult) -> bool {
    let sa = a.search.expect("the searched day records its stats");
    let sb = b.search.expect("the searched day records its stats");
    a.submitted == b.submitted
        && a.succeeded == b.succeeded
        && a.failed == b.failed
        && a.timeouts == b.timeouts
        && a.events_processed == b.events_processed
        && a.mean_hold_secs.to_bits() == b.mean_hold_secs.to_bits()
        && sa.arrivals == sb.arrivals
        && sa.searched == sb.searched
        && sa.infeasible == sb.infeasible
        && sa.moves_evaluated == sb.moves_evaluated
}

/// The day every strategy replays for the online comparison: the paper-day
/// shape compressed 24× at 5% of the arrival rates (~1.1k jobs) — the same
/// shape `fig23_sweep --searched --compress 24 --rate-scale 0.05` smokes.
fn online_day_config(strategy: StrategyKind) -> DaySweepConfig {
    let mut cfg = DaySweepConfig::new(strategy).compress(24.0);
    cfg.profile = cfg.profile.scaled(0.05);
    cfg
}

fn measure_online_placement(test_mode: bool) -> OnlinePlacementSection {
    let bench = measure_online_prepare(test_mode);
    eprintln!(
        "measuring the searched day vs the fixed strategies (compress 24, rate scale 0.05)..."
    );
    let concentrate = run_day_sweep(&online_day_config(StrategyKind::Concentrate));
    let spread = run_day_sweep(&online_day_config(StrategyKind::Spread));
    let searched_cfg = online_day_config(StrategyKind::Searched);
    let start = Instant::now();
    let searched = run_day_sweep(&searched_cfg);
    let searched_wall_s = start.elapsed().as_secs_f64();
    eprintln!("replaying the searched day with cold per-arrival builds (cache pool disabled)...");
    let mut cold_cfg = online_day_config(StrategyKind::Searched);
    cold_cfg.search_cold = true;
    let cold_day = run_day_sweep(&cold_cfg);
    let warm_stats = searched.search.expect("the searched day records its stats");
    let cold_stats = cold_day.search.expect("the searched day records its stats");
    // Amortized day prepare cost per arrival that actually searched
    // (diagnostics — the speedup gate runs on the steady-state bench
    // above; see ONLINE_WARM_PREPARE_SPEEDUP_MIN).  The cold replay pays
    // a schedule compile + full evaluator build on every arrival, the
    // warm day only on first-sighted shapes.
    let day_warm_prepare_us =
        warm_stats.prepare_nanos as f64 / warm_stats.searched.max(1) as f64 / 1e3;
    let day_cold_prepare_us =
        cold_stats.prepare_nanos as f64 / cold_stats.searched.max(1) as f64 / 1e3;
    let best_fixed = concentrate.mean_hold_secs.min(spread.mean_hold_secs);
    let improvement = 1.0 - searched.mean_hold_secs / best_fixed.max(1e-9);
    OnlinePlacementSection {
        bench,
        day_warm_prepare_us,
        day_cold_prepare_us,
        day_prepare_speedup: day_cold_prepare_us / day_warm_prepare_us.max(1e-9),
        warm_equals_cold: same_searched_day(&searched, &cold_day),
        concentrate,
        spread,
        searched,
        cold_stats,
        searched_wall_s,
        search_moves: searched_cfg.search_moves,
        improvement,
        test_mode,
    }
}

/// The online-placement gates; returns true if anything failed.
fn check_online_placement_gates(o: &OnlinePlacementSection) -> bool {
    let mut drifted = false;
    if o.bench.speedup < ONLINE_WARM_PREPARE_SPEEDUP_MIN {
        eprintln!(
            "FAIL: the warm per-arrival prepare ({:.1} us over {} steady-state arrivals) is \
             only {:.1}x cheaper than the cold per-arrival build ({:.1} us) — the cross-job \
             cache gate requires {ONLINE_WARM_PREPARE_SPEEDUP_MIN}x",
            o.bench.warm_prepare_us, o.bench.arrivals, o.bench.speedup, o.bench.cold_prepare_us
        );
        drifted = true;
    }
    if !o.bench.plans_equal {
        eprintln!(
            "FAIL: the warm (rebased) and cold (fresh-build) steady-state searches diverged — \
             the rebase exactness contract of p2pmpi_mpi::model is broken"
        );
        drifted = true;
    }
    if !o.warm_equals_cold {
        eprintln!(
            "FAIL: the warm (rebased) searched day diverged from the cold fresh-build replay — \
             the rebase exactness contract of p2pmpi_mpi::model is broken"
        );
        drifted = true;
    }
    if o.improvement < ONLINE_DAY_IMPROVEMENT_MIN {
        eprintln!(
            "FAIL: the searched day's mean job makespan ({:.2}s) is only {:.1}% better than the \
             best fixed strategy (concentrate {:.2}s, spread {:.2}s); the gate requires {:.0}%",
            o.searched.mean_hold_secs,
            o.improvement * 100.0,
            o.concentrate.mean_hold_secs,
            o.spread.mean_hold_secs,
            ONLINE_DAY_IMPROVEMENT_MIN * 100.0
        );
        drifted = true;
    }
    if !o.test_mode && o.searched_wall_s > ONLINE_DAY_WALL_BUDGET_S {
        eprintln!(
            "FAIL: the searched compressed day took {:.1}s wall; the documented budget is \
             {ONLINE_DAY_WALL_BUDGET_S}s",
            o.searched_wall_s
        );
        drifted = true;
    }
    drifted
}

fn main() {
    let mut out_path = "BENCH_hotpath.json".to_string();
    let mut seed_allocate_ns = SEED_ALLOCATE_NS_PER_JOB;
    let mut test_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed-allocate-ns" => {
                seed_allocate_ns = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed-allocate-ns takes a number");
            }
            "--test" => test_mode = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown option: {flag}");
                eprintln!("usage: perf_report [out.json] [--seed-allocate-ns N] [--test]");
                std::process::exit(2);
            }
            other => out_path = other.to_string(),
        }
    }

    if test_mode {
        // CI smoke: the queue-sensitive sections and the placement search,
        // reduced scale, the relative gates, no report file.
        let q = measure_queue_sections(true, 2);
        eprintln!(
            "sweep_engine (reduced, {} jobs): heap {:.1} ms, calendar {:.1} ms, ladder {:.1} ms",
            q.sweep_jobs, q.sweep_walls[0], q.sweep_walls[1], q.sweep_walls[2]
        );
        eprintln!(
            "timeout_timeline (reduced, {} jobs, {} reservation timeouts, {} events): \
             heap {:.1} ms, calendar {:.1} ms, ladder {:.1} ms",
            q.timeline.submitted,
            q.timeline.timeouts,
            q.timeline.events_processed,
            q.timeline_walls[0],
            q.timeline_walls[1],
            q.timeline_walls[2]
        );
        eprintln!(
            "skewed dead-peer trace (reduced, {} jobs, {} reservation timeouts): \
             heap {:.1} ms, calendar {:.1} ms, ladder {:.1} ms",
            q.skewed.submitted,
            q.skewed.timeouts,
            q.skewed_walls[0],
            q.skewed_walls[1],
            q.skewed_walls[2]
        );
        let ps = measure_placement_search(true);
        eprintln!(
            "placement_search (reduced): delta {:.0} ns/move vs replay {:.0} ns ({:.1}x), \
             skewed improvement {:.1}%",
            ps.delta_ns_per_move,
            ps.replay_ns,
            ps.delta_speedup,
            ps.skewed.improvement() * 100.0
        );
        for case in &ps.standard {
            eprintln!(
                "placement_search {:?}@{}: conc {:.4}s spread {:.4}s searched {:.4}s",
                case.kernel,
                case.ranks,
                case.report.concentrate.as_secs_f64(),
                case.report.spread.as_secs_f64(),
                case.report.best.as_secs_f64()
            );
        }
        let is_search = measure_is_search(true);
        eprintln!(
            "is_search (reduced, IS@{}): delta {:.0} ns/move vs replay {:.0} ns ({:.1}x), \
             ring caches {} bytes ({} Uniform tables: {} bytes vs {} PerSrc-equivalent), \
             search {:.1}s wall",
            is_search.ranks,
            is_search.delta_ns_per_move,
            is_search.replay_ns,
            is_search.delta_speedup,
            is_search.ring_cache_bytes,
            is_search.uniform_tables,
            is_search.uniform_bytes,
            is_search.uniform_per_src_bytes,
            is_search.search_wall_s
        );
        let op = measure_online_placement(true);
        let op_stats = op
            .searched
            .search
            .expect("the searched day records its stats");
        eprintln!(
            "online_placement (reduced): steady-state warm prepare {:.1} us vs cold {:.1} us \
             ({:.1}x over {} arrivals, plans {}), day-amortized {:.1} us vs {:.1} us ({:.1}x, \
             days {}), searched day mean hold {:.2}s vs concentrate {:.2}s / spread {:.2}s \
             ({:+.1}%), {} warm rebases vs {} cold builds",
            op.bench.warm_prepare_us,
            op.bench.cold_prepare_us,
            op.bench.speedup,
            op.bench.arrivals,
            if op.bench.plans_equal {
                "identical"
            } else {
                "DIVERGED"
            },
            op.day_warm_prepare_us,
            op.day_cold_prepare_us,
            op.day_prepare_speedup,
            if op.warm_equals_cold {
                "identical"
            } else {
                "DIVERGED"
            },
            op.searched.mean_hold_secs,
            op.concentrate.mean_hold_secs,
            op.spread.mean_hold_secs,
            op.improvement * 100.0,
            op_stats.warm_rebases,
            op_stats.cold_builds
        );
        let (verdicts, matrix_wall_s) = measure_scenario_matrix();
        for v in &verdicts {
            eprintln!(
                "scenario {}: {} ({}/{} jobs placed)",
                v.scenario.name(),
                if v.passed() { "PASS" } else { "FAIL" },
                v.result.succeeded,
                v.result.submitted
            );
        }
        eprintln!(
            "scenario_matrix: {} scenarios in {matrix_wall_s:.1}s wall",
            verdicts.len()
        );
        eprintln!(
            "measuring sustained sharded throughput (week shape, {SUSTAINED_SHARDS} shards, parallel vs single-thread)..."
        );
        let sus = measure_sustained(true, 1);
        eprintln!(
            "sustained_throughput (reduced, {} jobs, {} events, {} barriers): parallel {:.1} ms, \
             single-thread {:.1} ms, {:.0} events/s, speedup {:.2}x on {} hw thread(s)",
            sus.jobs,
            sus.events,
            sus.barriers,
            sus.parallel_wall_ms,
            sus.single_thread_wall_ms,
            sus.events_per_sec,
            sus.speedup,
            sus.hw_threads
        );
        // The trend gate compares against the last written report, so the
        // smoke run also catches recovery-time regressions vs the tracked
        // trajectory (silently skipped when no prior report exists).
        let prior = std::fs::read_to_string(&out_path).ok();
        let drifted = check_queue_gates(&q)
            | check_placement_search_gates(&ps)
            | check_is_search_gates(&is_search)
            | check_online_placement_gates(&op)
            | check_scenario_gates(&verdicts)
            | check_recovery_trend(&verdicts, prior.as_deref())
            | check_sustained_gates(&sus);
        if drifted {
            std::process::exit(1);
        }
        eprintln!(
            "perf_report --test: all queue, placement-search, is-search, online-placement, \
             scenario and sustained-throughput gates passed"
        );
        return;
    }

    eprintln!("building warm Grid'5000 testbed (350 hosts)...");
    let mut tb = grid5000_testbed(17, NoiseModel::disabled());
    let hosts = tb.topology.host_count();
    let cached = tb.overlay.node(tb.submitter).cache.len();

    eprintln!("measuring booking-order ranking ({RANKING_REPS} reps)...");
    let (naive_ns, incremental_ns) = measure_ranking(&tb);

    eprintln!("measuring warm allocate ({ALLOC_JOBS} jobs per variant)...");
    let (off_ns, on_ns, armed_ns) = measure_allocate(&mut tb);

    eprintln!("measuring Poisson job sweep ({SWEEP_JOBS} jobs, best of 3 rounds)...");
    let (sweep_wall_ms, sweep_jobs_per_sec) = measure_sweep(&mut tb, 3);

    eprintln!(
        "measuring event-engine throughput ({ENGINE_CHURN} pop/push cycles per variant, best of 3 interleaved rounds)..."
    );
    let (boxed_eps, arena_heap_eps, arena_cal_eps, arena_lad_eps) = measure_engine_all(3);

    eprintln!("measuring modeled-vs-executed collective agreement (EP@64, IS@32)...");
    let agreement_settings = Fig4Settings {
        is_sample_divisor: 64,
        ..Fig4Settings::default()
    };
    let (ep_exec_s, ep_model_s, ep_div) =
        measure_agreement(Fig4Kernel::Ep, 64, &agreement_settings);
    let (is_exec_s, is_model_s, is_div) =
        measure_agreement(Fig4Kernel::Is, 32, &agreement_settings);

    eprintln!("measuring modeled sweep throughput (EP@2048, IS@1024)...");
    let sweep_settings = Fig4Settings::default();
    let (ep_sweep_virtual_s, ep_sweep_wall_ms) =
        measure_modeled_sweep(Fig4Kernel::Ep, 2048, &sweep_settings);
    let (is_sweep_virtual_s, is_sweep_wall_ms) =
        measure_modeled_sweep(Fig4Kernel::Is, 1024, &sweep_settings);

    let q = measure_queue_sections(false, 3);
    let ps = measure_placement_search(false);
    let is_search = measure_is_search(false);
    let op = measure_online_placement(false);
    let (scenario_verdicts, scenario_wall_s) = measure_scenario_matrix();
    eprintln!(
        "measuring sustained sharded throughput (week shape, {SUSTAINED_SHARDS} shards, parallel vs single-thread, best of 2)..."
    );
    let sus = measure_sustained(false, 2);

    // The prior report (if any) supplies every section's trajectory block
    // and the sustained drop gate's baseline; read it before overwriting.
    let prior = std::fs::read_to_string(&out_path).ok();
    let prior = prior.as_deref();
    let prev_sustained_eps = prior
        .and_then(|p| section_slice(p, "sustained_throughput"))
        .and_then(|s| scan_f64(s, "events_per_sec"));
    let ranking_prev = previous_block(prior, "ranking", &["after_incremental_index_ns", "speedup"]);
    let alloc_prev = previous_block(
        prior,
        "allocate_warm",
        &[
            "after_tracing_off_ns_per_job",
            "after_tracing_on_ns_per_job",
        ],
    );
    let poisson_prev = previous_block(prior, "job_sweep_poisson", &["wall_ms", "jobs_per_sec"]);
    let engine_prev = previous_block(
        prior,
        "event_engine",
        &[
            "before_boxed_heap_events_per_sec",
            "after_arena_heap_events_per_sec",
            "after_arena_calendar_events_per_sec",
            "after_arena_ladder_events_per_sec",
            "arena_heap_vs_boxed_speedup",
        ],
    );
    let sweep_engine_prev = previous_block(
        prior,
        "sweep_engine",
        &["heap_wall_ms", "calendar_wall_ms", "ladder_wall_ms"],
    );
    let timeline_prev = previous_block(
        prior,
        "timeout_timeline",
        &["best_wall_ms", "ladder_wall_ms", "best_vs_baseline"],
    );
    let scenario_prev = previous_block(
        prior,
        "scenario_matrix",
        &[
            "wall_s",
            "site_outage_recovery_s",
            "supernode_crash_recovery_s",
            "rack_outage_recovery_s",
            "outage_in_crowd_recovery_s",
            "outage_in_crowd_worst_recovery_s",
            "site_outage_degradation",
            "flash_crowd_degradation",
            "slow_links_degradation",
            "supernode_crash_degradation",
            "rack_outage_degradation",
            "outage_in_crowd_degradation",
            "outage_in_crowd_worst_degradation",
        ],
    );
    let placement_prev =
        previous_block(prior, "placement_search", &["delta_ns_per_move", "speedup"]);
    let is_search_prev = previous_block(
        prior,
        "is_search",
        &[
            "delta_ns_per_move",
            "speedup",
            "ring_cache_bytes",
            "uniform_ring_bytes",
            "wall_s",
        ],
    );
    let online_prev = previous_block(
        prior,
        "online_placement",
        &[
            "warm_prepare_us",
            "prepare_speedup",
            "searched_mean_hold_s",
            "improvement_vs_best_fixed",
        ],
    );
    let sustained_prev = previous_block(
        prior,
        "sustained_throughput",
        &[
            "events_per_sec",
            "jobs_per_sec",
            "speedup",
            "parallel_wall_ms",
        ],
    );
    let [sweep_heap_ms, sweep_cal_ms, sweep_lad_ms] = q.sweep_walls;
    let sweep_engine_jobs = q.sweep_jobs;
    let [day_heap_ms, day_cal_ms, day_lad_ms] = q.timeline_walls;
    let day_best_ms = q
        .timeline_walls
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let day_best_vs_baseline = day_best_ms / ANALYTICAL_DAY_WALL_MS;
    let [skewed_heap_ms, skewed_cal_ms, skewed_lad_ms] = q.skewed_walls;
    let skewed_ladder_vs_calendar = skewed_cal_ms / skewed_lad_ms.max(1e-9);
    let day_alloc_free = q.timeline.steady_state_alloc_free() && q.skewed.steady_state_alloc_free();

    let ranking_speedup = naive_ns / incremental_ns.max(1.0);
    let alloc_speedup = seed_allocate_ns / off_ns.max(1.0);
    let fastpath_reclaimed_us = (armed_ns - off_ns) / 1e3;
    // The standard-grid search cases as a JSON array (the case list differs
    // between full and --test runs, so it is assembled, not templated).
    let search_cases_json = ps
        .standard
        .iter()
        .map(|case| {
            format!(
                r#"      {{ "kernel": "{:?}", "ranks": {}, "concentrate_s": {:.6}, "spread_s": {:.6}, "searched_s": {:.6}, "improvement_vs_best_of": {:.4}, "hosts_used": {} }}"#,
                case.kernel,
                case.ranks,
                case.report.concentrate.as_secs_f64(),
                case.report.spread.as_secs_f64(),
                case.report.best.as_secs_f64(),
                case.report.improvement(),
                case.report.hosts_used(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let (budget_wall_s, budget_report) = ps.budget.as_ref().expect("full run measures the budget");
    let ps_delta_ns = ps.delta_ns_per_move;
    let ps_replay_ns = ps.replay_ns;
    let ps_speedup = ps.delta_speedup;
    let ps_avg_ops = ps.avg_delta_ops;
    let ps_schedule_ops = ps.schedule_ops;
    let ps_delta_ranks = ps.delta_ranks;
    let skewed_ranks = ps.skewed_ranks;
    let skewed_conc = ps.skewed.concentrate.as_secs_f64();
    let skewed_spread = ps.skewed.spread.as_secs_f64();
    let skewed_best = ps.skewed.best.as_secs_f64();
    let skewed_improvement = ps.skewed.improvement();
    let budget_best = budget_report.best.as_secs_f64();
    let budget_moves = budget_report.evaluated();
    let is_ranks = is_search.ranks;
    let is_delta_ns = is_search.delta_ns_per_move;
    let is_replay_ns = is_search.replay_ns;
    let is_speedup = is_search.delta_speedup;
    let is_avg_ops = is_search.avg_delta_ops;
    let is_schedule_ops = is_search.schedule_ops;
    let is_ring_bytes = is_search.ring_cache_bytes;
    let is_search_moves = is_search.search_moves;
    let is_search_chains = is_search.search_chains;
    let is_search_wall_s = is_search.search_wall_s;
    let is_search_conc = is_search.search.concentrate.as_secs_f64();
    let is_search_spread = is_search.search.spread.as_secs_f64();
    let is_search_best = is_search.search.best.as_secs_f64();
    let is_search_improvement = is_search.search.improvement();
    let is_search_hosts = is_search.search.hosts_used();
    let is_uniform_tables = is_search.uniform_tables;
    let is_uniform_bytes = is_search.uniform_bytes;
    let is_uniform_per_src = is_search.uniform_per_src_bytes;
    let poisson_hw = hw_threads();
    let op_stats = op
        .searched
        .search
        .expect("the searched day records its stats");
    let op_cold_prepare_ms = op.cold_stats.prepare_nanos as f64 / 1e6;
    let op_warm_us = op.bench.warm_prepare_us;
    let op_cold_us = op.bench.cold_prepare_us;
    let op_speedup = op.bench.speedup;
    let op_bench_arrivals = op.bench.arrivals;
    let op_plans_equal = op.bench.plans_equal;
    let op_day_warm_us = op.day_warm_prepare_us;
    let op_day_cold_us = op.day_cold_prepare_us;
    let op_day_speedup = op.day_prepare_speedup;
    let op_exact = op.warm_equals_cold;
    let op_moves = op.search_moves;
    let op_conc_sub = op.concentrate.submitted;
    let op_conc_suc = op.concentrate.succeeded;
    let op_conc_hold = op.concentrate.mean_hold_secs;
    let op_spread_sub = op.spread.submitted;
    let op_spread_suc = op.spread.succeeded;
    let op_spread_hold = op.spread.mean_hold_secs;
    let op_sea_sub = op.searched.submitted;
    let op_sea_suc = op.searched.succeeded;
    let op_sea_hold = op.searched.mean_hold_secs;
    let op_sea_wall_s = op.searched_wall_s;
    let op_arrivals = op_stats.arrivals;
    let op_planned = op_stats.searched;
    let op_infeasible = op_stats.infeasible;
    let op_warm_rebases = op_stats.warm_rebases;
    let op_cold_builds = op_stats.cold_builds;
    let op_moves_evaluated = op_stats.moves_evaluated;
    let op_prepare_ms = op_stats.prepare_nanos as f64 / 1e6;
    let op_anneal_ms = op_stats.anneal_nanos as f64 / 1e6;
    let op_amortized_us = (op_stats.prepare_nanos + op_stats.anneal_nanos) as f64
        / op_stats.arrivals.max(1) as f64
        / 1e3;
    let op_improvement = op.improvement;
    // One row per scenario verdict; check details live in the runner's own
    // JSON output, so the report keeps the headline numbers only.
    let scenario_rows_json = scenario_verdicts
        .iter()
        .map(|v| {
            let recovery = v
                .recovery_secs
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "null".to_string());
            let degradation = v
                .baseline
                .as_ref()
                .map(|b| format!("{:.3}", v.result.succeeded as f64 / b.succeeded.max(1) as f64))
                .unwrap_or_else(|| "null".to_string());
            format!(
                r#"      {{ "scenario": "{}", "passed": {}, "submitted": {}, "succeeded": {}, "timeouts": {}, "jobs_killed": {}, "leaked_grants": {}, "leaked_grant_hwm": {}, "recovery_secs": {recovery}, "degradation_ratio": {degradation}, "checks_passed": {}, "checks_total": {} }}"#,
                v.scenario.name(),
                v.passed(),
                v.result.submitted,
                v.result.succeeded,
                v.result.timeouts,
                v.result.jobs_killed,
                v.result.leaked_grants,
                v.result.leaked_grant_hwm,
                v.checks.iter().filter(|c| c.passed).count(),
                v.checks.len(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // Flat per-scenario trajectory keys (recovery times of the SLO-gated
    // scenarios, degradation ratios of the twin-judged ones): the shape
    // `previous_block`/`scan_f64` can track across reports, feeding the
    // recovery-trend gate.
    let scenario_trend_json = scenario_verdicts
        .iter()
        .flat_map(|v| {
            let mut keys = Vec::new();
            if v.scenario.recovery_slo_secs().is_some() {
                if let Some(s) = v.recovery_secs {
                    keys.push(format!(
                        r#"    "{}_recovery_s": {s:.1},"#,
                        v.scenario.name()
                    ));
                }
            }
            if let Some(b) = &v.baseline {
                keys.push(format!(
                    r#"    "{}_degradation": {:.3},"#,
                    v.scenario.name(),
                    v.result.succeeded as f64 / b.succeeded.max(1) as f64
                ));
            }
            keys
        })
        .collect::<Vec<_>>()
        .join("\n");
    let scenario_all_passed = scenario_verdicts.iter().all(|v| v.passed());
    let arena_vs_boxed = arena_heap_eps / boxed_eps.max(1.0);
    let calendar_vs_boxed = arena_cal_eps / boxed_eps.max(1.0);
    let ladder_vs_boxed = arena_lad_eps / boxed_eps.max(1.0);
    let day_jobs = q.timeline.submitted;
    let day_timeouts = q.timeline.timeouts;
    let day_events = q.timeline.events_processed;
    let skewed_jobs = q.skewed.submitted;
    let skewed_timeouts = q.skewed.timeouts;
    let skewed_events = q.skewed.events_processed;
    let sus_shards = sus.shards;
    let sus_hw = sus.hw_threads;
    let sus_rate = sus.rate_scale;
    let sus_jobs = sus.jobs;
    let sus_events = sus.events;
    let sus_barriers = sus.barriers;
    let sus_cross_submitted = sus.cross_submitted;
    let sus_cross_succeeded = sus.cross_succeeded;
    let sus_par_ms = sus.parallel_wall_ms;
    let sus_seq_ms = sus.single_thread_wall_ms;
    let sus_eps = sus.events_per_sec;
    let sus_jps = sus.jobs_per_sec;
    let sus_speedup = sus.speedup;

    let json = format!(
        r#"{{
  "bench": "hotpath",
  "generated_by": "perf_report (cargo run --release -p p2pmpi-bench --bin perf_report)",
  "testbed": {{ "hosts": {hosts}, "cached_peers": {cached} }},
  "ranking": {{
    "description": "booking order of the warm submitter cache, per read; before = the seed's sort-per-read (still available as sorted_by_latency_naive), after = the incremental index",
    "before_naive_sort_ns": {naive_ns:.1},
    "after_incremental_index_ns": {incremental_ns:.1},
    "speedup": {ranking_speedup:.1},
    "previous": {ranking_prev}
  }},
  "allocate_warm": {{
    "description": "full job submission (100 procs, concentrate) on the warm cache; before = seed tree measured with identical workload/vendored deps (see perf_report docs)",
    "jobs_per_variant": {ALLOC_JOBS},
    "before_seed_ns_per_job": {seed_allocate_ns:.0},
    "after_tracing_off_ns_per_job": {off_ns:.0},
    "after_tracing_on_ns_per_job": {on_ns:.0},
    "speedup_tracing_off_vs_seed": {alloc_speedup:.2},
    "warm_fastpath": {{
      "description": "the alive-peer timeout fast path: rs_send skips arming a timeout whose reply is already scheduled to win the race (outcome-invariant, pinned by day_sweep tests); armed = the same warm jobs with the fast path disabled, reclaimed = what skipping the arm/cancel pair saves per warm 100-process job",
      "armed_ns_per_job": {armed_ns:.0},
      "fastpath_ns_per_job": {off_ns:.0},
      "reclaimed_us_per_job": {fastpath_reclaimed_us:.1}
    }},
    "previous": {alloc_prev}
  }},
  "job_sweep_poisson": {{
    "description": "Poisson arrivals (mean gap 30 s virtual), tracing off, best of 3 rounds; hw_threads recorded like sustained_throughput so trajectory points from different machines stay distinguishable",
    "jobs": {SWEEP_JOBS},
    "rounds": 3,
    "hw_threads": {poisson_hw},
    "wall_ms": {sweep_wall_ms:.1},
    "jobs_per_sec": {sweep_jobs_per_sec:.0},
    "previous": {poisson_prev}
  }},
  "event_engine": {{
    "description": "steady-state pop/push churn over a {ENGINE_POPULATION}-event population, best of 3 interleaved rounds; before = the seed's boxed-closure binary heap (payload inside the heap entry), after = the arena-backed EventStore behind each queue kind",
    "churn_events": {ENGINE_CHURN},
    "before_boxed_heap_events_per_sec": {boxed_eps:.0},
    "after_arena_heap_events_per_sec": {arena_heap_eps:.0},
    "after_arena_calendar_events_per_sec": {arena_cal_eps:.0},
    "after_arena_ladder_events_per_sec": {arena_lad_eps:.0},
    "arena_heap_vs_boxed_speedup": {arena_vs_boxed:.2},
    "arena_calendar_vs_boxed_speedup": {calendar_vs_boxed:.2},
    "arena_ladder_vs_boxed_speedup": {ladder_vs_boxed:.2},
    "required_arena_heap_vs_boxed": {ARENA_HEAP_VS_BOXED_MIN},
    "previous": {engine_prev}
  }},
  "modeled_collectives": {{
    "description": "LogGP analytical backend (p2pmpi_mpi::model) vs the executed thread-per-rank runtime on identical co-allocated placements; divergence = |modeled - executed| / executed of the virtual makespan",
    "ep": {{
      "processes": 64,
      "executed_virtual_s": {ep_exec_s:.6},
      "modeled_virtual_s": {ep_model_s:.6},
      "divergence": {ep_div:.9},
      "tolerance": {EP_DIVERGENCE_TOLERANCE:e}
    }},
    "is": {{
      "processes": 32,
      "executed_virtual_s": {is_exec_s:.6},
      "modeled_virtual_s": {is_model_s:.6},
      "divergence": {is_div:.6},
      "tolerance": {IS_DIVERGENCE_TOLERANCE}
    }},
    "modeled_sweep": {{
      "description": "one modeled Figure 4 point at sweep scale (spread placement on the auto-scaled Table-1 grid), wall-clock per point",
      "ep_ranks": 2048,
      "ep_virtual_s": {ep_sweep_virtual_s:.3},
      "ep_wall_ms": {ep_sweep_wall_ms:.1},
      "is_ranks": 1024,
      "is_virtual_s": {is_sweep_virtual_s:.3},
      "is_wall_ms": {is_sweep_wall_ms:.1}
    }}
  }},
  "sweep_engine": {{
    "description": "day-trace sweep harness (fig23_sweep driver, paper-day profile compressed to ~2h virtual) on the overlay's event timeline, heap vs calendar vs ladder, best of 3 interleaved rounds; fails non-zero if the ladder (the sweep default) loses to the best alternative past the noise margin",
    "jobs": {sweep_engine_jobs},
    "heap_wall_ms": {sweep_heap_ms:.1},
    "calendar_wall_ms": {sweep_cal_ms:.1},
    "ladder_wall_ms": {sweep_lad_ms:.1},
    "noise_margin": {SWEEP_ENGINE_NOISE_MARGIN},
    "previous": {sweep_engine_prev}
  }},
  "timeout_timeline": {{
    "description": "the FULL paper_day() concentrate trace with per-reservation timeout events: every rs_request arms a timeout on the timeline that the simulated reply cancels, so the engine delivers ~80x more events than the analytical-timeout day did; the best queue must stay within limit_vs_baseline of the analytical day's wall time (measured at commit b805ba5, same machine/methodology) and the brokering bookkeeping must be allocation-free past its mid-trace high-water mark — either violation fails non-zero",
    "jobs": {day_jobs},
    "reservation_timeouts": {day_timeouts},
    "timeline_events": {day_events},
    "baseline_analytical_wall_ms": {ANALYTICAL_DAY_WALL_MS},
    "limit_vs_baseline": {TIMEOUT_TIMELINE_LIMIT},
    "heap_wall_ms": {day_heap_ms:.1},
    "calendar_wall_ms": {day_cal_ms:.1},
    "ladder_wall_ms": {day_lad_ms:.1},
    "best_wall_ms": {day_best_ms:.1},
    "best_vs_baseline": {day_best_vs_baseline:.3},
    "steady_state_alloc_free": {day_alloc_free},
    "skewed_dead_peer_trace": {{
      "description": "the churn-heavy dead_peer_day scenario compressed 12x: flapping peers keep getting re-booked, so thousands of 2 s timeout windows ride on millisecond replies and hour-scale completions; on that trimodal skew the calendar's uniform bucket width degrades toward O(cluster) sorted inserts and the ladder's rung refinement must win by more than required_ladder_margin — fails non-zero otherwise",
      "jobs": {skewed_jobs},
      "reservation_timeouts": {skewed_timeouts},
      "timeline_events": {skewed_events},
      "heap_wall_ms": {skewed_heap_ms:.1},
      "calendar_wall_ms": {skewed_cal_ms:.1},
      "ladder_wall_ms": {skewed_lad_ms:.1},
      "ladder_vs_calendar_speedup": {skewed_ladder_vs_calendar:.3},
      "required_ladder_margin": {LADDER_VS_CALENDAR_MARGIN}
    }},
    "previous": {timeline_prev}
  }},
  "scenario_matrix": {{
    "description": "fault-injection scenario matrix (p2pmpi_bench::scenario, the scenario_runner binary) at the CI scale: each scenario replays the compressed day with one named adversity (correlated site or rack outage, 10x flash crowd, link degradation, supernode crash, grant-leak stress, composed outage-in-crowd at the nominal and adversarially-searched phase) and is judged against explicit graceful-degradation criteria plus per-scenario recovery-time SLOs; any failed verdict fails non-zero, and a recovery time more than 20% past the previous block's trips the trend gate",
    "compress": 24,
    "rate_scale": 0.05,
    "seed": 2008,
    "wall_s": {scenario_wall_s:.1},
    "all_passed": {scenario_all_passed},
{scenario_trend_json}
    "scenarios": [
{scenario_rows_json}
    ],
    "previous": {scenario_prev}
  }},
  "sustained_throughput": {{
    "description": "sharded week-scale driver (p2pmpi_bench::shard, the week_sweep binary): the paper day tiled across 7 days, compressed 168x, replayed over {SUSTAINED_SHARDS} site-aligned shard timelines running on scoped threads between conservative cross-shard barriers, versus the bit-identical single-thread driver; the speedup gate is architecture-aware (hw_threads >= 2 requires {SUSTAINED_PARALLEL_EFFICIENCY} x min(shards, hw_threads); a single hardware thread only bounds thread/barrier overhead at {SUSTAINED_SINGLE_THREAD_FLOOR}x) and full runs fail non-zero when events_per_sec drops more than {SUSTAINED_DROP_LIMIT} below the previous block",
    "shards": {sus_shards},
    "hw_threads": {sus_hw},
    "days": 7,
    "compress": 168,
    "rate_scale": {sus_rate},
    "jobs": {sus_jobs},
    "timeline_events": {sus_events},
    "barriers": {sus_barriers},
    "cross_jobs_submitted": {sus_cross_submitted},
    "cross_jobs_placed": {sus_cross_succeeded},
    "parallel_wall_ms": {sus_par_ms:.1},
    "single_thread_wall_ms": {sus_seq_ms:.1},
    "events_per_sec": {sus_eps:.0},
    "jobs_per_sec": {sus_jps:.1},
    "speedup": {sus_speedup:.2},
    "target_speedup": 4.0,
    "drop_limit": {SUSTAINED_DROP_LIMIT},
    "previous": {sustained_prev}
  }},
  "placement_search": {{
    "description": "model-driven placement search (p2pmpi_bench::search annealing over p2pmpi_mpi::model::PlacementCost): delta evaluation re-costs a move in O(affected ranks) against cached per-segment clocks instead of a full model replay; gates (all fail non-zero): delta >= {PLACEMENT_DELTA_SPEEDUP_MIN}x cheaper per move than the ModelComm replay at EP@256, searched never worse than best-of(concentrate, spread) on the standard grids, > {PLACEMENT_SKEWED_IMPROVEMENT_MIN} better on the skewed grid, and the EP@1024 10k-move 4-chain search within {PLACEMENT_SEARCH_WALL_BUDGET_S}s wall",
    "delta_vs_full_replay": {{
      "kernel": "Ep",
      "ranks": {ps_delta_ranks},
      "schedule_ops": {ps_schedule_ops},
      "delta_ns_per_move": {ps_delta_ns:.0},
      "avg_delta_ops_per_move": {ps_avg_ops:.1},
      "full_replay_ns": {ps_replay_ns:.0},
      "speedup": {ps_speedup:.1},
      "required_speedup": {PLACEMENT_DELTA_SPEEDUP_MIN}
    }},
    "standard_grid": [
{search_cases_json}
    ],
    "skewed_grid": {{
      "description": "skewed_table1: per-core rates skewed so the RTT booking order anti-correlates with speed; both fixed strategies are provably poor here and the search must win clearly",
      "kernel": "Ep",
      "ranks": {skewed_ranks},
      "concentrate_s": {skewed_conc:.6},
      "spread_s": {skewed_spread:.6},
      "searched_s": {skewed_best:.6},
      "improvement_vs_best_of": {skewed_improvement:.4},
      "required_improvement": {PLACEMENT_SKEWED_IMPROVEMENT_MIN}
    }},
    "wall_budget": {{
      "kernel": "Ep",
      "ranks": 1024,
      "moves_per_chain": 10000,
      "chains": 4,
      "moves_evaluated": {budget_moves},
      "searched_s": {budget_best:.6},
      "wall_s": {budget_wall_s:.2},
      "budget_s": {PLACEMENT_SEARCH_WALL_BUDGET_S}
    }},
    "previous": {placement_prev}
  }},
  "is_search": {{
    "description": "the ring-dominated IS schedule at 1024 ranks through the same incremental evaluator: the compact pooled transfer tables (p2pmpi_mpi::model, O(ranks x sites) bytes vs the O(steps x ranks^2) rows they replaced) must keep a delta move >= {IS_SEARCH_DELTA_SPEEDUP_MIN}x cheaper than a full ModelComm replay, hold the ring caches under ring_cache_bytes_max, never lose to best-of(concentrate, spread), and finish the at-scale search inside search_budget_s wall (full runs) — all fail non-zero",
    "kernel": "Is",
    "ranks": {is_ranks},
    "schedule_ops": {is_schedule_ops},
    "delta_ns_per_move": {is_delta_ns:.0},
    "avg_delta_ops_per_move": {is_avg_ops:.1},
    "full_replay_ns": {is_replay_ns:.0},
    "speedup": {is_speedup:.1},
    "required_speedup": {IS_SEARCH_DELTA_SPEEDUP_MIN},
    "ring_cache_bytes": {is_ring_bytes},
    "ring_cache_bytes_max": {IS_SEARCH_RING_CACHE_BYTES_MAX},
    "uniform_rings": {{
      "description": "the move-invariant Uniform specialisation (p2pmpi_mpi::model::RingTable::Uniform): a uniform ring's transfer table is a site x site matrix keyed by static topology data only — never journaled by a move — versus the per-rank tsame + site-row PerSrc layout it would otherwise occupy; the savings floor fails non-zero",
      "uniform_ring_tables": {is_uniform_tables},
      "uniform_ring_bytes": {is_uniform_bytes},
      "per_src_equivalent_bytes": {is_uniform_per_src},
      "required_savings": {IS_SEARCH_UNIFORM_SAVINGS_MIN}
    }},
    "search": {{
      "moves_per_chain": {is_search_moves},
      "chains": {is_search_chains},
      "concentrate_s": {is_search_conc:.6},
      "spread_s": {is_search_spread:.6},
      "searched_s": {is_search_best:.6},
      "improvement_vs_best_of": {is_search_improvement:.4},
      "hosts_used": {is_search_hosts},
      "wall_s": {is_search_wall_s:.2},
      "search_budget_s": {IS_SEARCH_WALL_BUDGET_S}
    }},
    "previous": {is_search_prev}
  }},
  "online_placement": {{
    "description": "the day sweep's searched booking strategy (StrategyKind::Searched through SweepCore): every arrival re-runs the annealing search over the grid's current free cores, reusing one pooled warm PlacementCost + Fenwick free-slot index per kernel shape via rebase instead of rebuilding (p2pmpi_bench::search::SearchContext; warm-reuse contract in p2pmpi_mpi::model); gates (all fail non-zero): the warm per-arrival prepare >= {ONLINE_WARM_PREPARE_SPEEDUP_MIN}x cheaper than the cold one in the steady-state churn benchmark with bit-identical warm/cold plans, the warm and cold searched days bit-identical, the searched day's mean job makespan >= required_improvement better than the best fixed strategy, and (full runs) the searched day inside day_wall_budget_s",
    "prepare": {{
      "description": "per-arrival phase 1 in the steady-state regime the pool targets: {ONLINE_BENCH_CHURN_HOSTS} whole hosts change hands between consecutive arrivals of the day-mix shapes ({ONLINE_BENCH_BUSY_HOSTS} busy at start), so the repaired seed displaces only a handful of ranks and the warm PlacementCost::rebase stays on the delta path; warm = rebase + free-slot resync of the pooled shape, cold = the same arrival sequence with the pool dropped every time, paying a schedule compile + full evaluator build; the annealing walk after prepare is common to both paths and the two must produce bit-identical plans",
      "steady_state_arrivals": {op_bench_arrivals},
      "churn_hosts_per_arrival": {ONLINE_BENCH_CHURN_HOSTS},
      "warm_prepare_us": {op_warm_us:.1},
      "cold_prepare_us": {op_cold_us:.1},
      "prepare_speedup": {op_speedup:.1},
      "required_speedup": {ONLINE_WARM_PREPARE_SPEEDUP_MIN},
      "warm_equals_cold_plans": {op_plans_equal}
    }},
    "day": {{
      "description": "the CI-smoke day (paper-day shape compressed 24x at 5% arrival rates, ~1.1k jobs) under each booking strategy; mean_hold_s is the mean modeled kernel makespan of the placed jobs",
      "compress": 24,
      "rate_scale": 0.05,
      "search_moves_per_arrival": {op_moves},
      "concentrate": {{ "submitted": {op_conc_sub}, "succeeded": {op_conc_suc}, "mean_hold_s": {op_conc_hold:.3} }},
      "spread": {{ "submitted": {op_spread_sub}, "succeeded": {op_spread_suc}, "mean_hold_s": {op_spread_hold:.3} }},
      "searched": {{
        "submitted": {op_sea_sub},
        "succeeded": {op_sea_suc},
        "mean_hold_s": {op_sea_hold:.3},
        "wall_s": {op_sea_wall_s:.2},
        "arrivals": {op_arrivals},
        "planned": {op_planned},
        "infeasible": {op_infeasible},
        "warm_rebases": {op_warm_rebases},
        "cold_builds": {op_cold_builds},
        "moves_evaluated": {op_moves_evaluated},
        "prepare_wall_ms": {op_prepare_ms:.1},
        "anneal_wall_ms": {op_anneal_ms:.1},
        "amortized_search_us_per_arrival": {op_amortized_us:.1}
      }},
      "amortized_prepare": {{
        "description": "day-amortized prepare diagnostics (not gated on the speedup floor — the bursty day's arrival-weighted contention displaces most ranks on most arrivals, so the wholesale rebase fallback caps the warm prepare at the rebuild cost; see the prepare block for the gated steady-state regime): warm = the searched day's prepare nanos per searching arrival, cold = the same day replayed with the pool disabled",
        "warm_prepare_us": {op_day_warm_us:.1},
        "cold_prepare_us": {op_day_cold_us:.1},
        "cold_prepare_wall_ms": {op_cold_prepare_ms:.1},
        "prepare_speedup": {op_day_speedup:.1},
        "warm_equals_cold_days": {op_exact}
      }},
      "searched_mean_hold_s": {op_sea_hold:.3},
      "improvement_vs_best_fixed": {op_improvement:.4},
      "required_improvement": {ONLINE_DAY_IMPROVEMENT_MIN},
      "day_wall_budget_s": {ONLINE_DAY_WALL_BUDGET_S}
    }},
    "previous": {online_prev}
  }}
}}
"#
    );

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");

    // Loud failure on model drift: the analytical backend is only useful
    // while it tracks the executed runtime, so a divergence outside the
    // documented tolerances fails the report (and CI) outright.
    let mut drifted = false;
    // Same for the event engine, gated per configuration: the calendar
    // queue — the sweep-scale configuration the arena store exists for —
    // must beat the seed's boxed-closure heap outright, and the binary-heap
    // configuration must stay within ARENA_HEAP_VS_BOXED_MIN of the
    // baseline — the packed-ticket sort key reclaimed the old slab-lookup
    // churn regression, and this gate keeps it reclaimed.
    if arena_cal_eps < boxed_eps {
        eprintln!(
            "FAIL: arena calendar queue ({arena_cal_eps:.0} events/s) is slower than the boxed-closure baseline ({boxed_eps:.0} events/s)"
        );
        drifted = true;
    }
    if arena_heap_eps < ARENA_HEAP_VS_BOXED_MIN * boxed_eps {
        eprintln!(
            "FAIL: arena binary heap ({arena_heap_eps:.0} events/s) fell below \
             {ARENA_HEAP_VS_BOXED_MIN}x the boxed-closure baseline ({boxed_eps:.0} events/s)"
        );
        drifted = true;
    }
    if ep_div > EP_DIVERGENCE_TOLERANCE {
        eprintln!(
            "FAIL: EP modeled-vs-executed divergence {ep_div:.3e} exceeds tolerance {EP_DIVERGENCE_TOLERANCE:e}"
        );
        drifted = true;
    }
    if is_div > IS_DIVERGENCE_TOLERANCE {
        eprintln!(
            "FAIL: IS modeled-vs-executed divergence {is_div:.4} exceeds tolerance {IS_DIVERGENCE_TOLERANCE}"
        );
        drifted = true;
    }
    // The relative queue gates (ladder-vs-calendar on the skewed trace, the
    // sweep default within noise of the best, allocation-free brokering) …
    drifted |= check_queue_gates(&q);
    // … the placement-search gates (delta speedup, search quality, the
    // skewed-grid margin, the wall budget) …
    drifted |= check_placement_search_gates(&ps);
    // … the IS-at-scale gates (ring-delta speedup, the ring-cache memory
    // ceiling, the Uniform savings floor, search quality and wall budget
    // at 1024 ranks) …
    drifted |= check_is_search_gates(&is_search);
    // … the online-placement gates (warm-prepare speedup, warm == cold
    // exactness, the searched day's improvement and wall budget) …
    drifted |= check_online_placement_gates(&op);
    // … the graceful-degradation verdicts of the fault-injection matrix,
    // plus the recovery-time trajectory against the previous report …
    drifted |= check_scenario_gates(&scenario_verdicts);
    drifted |= check_recovery_trend(&scenario_verdicts, prior);
    // … the architecture-aware sharded-driver speedup …
    drifted |= check_sustained_gates(&sus);
    // … the trajectory gate: sustained events/s may not silently erode
    // between consecutive full reports on the same machine …
    if let Some(prev_eps) = prev_sustained_eps {
        if sus.events_per_sec < prev_eps * (1.0 - SUSTAINED_DROP_LIMIT) {
            eprintln!(
                "FAIL: sustained sharded throughput ({:.0} events/s) dropped more than \
                 {:.0}% below the previous report ({prev_eps:.0} events/s)",
                sus.events_per_sec,
                SUSTAINED_DROP_LIMIT * 100.0
            );
            drifted = true;
        }
    }
    // … plus the machine-absolute one only the full run can judge: putting
    // every reservation's timeout on the timeline must not cost more than
    // TIMEOUT_TIMELINE_LIMIT× the analytical-timeout day on the best queue.
    if day_best_ms > ANALYTICAL_DAY_WALL_MS * TIMEOUT_TIMELINE_LIMIT {
        eprintln!(
            "FAIL: event-driven full day ({day_best_ms:.1} ms on its best queue) exceeded \
             {TIMEOUT_TIMELINE_LIMIT}x the analytical-timeout baseline ({ANALYTICAL_DAY_WALL_MS} ms)"
        );
        drifted = true;
    }
    if drifted {
        std::process::exit(1);
    }
}
