//! Hot-path performance report.
//!
//! Measures the co-allocation hot path on the warm Grid'5000 testbed and
//! writes `BENCH_hotpath.json` so successive PRs accumulate a perf
//! trajectory.  Five measurements:
//!
//! 1. **ranking** — walking the booking order of a warm 349-peer cache via
//!    the incremental index versus the seed's naive sort-per-read.
//! 2. **allocate_warm** — full job submissions (book → broker → distribute →
//!    start → complete) with tracing off and on, compared against the seed
//!    tree's measured cost for the identical workload.
//! 3. **job_sweep_poisson** — throughput of a Poisson-arriving sweep, the
//!    workload the Figure 2–4 reproductions submit at scale.
//! 4. **event_engine** — steady-state events/s of the discrete-event queue:
//!    the seed's boxed-closure binary heap (reconstructed inline here as the
//!    baseline) versus the arena-backed store behind a binary heap and a
//!    calendar queue (`p2pmpi_simgrid::event`).
//! 5. **modeled_collectives** — agreement between the executed thread-per-
//!    rank runtime and the LogGP analytical backend on the same placements
//!    (EP must match to [`EP_DIVERGENCE_TOLERANCE`], IS — whose alltoallv
//!    block sizes the model approximates as balanced — to
//!    [`IS_DIVERGENCE_TOLERANCE`]; the report **exits non-zero** if either
//!    bound is violated), plus modeled-sweep throughput at 1k–2k ranks.
//! 6. **sweep_engine** — wall time of the day-scale submission trace
//!    (compressed to ~2h virtual / ~1.8k jobs) on the overlay's event
//!    timeline, binary heap vs calendar queue, best of 3 interleaved
//!    rounds.  The calendar queue is the sweep default, so the report
//!    **exits non-zero** if it loses to the heap by more than the
//!    documented [`SWEEP_ENGINE_NOISE_MARGIN`] (the trace's wall time is
//!    dominated by the co-allocations themselves, identical under both
//!    kinds, so the margin only absorbs scheduler noise).
//!
//! Usage:
//! `cargo run --release -p p2pmpi-bench --bin perf_report [out.json] [--seed-allocate-ns N]`
//!
//! The seed baseline defaults to the median of five runs of the seed tree
//! (commit `fa2eb37`, rebuilt with this workspace's manifests and vendored
//! deps, same machine) driving the identical warm 100-process concentrate
//! workload.  To re-measure it: check out the seed commit in a worktree,
//! copy in `Cargo.toml`, `crates/*/Cargo.toml` and `vendor/`, add a driver
//! that loops `CoAllocator::allocate` on `grid5000_topology()` with a
//! disabled tracer, and pass its ns/job via `--seed-allocate-ns`.

use p2pmpi_bench::experiments::{modeled_kernel_times, run_kernel_once, Fig4Kernel, Fig4Settings};
use p2pmpi_bench::workload::{run_day_sweep, DayProfile, DaySweepConfig, PoissonArrivals};
use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::testbed::{grid5000_testbed, Grid5000Testbed};
use p2pmpi_simgrid::event::{EventQueue, QueueKind};
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::rngutil::seeded;
use p2pmpi_simgrid::time::SimTime;
use rand::Rng;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::time::Instant;

const RANKING_REPS: usize = 2_000;
const ALLOC_JOBS: usize = 400;
const SWEEP_JOBS: usize = 1_000;

/// Median warm-allocate cost of the seed tree (ns/job, tracing disabled) for
/// the same workload; see the module docs for how to re-measure.
const SEED_ALLOCATE_NS_PER_JOB: f64 = 65_556.0;

/// Pending-event population held during the event-engine churn.
const ENGINE_POPULATION: usize = 10_000;
/// Pop-push cycles measured per event-engine variant.
const ENGINE_CHURN: usize = 300_000;

/// Maximum relative |modeled − executed| / executed divergence tolerated for
/// EP.  EP's communication is data-independent, so the model replays the
/// executed clock arithmetic exactly; anything above float-noise level means
/// the model's schedule has drifted from `Comm`'s.
const EP_DIVERGENCE_TOLERANCE: f64 = 1e-9;
/// Tolerance for IS, whose alltoallv key-redistribution volumes the model
/// approximates as perfectly balanced (see `p2pmpi_nas::is::is_model`).  The
/// documented bound is 10%, deliberately loose; the divergence observed at
/// this report's IS@32 / divisor-64 point is ~3e-5 (0.003%), because the
/// hump-shaped key distribution redistributes almost uniformly.
const IS_DIVERGENCE_TOLERANCE: f64 = 0.10;

fn ns_per_iter(total_ns: u128, iters: usize) -> f64 {
    total_ns as f64 / iters.max(1) as f64
}

/// One full job submission, completed immediately so the next job finds the
/// gatekeepers free.  Returns the number of booked hosts.
fn submit_one(tb: &mut Grid5000Testbed, allocator: &CoAllocator, request: &JobRequest) -> usize {
    let report = allocator.allocate(&mut tb.overlay, tb.submitter, request);
    if let Ok(alloc) = &report.outcome {
        for h in &alloc.hosts {
            tb.overlay.complete_job(h.peer, report.key);
        }
    }
    report.booked
}

fn measure_ranking(tb: &Grid5000Testbed) -> (f64, f64) {
    let cache = &tb.overlay.node(tb.submitter).cache;

    let start = Instant::now();
    for _ in 0..RANKING_REPS {
        // The seed's booking order: collect every entry, sort, materialize.
        black_box(cache.sorted_by_latency_naive().len());
    }
    let naive_ns = ns_per_iter(start.elapsed().as_nanos(), RANKING_REPS);

    let start = Instant::now();
    for _ in 0..RANKING_REPS {
        // The incremental index: walk, no sort, no allocation.
        black_box(cache.ranking_iter().fold(0usize, |acc, p| acc + p.0));
    }
    let incremental_ns = ns_per_iter(start.elapsed().as_nanos(), RANKING_REPS);

    (naive_ns, incremental_ns)
}

fn measure_allocate(tb: &mut Grid5000Testbed) -> (f64, f64) {
    let allocator = CoAllocator::new();
    let request = JobRequest::new(100, StrategyKind::Concentrate, "hostname");

    // Warm up scratch buffers and caches.
    for _ in 0..10 {
        submit_one(tb, &allocator, &request);
    }

    tb.overlay.tracer().set_enabled(false);
    let start = Instant::now();
    for _ in 0..ALLOC_JOBS {
        submit_one(tb, &allocator, &request);
    }
    let off_ns = ns_per_iter(start.elapsed().as_nanos(), ALLOC_JOBS);

    tb.overlay.tracer().set_enabled(true);
    let start = Instant::now();
    for _ in 0..ALLOC_JOBS {
        submit_one(tb, &allocator, &request);
    }
    let on_ns = ns_per_iter(start.elapsed().as_nanos(), ALLOC_JOBS);
    tb.overlay.tracer().clear();
    tb.overlay.tracer().set_enabled(false);

    (off_ns, on_ns)
}

fn measure_sweep(tb: &mut Grid5000Testbed) -> (f64, f64) {
    let allocator = CoAllocator::new();
    let request = JobRequest::new(100, StrategyKind::Concentrate, "hostname");
    let mut arrivals = PoissonArrivals::new(1.0 / 30.0, 23);
    tb.overlay.tracer().set_enabled(false);
    let start = Instant::now();
    for _ in 0..SWEEP_JOBS {
        let gap = arrivals.next_gap();
        tb.overlay.advance(gap);
        submit_one(tb, &allocator, &request);
    }
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let jobs_per_sec = SWEEP_JOBS as f64 / wall.as_secs_f64();
    (wall_ms, jobs_per_sec)
}

/// One schedulable action for the engine benches, matching
/// `p2pmpi_simgrid::engine::Action`'s shape (a boxed `FnOnce`).
type BenchAction = Box<dyn FnOnce() -> u64>;

/// The seed tree's event queue, reconstructed as the baseline: the boxed
/// closure lives *inside* the heap entry, so every sift moves a fat entry
/// and the heap buffer is the only storage.
struct SeedEntry {
    time: SimTime,
    seq: u64,
    payload: BenchAction,
}

impl PartialEq for SeedEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for SeedEntry {}
impl PartialOrd for SeedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SeedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Steady-state churn: hold `ENGINE_POPULATION` pending events, then pop the
/// earliest and push a replacement `ENGINE_CHURN` times (the hold-and-churn
/// pattern of a periodic-behaviour simulation).  Returns events/s.
fn measure_engine_events_per_sec(variant: &str) -> f64 {
    let mut rng = seeded(0xE4E47);
    let mut gap = move || SimTime::from_nanos(rng.gen_range(1u64..2_000_000));
    let action = |i: u64| -> BenchAction { Box::new(move || i) };

    let mut sum = 0u64;
    let start;
    match variant {
        "boxed_heap" => {
            let mut heap: BinaryHeap<SeedEntry> = BinaryHeap::new();
            let mut seq = 0u64;
            let push = |heap: &mut BinaryHeap<SeedEntry>, time: SimTime, seq: &mut u64| {
                heap.push(SeedEntry {
                    time,
                    seq: *seq,
                    payload: action(*seq),
                });
                *seq += 1;
            };
            for _ in 0..ENGINE_POPULATION {
                let t = gap();
                push(&mut heap, t, &mut seq);
            }
            start = Instant::now();
            for _ in 0..ENGINE_CHURN {
                let e = heap.pop().expect("population never drains");
                sum += (e.payload)();
                let t = e.time + gap().saturating_since(SimTime::ZERO);
                push(&mut heap, t, &mut seq);
            }
        }
        kind => {
            let kind = match kind {
                "arena_heap" => QueueKind::BinaryHeap,
                "arena_calendar" => QueueKind::Calendar,
                other => panic!("unknown event-engine bench variant {other:?}"),
            };
            let mut q: EventQueue<BenchAction> =
                EventQueue::with_capacity_and_kind(ENGINE_POPULATION, kind);
            for i in 0..ENGINE_POPULATION {
                q.push(gap(), action(i as u64));
            }
            start = Instant::now();
            for i in 0..ENGINE_CHURN {
                let e = q.pop().expect("population never drains");
                sum += (e.payload)();
                let t = e.time + gap().saturating_since(SimTime::ZERO);
                q.push(t, action(i as u64));
            }
        }
    }
    black_box(sum);
    ENGINE_CHURN as f64 / start.elapsed().as_secs_f64()
}

/// Best-of-N interleaved rounds per variant: the engine bench runs in a
/// shared environment where a single shot can be perturbed by scheduling
/// noise, and interleaving keeps slow phases from biasing one variant.
fn measure_engine_all(rounds: usize) -> (f64, f64, f64) {
    let variants = ["boxed_heap", "arena_heap", "arena_calendar"];
    let mut best = [0f64; 3];
    for _ in 0..rounds {
        for (i, v) in variants.iter().enumerate() {
            best[i] = best[i].max(measure_engine_events_per_sec(v));
        }
    }
    (best[0], best[1], best[2])
}

/// Executed-vs-modeled makespans of one Figure 4 point on the same
/// co-allocated placement; returns (executed_s, modeled_s, divergence).
fn measure_agreement(kernel: Fig4Kernel, n: u32, settings: &Fig4Settings) -> (f64, f64, f64) {
    let strategy = StrategyKind::Concentrate;
    let executed = run_kernel_once(kernel, strategy, n, settings);
    let modeled = run_kernel_once(kernel, strategy, n, &settings.modeled());
    assert!(
        executed.verified,
        "{kernel:?} executed run failed to verify"
    );
    let e = executed.makespan.as_secs_f64();
    let m = modeled.makespan.as_secs_f64();
    (e, m, (m - e).abs() / e)
}

/// Wall-clock of a modeled sweep point at `ranks`; returns (virtual_s, wall_ms).
fn measure_modeled_sweep(kernel: Fig4Kernel, ranks: u32, settings: &Fig4Settings) -> (f64, f64) {
    let start = Instant::now();
    let points = modeled_kernel_times(kernel, StrategyKind::Spread, &[ranks], settings, None);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (points[0].makespan.as_secs_f64(), wall_ms)
}

/// Noise margin for the sweep-engine heap-vs-calendar comparison (the trace
/// is dominated by co-allocation work identical under both queue kinds).
const SWEEP_ENGINE_NOISE_MARGIN: f64 = 0.10;

/// The reduced day trace the sweep-engine comparison replays: the paper-day
/// burst shape compressed to ~2 h virtual at ~1.8k jobs.
fn sweep_engine_config(kind: QueueKind) -> DaySweepConfig {
    let mut cfg = DaySweepConfig::new(StrategyKind::Concentrate);
    cfg.profile = DayProfile::paper_day().compressed(12.0);
    cfg.profile = cfg.profile.scaled(1.8 / 21.7); // ~1.8k of the day's ~21.7k jobs
    cfg.queue = kind;
    cfg
}

/// Best-of-N interleaved wall times of the reduced day trace per queue kind;
/// returns (heap_wall_ms, calendar_wall_ms, jobs).
fn measure_sweep_engine(rounds: usize) -> (f64, f64, usize) {
    let mut best = [f64::INFINITY; 2];
    let mut jobs = 0;
    for _ in 0..rounds {
        for (i, kind) in [QueueKind::BinaryHeap, QueueKind::Calendar]
            .iter()
            .enumerate()
        {
            let cfg = sweep_engine_config(*kind);
            let start = Instant::now();
            let result = run_day_sweep(&cfg);
            best[i] = best[i].min(start.elapsed().as_secs_f64() * 1e3);
            jobs = result.submitted;
        }
    }
    (best[0], best[1], jobs)
}

fn main() {
    let mut out_path = "BENCH_hotpath.json".to_string();
    let mut seed_allocate_ns = SEED_ALLOCATE_NS_PER_JOB;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed-allocate-ns" => {
                seed_allocate_ns = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed-allocate-ns takes a number");
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown option: {flag}");
                eprintln!("usage: perf_report [out.json] [--seed-allocate-ns N]");
                std::process::exit(2);
            }
            other => out_path = other.to_string(),
        }
    }

    eprintln!("building warm Grid'5000 testbed (350 hosts)...");
    let mut tb = grid5000_testbed(17, NoiseModel::disabled());
    let hosts = tb.topology.host_count();
    let cached = tb.overlay.node(tb.submitter).cache.len();

    eprintln!("measuring booking-order ranking ({RANKING_REPS} reps)...");
    let (naive_ns, incremental_ns) = measure_ranking(&tb);

    eprintln!("measuring warm allocate ({ALLOC_JOBS} jobs per variant)...");
    let (off_ns, on_ns) = measure_allocate(&mut tb);

    eprintln!("measuring Poisson job sweep ({SWEEP_JOBS} jobs)...");
    let (sweep_wall_ms, sweep_jobs_per_sec) = measure_sweep(&mut tb);

    eprintln!(
        "measuring event-engine throughput ({ENGINE_CHURN} pop/push cycles per variant, best of 3 interleaved rounds)..."
    );
    let (boxed_eps, arena_heap_eps, arena_cal_eps) = measure_engine_all(3);

    eprintln!("measuring modeled-vs-executed collective agreement (EP@64, IS@32)...");
    let agreement_settings = Fig4Settings {
        is_sample_divisor: 64,
        ..Fig4Settings::default()
    };
    let (ep_exec_s, ep_model_s, ep_div) =
        measure_agreement(Fig4Kernel::Ep, 64, &agreement_settings);
    let (is_exec_s, is_model_s, is_div) =
        measure_agreement(Fig4Kernel::Is, 32, &agreement_settings);

    eprintln!("measuring modeled sweep throughput (EP@2048, IS@1024)...");
    let sweep_settings = Fig4Settings::default();
    let (ep_sweep_virtual_s, ep_sweep_wall_ms) =
        measure_modeled_sweep(Fig4Kernel::Ep, 2048, &sweep_settings);
    let (is_sweep_virtual_s, is_sweep_wall_ms) =
        measure_modeled_sweep(Fig4Kernel::Is, 1024, &sweep_settings);

    eprintln!(
        "measuring day-trace sweep engine, heap vs calendar (best of 3 interleaved rounds)..."
    );
    let (sweep_heap_ms, sweep_cal_ms, sweep_engine_jobs) = measure_sweep_engine(3);
    let sweep_cal_vs_heap = sweep_heap_ms / sweep_cal_ms.max(1e-9);

    let ranking_speedup = naive_ns / incremental_ns.max(1.0);
    let alloc_speedup = seed_allocate_ns / off_ns.max(1.0);
    let arena_vs_boxed = arena_heap_eps / boxed_eps.max(1.0);
    let calendar_vs_boxed = arena_cal_eps / boxed_eps.max(1.0);

    let json = format!(
        r#"{{
  "bench": "hotpath",
  "generated_by": "perf_report (cargo run --release -p p2pmpi-bench --bin perf_report)",
  "testbed": {{ "hosts": {hosts}, "cached_peers": {cached} }},
  "ranking": {{
    "description": "booking order of the warm submitter cache, per read; before = the seed's sort-per-read (still available as sorted_by_latency_naive), after = the incremental index",
    "before_naive_sort_ns": {naive_ns:.1},
    "after_incremental_index_ns": {incremental_ns:.1},
    "speedup": {ranking_speedup:.1}
  }},
  "allocate_warm": {{
    "description": "full job submission (100 procs, concentrate) on the warm cache; before = seed tree measured with identical workload/vendored deps (see perf_report docs)",
    "jobs_per_variant": {ALLOC_JOBS},
    "before_seed_ns_per_job": {seed_allocate_ns:.0},
    "after_tracing_off_ns_per_job": {off_ns:.0},
    "after_tracing_on_ns_per_job": {on_ns:.0},
    "speedup_tracing_off_vs_seed": {alloc_speedup:.2}
  }},
  "job_sweep_poisson": {{
    "description": "Poisson arrivals (mean gap 30 s virtual), tracing off",
    "jobs": {SWEEP_JOBS},
    "wall_ms": {sweep_wall_ms:.1},
    "jobs_per_sec": {sweep_jobs_per_sec:.0}
  }},
  "event_engine": {{
    "description": "steady-state pop/push churn over a {ENGINE_POPULATION}-event population, best of 3 interleaved rounds; before = the seed's boxed-closure binary heap (payload inside the heap entry), after = the arena-backed EventStore behind each queue kind",
    "churn_events": {ENGINE_CHURN},
    "before_boxed_heap_events_per_sec": {boxed_eps:.0},
    "after_arena_heap_events_per_sec": {arena_heap_eps:.0},
    "after_arena_calendar_events_per_sec": {arena_cal_eps:.0},
    "arena_heap_vs_boxed_speedup": {arena_vs_boxed:.2},
    "arena_calendar_vs_boxed_speedup": {calendar_vs_boxed:.2}
  }},
  "modeled_collectives": {{
    "description": "LogGP analytical backend (p2pmpi_mpi::model) vs the executed thread-per-rank runtime on identical co-allocated placements; divergence = |modeled - executed| / executed of the virtual makespan",
    "ep": {{
      "processes": 64,
      "executed_virtual_s": {ep_exec_s:.6},
      "modeled_virtual_s": {ep_model_s:.6},
      "divergence": {ep_div:.9},
      "tolerance": {EP_DIVERGENCE_TOLERANCE:e}
    }},
    "is": {{
      "processes": 32,
      "executed_virtual_s": {is_exec_s:.6},
      "modeled_virtual_s": {is_model_s:.6},
      "divergence": {is_div:.6},
      "tolerance": {IS_DIVERGENCE_TOLERANCE}
    }},
    "modeled_sweep": {{
      "description": "one modeled Figure 4 point at sweep scale (spread placement on the auto-scaled Table-1 grid), wall-clock per point",
      "ep_ranks": 2048,
      "ep_virtual_s": {ep_sweep_virtual_s:.3},
      "ep_wall_ms": {ep_sweep_wall_ms:.1},
      "is_ranks": 1024,
      "is_virtual_s": {is_sweep_virtual_s:.3},
      "is_wall_ms": {is_sweep_wall_ms:.1}
    }}
  }},
  "sweep_engine": {{
    "description": "day-trace sweep harness (fig23_sweep driver, paper-day profile compressed to ~2h virtual) on the overlay's event timeline, binary heap vs calendar queue, best of 3 interleaved rounds; fails non-zero if the calendar (the sweep default) loses past the noise margin",
    "jobs": {sweep_engine_jobs},
    "heap_wall_ms": {sweep_heap_ms:.1},
    "calendar_wall_ms": {sweep_cal_ms:.1},
    "calendar_vs_heap_speedup": {sweep_cal_vs_heap:.3},
    "noise_margin": {SWEEP_ENGINE_NOISE_MARGIN}
  }}
}}
"#
    );

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");

    // Loud failure on model drift: the analytical backend is only useful
    // while it tracks the executed runtime, so a divergence outside the
    // documented tolerances fails the report (and CI) outright.
    let mut drifted = false;
    // Same for the event engine, gated per configuration: the calendar
    // queue — the sweep-scale configuration the arena store exists for —
    // must beat the seed's boxed-closure heap outright, and the binary-heap
    // configuration (where the slab is pure overhead on top of a still-boxed
    // closure; nothing outside these benches drives it today) must stay
    // within a documented 15% of the baseline so the slab cost cannot creep.
    if arena_cal_eps < boxed_eps {
        eprintln!(
            "FAIL: arena calendar queue ({arena_cal_eps:.0} events/s) is slower than the boxed-closure baseline ({boxed_eps:.0} events/s)"
        );
        drifted = true;
    }
    if arena_heap_eps < 0.85 * boxed_eps {
        eprintln!(
            "FAIL: arena binary heap ({arena_heap_eps:.0} events/s) fell more than 15% below the boxed-closure baseline ({boxed_eps:.0} events/s)"
        );
        drifted = true;
    }
    if ep_div > EP_DIVERGENCE_TOLERANCE {
        eprintln!(
            "FAIL: EP modeled-vs-executed divergence {ep_div:.3e} exceeds tolerance {EP_DIVERGENCE_TOLERANCE:e}"
        );
        drifted = true;
    }
    if is_div > IS_DIVERGENCE_TOLERANCE {
        eprintln!(
            "FAIL: IS modeled-vs-executed divergence {is_div:.4} exceeds tolerance {IS_DIVERGENCE_TOLERANCE}"
        );
        drifted = true;
    }
    if sweep_cal_ms > sweep_heap_ms * (1.0 + SWEEP_ENGINE_NOISE_MARGIN) {
        eprintln!(
            "FAIL: calendar-queue day sweep ({sweep_cal_ms:.1} ms) lost to the binary heap \
             ({sweep_heap_ms:.1} ms) past the {SWEEP_ENGINE_NOISE_MARGIN} noise margin"
        );
        drifted = true;
    }
    if drifted {
        std::process::exit(1);
    }
}
