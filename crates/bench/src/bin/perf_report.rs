//! Hot-path performance report.
//!
//! Measures the co-allocation hot path on the warm Grid'5000 testbed and
//! writes `BENCH_hotpath.json` so successive PRs accumulate a perf
//! trajectory.  Three measurements:
//!
//! 1. **ranking** — walking the booking order of a warm 349-peer cache via
//!    the incremental index versus the seed's naive sort-per-read.
//! 2. **allocate_warm** — full job submissions (book → broker → distribute →
//!    start → complete) with tracing off and on, compared against the seed
//!    tree's measured cost for the identical workload.
//! 3. **job_sweep_poisson** — throughput of a Poisson-arriving sweep, the
//!    workload the Figure 2–4 reproductions submit at scale.
//!
//! Usage:
//! `cargo run --release -p p2pmpi-bench --bin perf_report [out.json] [--seed-allocate-ns N]`
//!
//! The seed baseline defaults to the median of five runs of the seed tree
//! (commit `fa2eb37`, rebuilt with this workspace's manifests and vendored
//! deps, same machine) driving the identical warm 100-process concentrate
//! workload.  To re-measure it: check out the seed commit in a worktree,
//! copy in `Cargo.toml`, `crates/*/Cargo.toml` and `vendor/`, add a driver
//! that loops `CoAllocator::allocate` on `grid5000_topology()` with a
//! disabled tracer, and pass its ns/job via `--seed-allocate-ns`.

use p2pmpi_bench::sweepgen::PoissonArrivals;
use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::testbed::{grid5000_testbed, Grid5000Testbed};
use p2pmpi_simgrid::noise::NoiseModel;
use std::hint::black_box;
use std::time::Instant;

const RANKING_REPS: usize = 2_000;
const ALLOC_JOBS: usize = 400;
const SWEEP_JOBS: usize = 1_000;

/// Median warm-allocate cost of the seed tree (ns/job, tracing disabled) for
/// the same workload; see the module docs for how to re-measure.
const SEED_ALLOCATE_NS_PER_JOB: f64 = 65_556.0;

fn ns_per_iter(total_ns: u128, iters: usize) -> f64 {
    total_ns as f64 / iters.max(1) as f64
}

/// One full job submission, completed immediately so the next job finds the
/// gatekeepers free.  Returns the number of booked hosts.
fn submit_one(tb: &mut Grid5000Testbed, allocator: &CoAllocator, request: &JobRequest) -> usize {
    let report = allocator.allocate(&mut tb.overlay, tb.submitter, request);
    if let Ok(alloc) = &report.outcome {
        for h in &alloc.hosts {
            tb.overlay.complete_job(h.peer, report.key);
        }
    }
    report.booked
}

fn measure_ranking(tb: &Grid5000Testbed) -> (f64, f64) {
    let cache = &tb.overlay.node(tb.submitter).cache;

    let start = Instant::now();
    for _ in 0..RANKING_REPS {
        // The seed's booking order: collect every entry, sort, materialize.
        black_box(cache.sorted_by_latency_naive().len());
    }
    let naive_ns = ns_per_iter(start.elapsed().as_nanos(), RANKING_REPS);

    let start = Instant::now();
    for _ in 0..RANKING_REPS {
        // The incremental index: walk, no sort, no allocation.
        black_box(cache.ranking_iter().fold(0usize, |acc, p| acc + p.0));
    }
    let incremental_ns = ns_per_iter(start.elapsed().as_nanos(), RANKING_REPS);

    (naive_ns, incremental_ns)
}

fn measure_allocate(tb: &mut Grid5000Testbed) -> (f64, f64) {
    let allocator = CoAllocator::new();
    let request = JobRequest::new(100, StrategyKind::Concentrate, "hostname");

    // Warm up scratch buffers and caches.
    for _ in 0..10 {
        submit_one(tb, &allocator, &request);
    }

    tb.overlay.tracer().set_enabled(false);
    let start = Instant::now();
    for _ in 0..ALLOC_JOBS {
        submit_one(tb, &allocator, &request);
    }
    let off_ns = ns_per_iter(start.elapsed().as_nanos(), ALLOC_JOBS);

    tb.overlay.tracer().set_enabled(true);
    let start = Instant::now();
    for _ in 0..ALLOC_JOBS {
        submit_one(tb, &allocator, &request);
    }
    let on_ns = ns_per_iter(start.elapsed().as_nanos(), ALLOC_JOBS);
    tb.overlay.tracer().clear();
    tb.overlay.tracer().set_enabled(false);

    (off_ns, on_ns)
}

fn measure_sweep(tb: &mut Grid5000Testbed) -> (f64, f64) {
    let allocator = CoAllocator::new();
    let request = JobRequest::new(100, StrategyKind::Concentrate, "hostname");
    let mut arrivals = PoissonArrivals::new(1.0 / 30.0, 23);
    tb.overlay.tracer().set_enabled(false);
    let start = Instant::now();
    for _ in 0..SWEEP_JOBS {
        let gap = arrivals.next_gap();
        tb.overlay.advance(gap);
        submit_one(tb, &allocator, &request);
    }
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let jobs_per_sec = SWEEP_JOBS as f64 / wall.as_secs_f64();
    (wall_ms, jobs_per_sec)
}

fn main() {
    let mut out_path = "BENCH_hotpath.json".to_string();
    let mut seed_allocate_ns = SEED_ALLOCATE_NS_PER_JOB;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed-allocate-ns" => {
                seed_allocate_ns = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed-allocate-ns takes a number");
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown option: {flag}");
                eprintln!("usage: perf_report [out.json] [--seed-allocate-ns N]");
                std::process::exit(2);
            }
            other => out_path = other.to_string(),
        }
    }

    eprintln!("building warm Grid'5000 testbed (350 hosts)...");
    let mut tb = grid5000_testbed(17, NoiseModel::disabled());
    let hosts = tb.topology.host_count();
    let cached = tb.overlay.node(tb.submitter).cache.len();

    eprintln!("measuring booking-order ranking ({RANKING_REPS} reps)...");
    let (naive_ns, incremental_ns) = measure_ranking(&tb);

    eprintln!("measuring warm allocate ({ALLOC_JOBS} jobs per variant)...");
    let (off_ns, on_ns) = measure_allocate(&mut tb);

    eprintln!("measuring Poisson job sweep ({SWEEP_JOBS} jobs)...");
    let (sweep_wall_ms, sweep_jobs_per_sec) = measure_sweep(&mut tb);

    let ranking_speedup = naive_ns / incremental_ns.max(1.0);
    let alloc_speedup = seed_allocate_ns / off_ns.max(1.0);

    let json = format!(
        r#"{{
  "bench": "hotpath",
  "generated_by": "perf_report (cargo run --release -p p2pmpi-bench --bin perf_report)",
  "testbed": {{ "hosts": {hosts}, "cached_peers": {cached} }},
  "ranking": {{
    "description": "booking order of the warm submitter cache, per read; before = the seed's sort-per-read (still available as sorted_by_latency_naive), after = the incremental index",
    "before_naive_sort_ns": {naive_ns:.1},
    "after_incremental_index_ns": {incremental_ns:.1},
    "speedup": {ranking_speedup:.1}
  }},
  "allocate_warm": {{
    "description": "full job submission (100 procs, concentrate) on the warm cache; before = seed tree measured with identical workload/vendored deps (see perf_report docs)",
    "jobs_per_variant": {ALLOC_JOBS},
    "before_seed_ns_per_job": {seed_allocate_ns:.0},
    "after_tracing_off_ns_per_job": {off_ns:.0},
    "after_tracing_on_ns_per_job": {on_ns:.0},
    "speedup_tracing_off_vs_seed": {alloc_speedup:.2}
  }},
  "job_sweep_poisson": {{
    "description": "Poisson arrivals (mean gap 30 s virtual), tracing off",
    "jobs": {SWEEP_JOBS},
    "wall_ms": {sweep_wall_ms:.1},
    "jobs_per_sec": {sweep_jobs_per_sec:.0}
  }}
}}
"#
    );

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
