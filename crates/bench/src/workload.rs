//! Workload generation and the day-scale sweep driver.
//!
//! The paper submits jobs one at a time; pushing the reproduction to sweep
//! scale needs a synthetic arrival process and a driver that replays it
//! against the overlay's event timeline.  Three layers live here:
//!
//! * **Arrival generators** — [`PoissonArrivals`] draws exponential
//!   inter-arrival gaps (a homogeneous Poisson process) and
//!   [`BurstyArrivals`] alternates between two rates.
//! * **[`DayProfile`]** — a piecewise-constant-rate arrival profile over a
//!   day of virtual time (86,400 s), the cheap stand-in for the
//!   inhomogeneous-Poisson workloads of Hohmann's IPPP package cited in
//!   PAPERS.md.  [`DayProfile::paper_day`] encodes a bursty office-hours
//!   shape integrating to ≥ 20k jobs.
//! * **[`run_day_sweep`]** — the discrete-event driver: jobs from a
//!   [`DayProfile`] trace are submitted through the co-allocator as virtual
//!   time advances (`Overlay::run_until`), each successful job charges its
//!   *modeled* kernel duration (`p2pmpi_mpi::model` on the job's real
//!   placement) as a hold on the booked hosts, and a scheduled completion
//!   releases them — all interleaved with heartbeat rounds, cache refreshes
//!   and reservation-expiry sweeps on one timeline.  Per-site utilisation is
//!   sampled on a fixed period, reproducing Figures 2–3 at sweep scale.

use crate::experiments::{run_kernel_on_placement, Fig4Kernel, Fig4Settings};
use crate::search::{OnlineSearchParams, OnlineSearchStats, SearchContext};
use p2pmpi_core::prelude::*;
use p2pmpi_grid5000::testbed::{testbed_from_specs_with_queue, Grid5000Testbed};
use p2pmpi_grid5000::{ClusterSpec, TABLE1};
use p2pmpi_mpi::placement::Placement;
use p2pmpi_overlay::churn::flapping_churn;
use p2pmpi_simgrid::event::QueueKind;
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::rngutil::{derive_seed, seeded};
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use p2pmpi_simgrid::topology::HostId;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Arrival generators
// ---------------------------------------------------------------------------

/// Homogeneous Poisson arrival process: gaps are `Exp(rate)` distributed.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
    rng: StdRng,
}

impl PoissonArrivals {
    /// Creates a process with the given arrival rate (events per second of
    /// virtual time) and RNG seed.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        PoissonArrivals {
            rate_per_sec,
            rng: seeded(seed),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Draws the next inter-arrival gap.
    pub fn next_gap(&mut self) -> SimDuration {
        // Inverse-CDF sampling; 1 - u keeps the argument of ln() positive.
        let u: f64 = self.rng.gen();
        let secs = -(1.0 - u).ln() / self.rate_per_sec;
        SimDuration::from_secs_f64(secs)
    }

    /// Draws `n` gaps into a vector (convenience for pre-scheduling a whole
    /// sweep so the event queue can be `reserve`d once).
    pub fn gaps(&mut self, n: usize) -> Vec<SimDuration> {
        (0..n).map(|_| self.next_gap()).collect()
    }
}

/// Two-phase inhomogeneous arrivals: `burst_len` arrivals at `burst_rate`,
/// then `quiet_len` arrivals at `quiet_rate`, repeating.
#[derive(Debug, Clone)]
pub struct BurstyArrivals {
    burst: PoissonArrivals,
    quiet: PoissonArrivals,
    burst_len: usize,
    quiet_len: usize,
    position: usize,
}

impl BurstyArrivals {
    /// Creates the alternating process.  Lengths must be positive.
    pub fn new(
        burst_rate: f64,
        burst_len: usize,
        quiet_rate: f64,
        quiet_len: usize,
        seed: u64,
    ) -> Self {
        assert!(
            burst_len > 0 && quiet_len > 0,
            "phase lengths must be positive"
        );
        BurstyArrivals {
            burst: PoissonArrivals::new(burst_rate, seed ^ 0x9E37),
            quiet: PoissonArrivals::new(quiet_rate, seed ^ 0x79B9),
            burst_len,
            quiet_len,
            position: 0,
        }
    }

    /// True if the *next* gap will be drawn from the burst phase.
    pub fn in_burst(&self) -> bool {
        self.position % (self.burst_len + self.quiet_len) < self.burst_len
    }

    /// Draws the next inter-arrival gap.
    pub fn next_gap(&mut self) -> SimDuration {
        let in_burst = self.in_burst();
        self.position += 1;
        if in_burst {
            self.burst.next_gap()
        } else {
            self.quiet.next_gap()
        }
    }

    /// Draws `n` gaps into a vector.
    pub fn gaps(&mut self, n: usize) -> Vec<SimDuration> {
        (0..n).map(|_| self.next_gap()).collect()
    }
}

// ---------------------------------------------------------------------------
// DayProfile: piecewise-constant-rate arrivals over a day
// ---------------------------------------------------------------------------

/// One segment of a [`DayProfile`]: from `start` (inclusive) until the next
/// segment's start, arrivals occur at `rate_per_sec`.
#[derive(Debug, Clone, Copy)]
pub struct RateSegment {
    /// Offset of the segment from the start of the trace.
    pub start: SimDuration,
    /// Arrival rate within the segment (jobs per virtual second).
    pub rate_per_sec: f64,
}

/// A piecewise-constant-rate arrival profile over a bounded horizon.
///
/// Within each segment arrivals form a homogeneous Poisson process at the
/// segment's rate; by the memorylessness of the exponential this composes
/// into an (inhomogeneous, piecewise-constant) Poisson process over the
/// whole horizon.  Sampling is exact per segment, so the expected total
/// arrival count is the integral of the rate function
/// ([`DayProfile::expected_jobs`]).
#[derive(Debug, Clone)]
pub struct DayProfile {
    segments: Vec<RateSegment>,
    horizon: SimDuration,
}

/// Seconds in a virtual day.
pub const DAY_SECS: u64 = 86_400;

impl DayProfile {
    /// Builds a profile from `(start, rate)` segments over `horizon`.
    /// Segments must start at zero, be strictly ascending, and stay inside
    /// the horizon; rates must be non-negative and finite.
    pub fn piecewise(segments: Vec<RateSegment>, horizon: SimDuration) -> Self {
        assert!(!segments.is_empty(), "a profile needs at least one segment");
        assert!(
            segments[0].start.is_zero(),
            "the first segment must start at zero"
        );
        for pair in segments.windows(2) {
            assert!(
                pair[0].start < pair[1].start,
                "segment starts must be strictly ascending"
            );
        }
        let last = segments.last().expect("non-empty");
        assert!(
            last.start < horizon,
            "segments must start inside the horizon"
        );
        for s in &segments {
            assert!(
                s.rate_per_sec >= 0.0 && s.rate_per_sec.is_finite(),
                "segment rates must be non-negative and finite"
            );
        }
        DayProfile { segments, horizon }
    }

    /// A constant-rate profile (a homogeneous Poisson day).
    pub fn constant(rate_per_sec: f64, horizon: SimDuration) -> Self {
        Self::piecewise(
            vec![RateSegment {
                start: SimDuration::ZERO,
                rate_per_sec,
            }],
            horizon,
        )
    }

    /// The bursty office-hours day the Figure 2–3 sweep replays: quiet
    /// night, morning ramp, a strong late-morning burst, a lunch dip, a long
    /// afternoon burst and an evening decay over 86,400 virtual seconds.
    /// Integrates to ≈ 21.7k jobs — the "day of submissions" scale the
    /// ROADMAP north-star asks for.
    pub fn paper_day() -> Self {
        let hour = |h: u64| SimDuration::from_secs(h * 3600);
        let seg = |h: u64, rate_per_sec: f64| RateSegment {
            start: hour(h),
            rate_per_sec,
        };
        Self::piecewise(
            vec![
                seg(0, 0.05),  // night
                seg(6, 0.15),  // morning ramp
                seg(9, 0.55),  // late-morning burst
                seg(12, 0.25), // lunch dip
                seg(13, 0.50), // afternoon burst
                seg(17, 0.30), // evening
                seg(20, 0.12), // night decay
            ],
            SimDuration::from_secs(DAY_SECS),
        )
    }

    /// The trace horizon.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// The arrival rate at offset `t`.
    pub fn rate_at(&self, t: SimDuration) -> f64 {
        self.segments
            .iter()
            .rev()
            .find(|s| s.start <= t)
            .map(|s| s.rate_per_sec)
            .unwrap_or(0.0)
    }

    /// Expected number of arrivals over the horizon (the integral of the
    /// rate function).
    pub fn expected_jobs(&self) -> f64 {
        let mut total = 0.0;
        for (i, s) in self.segments.iter().enumerate() {
            let end = self
                .segments
                .get(i + 1)
                .map(|n| n.start)
                .unwrap_or(self.horizon);
            total += s.rate_per_sec * (end.saturating_sub(s.start)).as_secs_f64();
        }
        total
    }

    /// Multiplies every segment rate by `factor` (expected jobs scale the
    /// same way).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite(), "scale must be finite");
        for s in &mut self.segments {
            s.rate_per_sec *= factor;
        }
        self
    }

    /// Compresses the profile in time by `factor`: segment boundaries and
    /// the horizon shrink by `factor` while rates grow by it, so the
    /// expected job count and the burst *shape* are preserved in `1/factor`
    /// of the virtual time.  This is how CI replays the whole day's shape in
    /// one virtual hour.
    pub fn compressed(mut self, factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "compression must be >= 1"
        );
        for s in &mut self.segments {
            s.start = SimDuration::from_secs_f64(s.start.as_secs_f64() / factor);
            s.rate_per_sec *= factor;
        }
        self.horizon = SimDuration::from_secs_f64(self.horizon.as_secs_f64() / factor);
        self
    }

    /// Tiles the profile `times` times end to end: copy `i`'s segments are
    /// offset by `i × horizon`, so a day profile becomes `times` identical
    /// days and the expected job count scales by `times`.  Composes with
    /// [`DayProfile::scaled`] (traffic multiplier) and
    /// [`DayProfile::compressed`] — the week-scale sweep driver builds its
    /// trace as `paper_day().repeated(7).scaled(10.0)` and compresses for
    /// CI.  Offsets are computed in integer nanoseconds, so the tiling is
    /// exact.
    pub fn repeated(&self, times: usize) -> Self {
        assert!(times >= 1, "repeating zero times would erase the profile");
        let horizon_ns = self.horizon.as_nanos();
        let mut segments = Vec::with_capacity(self.segments.len() * times);
        for i in 0..times {
            let offset = SimDuration::from_nanos(horizon_ns * i as u64);
            segments.extend(self.segments.iter().map(|s| RateSegment {
                start: s.start + offset,
                rate_per_sec: s.rate_per_sec,
            }));
        }
        Self::piecewise(segments, SimDuration::from_nanos(horizon_ns * times as u64))
    }

    /// A week of paper days: [`DayProfile::paper_day`] tiled seven times
    /// (≈ 152k expected jobs at 1× traffic; the ROADMAP's production-scale
    /// target runs it at 10×).
    pub fn week() -> Self {
        Self::paper_day().repeated(7)
    }

    /// Splices a flash crowd into the profile: between `at` and
    /// `at + duration` every rate is multiplied by `factor`, while the rest
    /// of the day is untouched.  The burst is expressed purely as extra
    /// piecewise segments — a boundary segment at `at` carrying
    /// `rate_at(at) * factor`, scaled copies of any interior segments, and a
    /// resume segment at the burst's end restoring the underlying rate — so
    /// the result is a plain [`DayProfile`] that composes with
    /// [`DayProfile::scaled`] and [`DayProfile::compressed`] and samples
    /// through the exact same per-segment machinery as the base day.
    pub fn with_burst(self, at: SimDuration, duration: SimDuration, factor: f64) -> Self {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "burst factor must be finite and non-negative"
        );
        assert!(!duration.is_zero(), "a burst needs a non-zero duration");
        assert!(at < self.horizon, "the burst must start inside the horizon");
        let end = (at + duration).min(self.horizon);
        let mut segments: Vec<RateSegment> = Vec::with_capacity(self.segments.len() + 2);
        // Untouched prefix.
        segments.extend(self.segments.iter().copied().filter(|s| s.start < at));
        // Burst onset: the underlying rate at `at`, amplified.
        segments.push(RateSegment {
            start: at,
            rate_per_sec: self.rate_at(at) * factor,
        });
        // Interior boundaries keep their position, amplified.
        segments.extend(
            self.segments
                .iter()
                .filter(|s| at < s.start && s.start < end)
                .map(|s| RateSegment {
                    start: s.start,
                    rate_per_sec: s.rate_per_sec * factor,
                }),
        );
        // Resume the underlying rate (unless the burst runs to the horizon
        // or an existing boundary already starts exactly there).
        if end < self.horizon && !self.segments.iter().any(|s| s.start == end) {
            segments.push(RateSegment {
                start: end,
                rate_per_sec: self.rate_at(end),
            });
        }
        // Untouched tail.
        segments.extend(self.segments.iter().copied().filter(|s| s.start >= end));
        // Re-validate through the constructor: the splice must preserve the
        // strictly-ascending invariant or it is a bug worth a panic.
        Self::piecewise(segments, self.horizon)
    }

    /// Samples one realisation of the arrival process.  Times are sorted,
    /// lie inside the horizon, and are fully determined by `seed`.
    pub fn arrivals(&self, seed: u64) -> Vec<SimTime> {
        let mut rng = seeded(seed);
        let mut out: Vec<SimTime> = Vec::with_capacity(self.expected_jobs() as usize + 16);
        for (i, s) in self.segments.iter().enumerate() {
            if s.rate_per_sec <= 0.0 {
                continue;
            }
            let end = self
                .segments
                .get(i + 1)
                .map(|n| n.start)
                .unwrap_or(self.horizon)
                .as_secs_f64();
            let mut t = s.start.as_secs_f64();
            loop {
                let u: f64 = rng.gen();
                t += -(1.0 - u).ln() / s.rate_per_sec;
                if t >= end {
                    break;
                }
                out.push(SimTime::from_secs_f64(t));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Job mix and traces
// ---------------------------------------------------------------------------

/// What each arriving job asks for.
#[derive(Debug, Clone)]
pub struct JobMix {
    /// Rank counts drawn uniformly per job.  The default palette spans
    /// "fits on two Nancy nodes" (8) to "must cross sites under spread"
    /// (128), so the day trace exercises the same demand range whose
    /// endpoints Figures 2–3 plot.
    pub ranks: Vec<u32>,
    /// Fraction of jobs running IS (the rest run EP).
    pub is_fraction: f64,
    /// Largest rank count an IS job uses; draws above it run EP instead.
    /// Mirrors the paper's Figure 4, whose IS panel stops at 128 ranks
    /// while EP continues — and keeps the sweep's per-job modeled
    /// alltoallv cost (O(ranks²) per iteration) off the hot path.
    pub is_max_ranks: u32,
}

impl Default for JobMix {
    fn default() -> Self {
        JobMix {
            ranks: vec![8, 32, 64, 128],
            is_fraction: 0.3,
            is_max_ranks: 32,
        }
    }
}

/// One job of a submission trace.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Submission instant.
    pub at: SimTime,
    /// Number of MPI processes demanded.
    pub ranks: u32,
    /// The NAS kernel the job runs (determines its modeled duration).
    pub kernel: Fig4Kernel,
}

/// Materialises a full submission trace: arrival times from `profile`, job
/// shapes from `mix`, both deterministic in `seed` (independent substreams,
/// so changing the mix does not perturb the arrival instants).
pub fn day_trace(profile: &DayProfile, mix: &JobMix, seed: u64) -> Vec<JobSpec> {
    assert!(
        !mix.ranks.is_empty(),
        "the job mix needs at least one rank count"
    );
    let arrivals = profile.arrivals(derive_seed(seed, 0xA221));
    let mut rng = seeded(derive_seed(seed, 0x31B5));
    arrivals
        .into_iter()
        .map(|at| {
            let ranks = mix.ranks[rng.gen_range(0..mix.ranks.len())];
            let kernel = if ranks <= mix.is_max_ranks && rng.gen::<f64>() < mix.is_fraction {
                Fig4Kernel::Is
            } else {
                Fig4Kernel::Ep
            };
            JobSpec { at, ranks, kernel }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The day-scale sweep driver
// ---------------------------------------------------------------------------

/// Flapping-churn fault injection for a day sweep (see
/// [`p2pmpi_overlay::churn::flapping_churn`]).
#[derive(Debug, Clone, Copy)]
pub struct DeadPeerChurn {
    /// Fraction of peers that flap (the submitter is never selected —
    /// it is excluded from the candidate list).
    pub fraction: f64,
    /// How long a flapping peer stays dead per cycle.
    pub downtime: SimDuration,
    /// How long it stays alive per cycle.
    pub uptime: SimDuration,
}

impl Default for DeadPeerChurn {
    /// ~25% of peers flapping on a 5-minute-down / 10-minute-up cycle:
    /// roughly 8% of the overlay is dead at any instant, and every refresh
    /// keeps re-introducing flapped peers to the submitter's cache.
    fn default() -> Self {
        DeadPeerChurn {
            fraction: 0.25,
            downtime: SimDuration::from_secs(300),
            uptime: SimDuration::from_secs(600),
        }
    }
}

/// One named adversity injected into a day sweep.  Times are offsets on
/// the *uncompressed* day; [`DaySweepConfig::compress`] scales them together
/// with everything else so a compressed run sees the same relative shape.
#[derive(Debug, Clone)]
pub enum FaultSpec {
    /// Every peer of `site` crashes at `at` and recovers `duration` later,
    /// together (a switch or power failure, not independent flapping).  The
    /// submitter is always spared — its host doubles as the supernode's.
    SiteOutage {
        /// Site name as in the topology (e.g. `"rennes"`).
        site: String,
        /// Outage onset.
        at: SimDuration,
        /// Outage length.
        duration: SimDuration,
    },
    /// Arrival rates multiply by `factor` between `at` and `at + duration`
    /// (spliced into the profile via [`DayProfile::with_burst`]).
    FlashCrowd {
        /// Burst onset.
        at: SimDuration,
        /// Burst length.
        duration: SimDuration,
        /// Rate multiplier (10.0 = a 10× flash crowd).
        factor: f64,
    },
    /// Every transfer touching `site` is slowed by `latency_factor` between
    /// `at` and `at + duration` (congestion or a failing uplink).
    SlowLinks {
        /// Site name as in the topology.
        site: String,
        /// Degradation onset.
        at: SimDuration,
        /// Degradation length.
        duration: SimDuration,
        /// Latency multiplier (must be ≥ 1).
        latency_factor: f64,
    },
    /// The supernode crashes at `at` (volatile registry lost; cache
    /// refreshes fail and the submitter brokers from its stale view) and
    /// restarts `duration` later (heartbeats resync the registry).
    SupernodeOutage {
        /// Crash instant.
        at: SimDuration,
        /// Downtime before the restart.
        duration: SimDuration,
    },
    /// A rack browns out: the first `hosts` hosts of `site` (topology
    /// order — racks are contiguous in the host list) crash together at
    /// `at` and recover `duration` later.  The site itself stays up, so
    /// brokering keeps landing work on the surviving racks instead of
    /// writing the whole site off.
    PartialSite {
        /// Site name as in the topology.
        site: String,
        /// How many of the site's hosts go down (clamped to the site size).
        hosts: usize,
        /// Brown-out onset.
        at: SimDuration,
        /// Brown-out length.
        duration: SimDuration,
    },
    /// Combinator: every child fault runs on the same timeline (an outage
    /// *during* a flash crowd, a rack loss *while* links crawl).  Children
    /// are independent — composition is concatenation of their event
    /// schedules, and [`FaultSpec::flattened`] unfolds the tree back into
    /// the primitive list the sweep installs.
    Compose(Vec<FaultSpec>),
    /// Combinator: slides the inner fault's onset by `offset_secs`
    /// (positive = later) against the day profile, clamping at the start
    /// of the day.  This is the knob the adversarial timing search
    /// (`fault_search`) turns to hunt the worst-case phase of an outage
    /// relative to a burst.
    PhaseShift {
        /// Signed onset shift in seconds (applied to every primitive
        /// inside `inner`).
        offset_secs: f64,
        /// The fault whose onset slides.
        inner: Box<FaultSpec>,
    },
}

impl FaultSpec {
    /// Scales the fault's times for a compressed day (rates and factors are
    /// dimensionless and stay put).  Combinators recurse: `Compose` maps
    /// its children and `PhaseShift` shrinks its offset's magnitude with
    /// the same rule before recursing into the shifted fault.
    fn compressed(self, shrink: &impl Fn(SimDuration) -> SimDuration) -> Self {
        match self {
            FaultSpec::SiteOutage { site, at, duration } => FaultSpec::SiteOutage {
                site,
                at: shrink(at),
                duration: shrink(duration),
            },
            FaultSpec::FlashCrowd {
                at,
                duration,
                factor,
            } => FaultSpec::FlashCrowd {
                at: shrink(at),
                duration: shrink(duration),
                factor,
            },
            FaultSpec::SlowLinks {
                site,
                at,
                duration,
                latency_factor,
            } => FaultSpec::SlowLinks {
                site,
                at: shrink(at),
                duration: shrink(duration),
                latency_factor,
            },
            FaultSpec::SupernodeOutage { at, duration } => FaultSpec::SupernodeOutage {
                at: shrink(at),
                duration: shrink(duration),
            },
            FaultSpec::PartialSite {
                site,
                hosts,
                at,
                duration,
            } => FaultSpec::PartialSite {
                site,
                hosts,
                at: shrink(at),
                duration: shrink(duration),
            },
            FaultSpec::Compose(children) => {
                FaultSpec::Compose(children.into_iter().map(|f| f.compressed(shrink)).collect())
            }
            FaultSpec::PhaseShift { offset_secs, inner } => FaultSpec::PhaseShift {
                offset_secs: if offset_secs == 0.0 {
                    0.0
                } else {
                    offset_secs.signum()
                        * shrink(SimDuration::from_secs_f64(offset_secs.abs())).as_secs_f64()
                },
                inner: Box::new(inner.compressed(shrink)),
            },
        }
    }

    /// Unfolds the fault tree into the primitive faults the sweep installs:
    /// `Compose` concatenates its children's primitives, `PhaseShift` adds
    /// its offset to every primitive onset underneath it (offsets nest
    /// additively), and a shifted onset clamps at the start of the day.
    pub fn flattened(&self) -> Vec<FaultSpec> {
        let mut out = Vec::new();
        self.flatten_into(0.0, &mut out);
        out
    }

    fn flatten_into(&self, offset_secs: f64, out: &mut Vec<FaultSpec>) {
        let shift =
            |at: SimDuration| SimDuration::from_secs_f64((at.as_secs_f64() + offset_secs).max(0.0));
        match self {
            FaultSpec::Compose(children) => {
                for child in children {
                    child.flatten_into(offset_secs, out);
                }
            }
            FaultSpec::PhaseShift {
                offset_secs: more,
                inner,
            } => inner.flatten_into(offset_secs + more, out),
            FaultSpec::SiteOutage { site, at, duration } => out.push(FaultSpec::SiteOutage {
                site: site.clone(),
                at: shift(*at),
                duration: *duration,
            }),
            FaultSpec::FlashCrowd {
                at,
                duration,
                factor,
            } => out.push(FaultSpec::FlashCrowd {
                at: shift(*at),
                duration: *duration,
                factor: *factor,
            }),
            FaultSpec::SlowLinks {
                site,
                at,
                duration,
                latency_factor,
            } => out.push(FaultSpec::SlowLinks {
                site: site.clone(),
                at: shift(*at),
                duration: *duration,
                latency_factor: *latency_factor,
            }),
            FaultSpec::SupernodeOutage { at, duration } => out.push(FaultSpec::SupernodeOutage {
                at: shift(*at),
                duration: *duration,
            }),
            FaultSpec::PartialSite {
                site,
                hosts,
                at,
                duration,
            } => out.push(FaultSpec::PartialSite {
                site: site.clone(),
                hosts: *hosts,
                at: shift(*at),
                duration: *duration,
            }),
        }
    }
}

/// Flattens a fault list's combinator trees into the primitive faults the
/// sweep installs, in declaration order.
pub fn flatten_faults(faults: &[FaultSpec]) -> Vec<FaultSpec> {
    let mut out = Vec::new();
    for fault in faults {
        fault.flatten_into(0.0, &mut out);
    }
    out
}

/// Configuration of one [`run_day_sweep`] run.
#[derive(Debug, Clone)]
pub struct DaySweepConfig {
    /// Allocation strategy every job uses.
    pub strategy: StrategyKind,
    /// Priority structure backing the overlay's event timeline.
    /// [`QueueKind::Ladder`] is the sweep default: with per-reservation
    /// timeouts the pending population is trimodal (millisecond replies,
    /// the 2 s timeout window, minute-to-hour completions) and the
    /// calendar's uniform bucket width degrades on that skew.
    pub queue: QueueKind,
    /// Master seed (testbed noise, arrivals, job mix, churn phases).
    pub seed: u64,
    /// The arrival profile to replay.
    pub profile: DayProfile,
    /// The job-shape mix.
    pub mix: JobMix,
    /// Factor applied to each job's modeled kernel duration before charging
    /// it as a hold (1.0 charges the modeled makespan verbatim).
    pub duration_scale: f64,
    /// Period of the per-site utilisation samples.
    pub sample_period: SimDuration,
    /// Optional flapping churn: dead peers make booked reservation requests
    /// park a full `rs_timeout` on the timeline.
    pub churn: Option<DeadPeerChurn>,
    /// Period of the submitter's supernode cache refresh (how quickly
    /// flapped peers re-enter the booking order after step 5 dropped them).
    pub cache_refresh: SimDuration,
    /// Whether `rs_send` may skip arming timeouts whose reply is already
    /// scheduled to win the race (the alive-peer fast path; outcome-
    /// invariant, pinned by `tests/day_sweep.rs`).  On by default;
    /// [`DaySweepConfig::dead_peer_day`] turns it off so the timeout-heavy
    /// benchmark keeps measuring the armed machinery it exists for.
    pub rs_timeout_fast_path: bool,
    /// Named adversities injected into the day (site outages, flash crowds,
    /// link degradations, supernode crashes).  Times are on the uncompressed
    /// day; [`DaySweepConfig::compress`] scales them.
    pub faults: Vec<FaultSpec>,
    /// When on, a crashing peer kills the jobs running on it (their
    /// completions are mass-revoked via `cancel_batch` and every
    /// participant is freed).  Off by default: the baseline day pays zero
    /// tracking overhead.
    pub fail_jobs_on_crash: bool,
    /// Tombstone-reap cadence: at each job boundary the driver compares the
    /// timeline's queued-ticket count against its live count, and when the
    /// difference (cancelled-but-unpopped tombstones) exceeds this
    /// threshold it calls the queue's eager compaction
    /// (`EventQueue::reap`).  This bounds the dead weight a cancel-heavy
    /// trace (churn revoking completions, timeout losers) can accumulate:
    /// dead tickets never exceed `reap_threshold` plus one job's worth of
    /// cancellations.  Reaping is outcome-invariant — it only drops
    /// tickets `pop` would have skipped.  `usize::MAX` disables it.
    pub reap_threshold: usize,
    /// Per-arrival annealing move budget of the online search (only read
    /// when `strategy` is [`StrategyKind::Searched`]).
    pub search_moves: u64,
    /// Test/benchmark knob: force every online search to rebuild its
    /// evaluator from scratch instead of rebasing the warm pool — the
    /// control arm of the warm == cold exactness pins in
    /// `tests/day_sweep.rs` and the prepare-speedup gate in `perf_report`.
    pub search_cold: bool,
}

impl DaySweepConfig {
    /// The day-scale defaults: ladder queue, the paper-day profile, the
    /// default job mix, 5-minute utilisation samples, no churn.
    pub fn new(strategy: StrategyKind) -> Self {
        DaySweepConfig {
            strategy,
            queue: QueueKind::Ladder,
            seed: 2008,
            profile: DayProfile::paper_day(),
            mix: JobMix::default(),
            duration_scale: 1.0,
            sample_period: SimDuration::from_secs(300),
            churn: None,
            cache_refresh: SimDuration::from_secs(600),
            rs_timeout_fast_path: true,
            faults: Vec::new(),
            fail_jobs_on_crash: false,
            reap_threshold: 8192,
            search_moves: 300,
            search_cold: false,
        }
    }

    /// The churn-heavy dead-peer day: the paper-day trace with
    /// [`DeadPeerChurn::default`] flapping and a fast (2-minute) cache
    /// refresh, so the submitter keeps re-learning — and re-booking — peers
    /// that are currently dead.  Every such booking parks an `rs_timeout`
    /// on the timeline while replies resolve in milliseconds: the resulting
    /// event population is the heavily skewed shape the ladder queue
    /// ([`QueueKind::Ladder`], this config's default) exists for.
    pub fn dead_peer_day(strategy: StrategyKind) -> Self {
        DaySweepConfig {
            churn: Some(DeadPeerChurn::default()),
            cache_refresh: SimDuration::from_secs(120),
            // This scenario exists to park timeout events on the timeline
            // (the skewed population the ladder queue is for), so the
            // alive-peer fast path is off: every reservation arms.
            rs_timeout_fast_path: false,
            ..Self::new(strategy)
        }
    }

    /// Compresses the whole scenario in time by `factor`: the arrival
    /// profile ([`DayProfile::compressed`]), the churn cycle, the
    /// cache-refresh period and the sample period all shrink together, so
    /// the day's per-job pressure (timeouts per job, refusals, burst shape)
    /// is preserved in `1/factor` of the virtual time.  `rs_timeout` is a
    /// protocol constant and does *not* compress: relative to a compressed
    /// day the 2 s timeout window widens, which makes compressed traces the
    /// natural stress test for skew-sensitive queue structures.
    pub fn compress(mut self, factor: f64) -> Self {
        let shrink =
            |d: SimDuration| SimDuration::from_secs_f64((d.as_secs_f64() / factor).max(1.0));
        self.profile = self.profile.compressed(factor);
        self.sample_period = shrink(self.sample_period);
        self.cache_refresh = shrink(self.cache_refresh);
        if let Some(churn) = &mut self.churn {
            churn.downtime = shrink(churn.downtime);
            churn.uptime = shrink(churn.uptime);
        }
        self.faults = std::mem::take(&mut self.faults)
            .into_iter()
            .map(|f| f.compressed(&shrink))
            .collect();
        self
    }
}

/// One per-site utilisation sample.
#[derive(Debug, Clone)]
pub struct UtilisationSample {
    /// Sample instant.
    pub t: SimTime,
    /// Running processes per site (indexed like `site_names`).
    pub running: Vec<u32>,
}

/// Everything a day-scale sweep produced.
#[derive(Debug, Clone)]
pub struct DaySweepResult {
    /// Site names, in topology order (indexes all per-site vectors).
    pub site_names: Vec<String>,
    /// Cores available per site.
    pub site_cores: Vec<usize>,
    /// Per-site running-process samples on the configured period.
    pub samples: Vec<UtilisationSample>,
    /// Core-seconds of work charged per site over the whole trace.
    pub core_seconds: Vec<f64>,
    /// Width of the [`DaySweepResult::site_core_bins`] bins, in seconds
    /// (the configured sample period).
    pub bin_secs: f64,
    /// Per-site core-seconds timeline: `site_core_bins[site][b]` is the
    /// work charged to `site` inside virtual-time bin
    /// `[b·bin_secs, (b+1)·bin_secs)`.  Each hold is spread across the
    /// bins it overlaps at charge time, so the series is exact (its sum
    /// equals `core_seconds`) and deterministic across queue kinds — this
    /// is what the recovery-time-to-95% gates measure against.
    pub site_core_bins: Vec<Vec<f64>>,
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs that allocated and ran.
    pub succeeded: usize,
    /// Jobs refused (infeasible or start failures under load/churn).
    pub failed: usize,
    /// Reservation timeouts observed on the timeline (dead booked peers)
    /// across the whole trace — each one parked a full `rs_timeout` event.
    pub timeouts: u64,
    /// Mean hold duration charged per successful job (seconds).
    pub mean_hold_secs: f64,
    /// Events delivered on the overlay timeline.
    pub events_processed: u64,
    /// The virtual clock when the trace ended.
    pub virtual_end: SimTime,
    /// Timeline payload-slot capacity sampled halfway through the trace
    /// (after the morning burst set the high-water mark) and at the end.
    /// An equal pair means the steady state allocated no event storage.
    pub events_capacity_mid: usize,
    /// See [`DaySweepResult::events_capacity_mid`].
    pub events_capacity_end: usize,
    /// Brokering scratch capacity at the same two instants: the
    /// pending-reply bookkeeping of `Overlay::rs_send` must not re-allocate
    /// per request once warm.
    pub rs_scratch_capacity_mid: usize,
    /// See [`DaySweepResult::rs_scratch_capacity_mid`].
    pub rs_scratch_capacity_end: usize,
    /// Running jobs killed by peer crashes (only non-zero when
    /// [`DaySweepConfig::fail_jobs_on_crash`] is on).
    pub jobs_killed: u64,
    /// Reservation grants whose reply lost the race to its timeout (each
    /// one eagerly released one transfer later; see the overlay docs).
    pub leaked_grants: u64,
    /// High-water mark of simultaneously outstanding leaked grants.
    pub leaked_grant_hwm: u64,
    /// Tombstones eagerly compacted by the reap cadence (see
    /// [`DaySweepConfig::reap_threshold`]).  Zero when the trace never
    /// crossed the threshold or reaping is disabled.
    pub reaped_tickets: u64,
    /// High-water mark of dead (cancelled-but-unpopped) tickets observed at
    /// job boundaries.  With reaping on, bounded by `reap_threshold` plus
    /// one inter-job interval's cancellations.
    pub dead_ticket_hwm: usize,
    /// Counters of the online search (`Some` only when the sweep ran with
    /// [`StrategyKind::Searched`]): warm-rebase vs cold-build split, moves
    /// evaluated and wall-clock phase timings.
    pub search: Option<OnlineSearchStats>,
}

impl DaySweepResult {
    /// True if neither the event store nor the brokering scratch allocated
    /// after the mid-trace sample — the allocation-free steady state the
    /// brokering hot path promises.
    pub fn steady_state_alloc_free(&self) -> bool {
        self.events_capacity_mid == self.events_capacity_end
            && self.rs_scratch_capacity_mid == self.rs_scratch_capacity_end
    }
}

impl DaySweepResult {
    /// Grid-total core-seconds per time bin (sites summed), the utilisation
    /// timeline the recovery metric compares against its twin's.
    pub fn total_core_bins(&self) -> Vec<f64> {
        let bins = self.site_core_bins.first().map_or(0, |s| s.len());
        let mut total = vec![0.0f64; bins];
        for series in &self.site_core_bins {
            for (t, v) in total.iter_mut().zip(series) {
                *t += v;
            }
        }
        total
    }

    /// Core-seconds `site` was charged inside `[start_secs, end_secs)`,
    /// read off the binned timeline (bins partially overlapping the window
    /// count in full — callers align windows on bin edges for exactness).
    pub fn site_core_seconds_between(&self, site: usize, start_secs: f64, end_secs: f64) -> f64 {
        let w = self.bin_secs;
        let series = &self.site_core_bins[site];
        let first = (start_secs / w).floor().max(0.0) as usize;
        let last = ((end_secs / w).ceil() as usize).min(series.len());
        series[first.min(last)..last].iter().sum()
    }

    /// Share of the total charged work each site carried, in site order.
    pub fn site_work_share(&self) -> Vec<f64> {
        let total: f64 = self.core_seconds.iter().sum();
        self.core_seconds
            .iter()
            .map(|&c| if total > 0.0 { c / total } else { 0.0 })
            .collect()
    }
}

/// Running processes per site, in site-id order.
pub(crate) fn sample_running(tb: &Grid5000Testbed) -> Vec<u32> {
    let mut running = vec![0u32; tb.topology.site_count()];
    for peer in tb.overlay.peer_ids() {
        let site = tb.topology.host(tb.overlay.host_of(peer)).site;
        running[site.0] += tb.overlay.node(peer).rs.running_processes();
    }
    running
}

/// Applies the [`FaultSpec::FlashCrowd`] entries of `faults` to `profile`
/// (flash crowds reshape the arrival process itself, so they act before the
/// trace is drawn; every other fault is an event on the overlay timeline).
/// Combinators are flattened first, so a crowd inside a `Compose` or under
/// a `PhaseShift` splices at its effective onset.
pub(crate) fn burst_profile(profile: &DayProfile, faults: &[FaultSpec]) -> DayProfile {
    let mut profile = profile.clone();
    for fault in flatten_faults(faults) {
        if let FaultSpec::FlashCrowd {
            at,
            duration,
            factor,
        } = fault
        {
            profile = profile.with_burst(at, duration, factor);
        }
    }
    profile
}

/// The reusable heart of a sweep: one testbed, one timeline, and the
/// submit/sample/charge loop of [`run_day_sweep`] — factored out so the
/// sharded driver (`crate::shard`) can run one `SweepCore` per shard over
/// its own site subset while the sequential sweep runs a single core over
/// all of Table 1.  Operation order inside [`SweepCore::submit`] and
/// [`SweepCore::finish`] is exactly the historical sequential loop; the
/// one addition, the tombstone-reap cadence, is outcome-invariant.
pub(crate) struct SweepCore {
    pub(crate) cfg: DaySweepConfig,
    pub(crate) tb: Grid5000Testbed,
    pub(crate) allocator: CoAllocator,
    pub(crate) settings: Fig4Settings,
    site_names: Vec<String>,
    site_cores: Vec<usize>,
    samples: Vec<UtilisationSample>,
    next_sample: SimTime,
    next_probe: Option<SimTime>,
    core_seconds: Vec<f64>,
    site_core_bins: Vec<Vec<f64>>,
    /// Reused per-job per-site core-count scratch for the bin charging.
    charge_scratch: Vec<f64>,
    hold_secs_total: f64,
    pub(crate) submitted: usize,
    pub(crate) succeeded: usize,
    pub(crate) failed: usize,
    pub(crate) timeouts: u64,
    mid_job: usize,
    mid_caps: (usize, usize),
    reaped_tickets: u64,
    dead_ticket_hwm: usize,
    /// The persistent cross-job search state (warm `PlacementCost` pool +
    /// idle-slot indexes), present only under [`StrategyKind::Searched`].
    search: Option<SearchContext>,
    /// Reused per-arrival free-capacity scratch for the online search.
    search_caps: Vec<u32>,
}

impl SweepCore {
    /// Boots a testbed over `specs` and installs every periodic behaviour
    /// and fault of `cfg`, exactly as the sequential sweep always has.
    /// `seed` feeds the testbed, churn phases and kernel model (the
    /// sequential sweep passes `cfg.seed`; shards > 0 pass derived
    /// sub-seeds so their noise streams are independent).  `mid_job` is the
    /// submission index at which steady-state capacities are sampled.
    ///
    /// Faults naming a site must name one present in `specs` — the sharded
    /// driver routes site-scoped faults to the owning shard before
    /// constructing cores.
    pub(crate) fn new(
        cfg: &DaySweepConfig,
        specs: &[ClusterSpec],
        seed: u64,
        mid_job: usize,
    ) -> Self {
        let mut tb = testbed_from_specs_with_queue(specs, seed, NoiseModel::default(), cfg.queue);
        tb.overlay.tracer().set_enabled(false);
        tb.overlay
            .set_rs_timeout_fast_path(cfg.rs_timeout_fast_path);
        tb.overlay.set_fail_jobs_on_crash(cfg.fail_jobs_on_crash);

        // Periodic behaviours share the timeline with submissions and
        // completions.
        tb.overlay.start_heartbeats();
        tb.overlay
            .start_reservation_expiry(SimDuration::from_secs(60), SimDuration::from_secs(120));
        let submitter = tb.submitter;
        tb.overlay.start_cache_refresh(submitter, cfg.cache_refresh);

        // Flapping churn rides the same timeline: booked-but-dead peers
        // park a full rs_timeout each (the timeout-heavy skewed
        // population).
        if let Some(churn) = &cfg.churn {
            let peers: Vec<_> = tb
                .overlay
                .peer_ids()
                .into_iter()
                .filter(|&p| p != submitter)
                .collect();
            let mut churn_rng = seeded(derive_seed(seed, 0xF1A9));
            let schedule = flapping_churn(
                &peers,
                churn.fraction,
                cfg.profile.horizon(),
                churn.downtime,
                churn.uptime,
                &mut churn_rng,
            );
            tb.overlay.schedule_churn(schedule.finish());
        }

        // Timeline faults: correlated site outages, rack brown-outs, link
        // degradation windows and supernode crashes ride the same event
        // queue as everything else.  Combinator trees (`Compose`,
        // `PhaseShift`) unfold into primitives first, so a composed
        // scenario installs exactly the schedule its flattened parts would.
        let submitter_peer = tb.submitter;
        for fault in flatten_faults(&cfg.faults) {
            match &fault {
                FaultSpec::FlashCrowd { .. } => {} // applied to the profile pre-trace
                FaultSpec::SiteOutage { site, at, duration } => {
                    let schedule = p2pmpi_grid5000::site_outage_schedule(
                        &tb.overlay,
                        site,
                        SimTime::ZERO + *at,
                        *duration,
                        &[submitter_peer],
                    );
                    tb.overlay.schedule_churn(schedule.finish());
                }
                FaultSpec::PartialSite {
                    site,
                    hosts,
                    at,
                    duration,
                } => {
                    let subset = p2pmpi_grid5000::site_host_subset(
                        &tb.overlay,
                        site,
                        *hosts,
                        &[submitter_peer],
                    );
                    tb.overlay
                        .schedule_host_outage(&subset, SimTime::ZERO + *at, *duration);
                }
                FaultSpec::SlowLinks {
                    site,
                    at,
                    duration,
                    latency_factor,
                } => {
                    let site_id = tb
                        .topology
                        .site_by_name(site)
                        .unwrap_or_else(|| panic!("unknown site '{site}'"))
                        .id;
                    tb.overlay.schedule_link_degradation(
                        site_id,
                        SimTime::ZERO + *at,
                        *duration,
                        *latency_factor,
                    );
                }
                FaultSpec::SupernodeOutage { at, duration } => {
                    tb.overlay
                        .schedule_supernode_outage(SimTime::ZERO + *at, *duration);
                }
                FaultSpec::Compose(_) | FaultSpec::PhaseShift { .. } => {
                    unreachable!("flatten_faults only yields primitives")
                }
            }
        }

        let allocator = CoAllocator::new();
        let settings = Fig4Settings {
            seed,
            ..Fig4Settings::default()
        }
        .modeled();

        // Under the searched strategy every arrival re-anneals against the
        // grid's current free cores, reusing one warm evaluator per kernel
        // shape across jobs (see `crate::search::SearchContext`).
        let search = (cfg.strategy == StrategyKind::Searched).then(|| {
            let params = OnlineSearchParams {
                moves: cfg.search_moves,
                seed: derive_seed(seed, 0x0A11),
            };
            let mut ctx = SearchContext::new(tb.topology.clone(), settings, params);
            ctx.cold = cfg.search_cold;
            ctx
        });

        let site_names: Vec<String> = tb.topology.sites().iter().map(|s| s.name.clone()).collect();
        let site_cores: Vec<usize> = tb
            .topology
            .sites()
            .iter()
            .map(|s| tb.topology.cores_at_site(s.id))
            .collect();
        let core_seconds = vec![0.0f64; site_names.len()];

        // Under churn the submitter re-probes on the refresh cadence,
        // exactly like its bootstrap did: freshly (re-)learned peers
        // re-enter the booking order by measured latency instead of parking
        // unprobed at the back.  Driven from the submission loop (not a
        // scheduled event) so the probe RNG draws happen at job
        // boundaries, identically for every queue kind.
        let next_probe = if cfg.churn.is_some() || !cfg.faults.is_empty() {
            Some(SimTime::ZERO + cfg.cache_refresh)
        } else {
            None
        };

        SweepCore {
            cfg: cfg.clone(),
            tb,
            allocator,
            settings,
            site_names,
            site_cores,
            samples: Vec::new(),
            next_sample: SimTime::ZERO,
            next_probe,
            site_core_bins: vec![Vec::new(); core_seconds.len()],
            charge_scratch: vec![0.0; core_seconds.len()],
            core_seconds,
            hold_secs_total: 0.0,
            submitted: 0,
            succeeded: 0,
            failed: 0,
            timeouts: 0,
            mid_job,
            mid_caps: (0, 0),
            reaped_tickets: 0,
            dead_ticket_hwm: 0,
            search,
            search_caps: Vec::new(),
        }
    }

    /// Builds the request for `job`, running the online placement search
    /// first when the sweep's strategy is [`StrategyKind::Searched`]: the
    /// annealed per-rank host map rides the request as a plan the
    /// co-allocator books and pins verbatim (falling back to the fixed
    /// distribution when brokering invalidates it).  Any other strategy —
    /// or an infeasible instant (free cores cannot hold the job) — submits
    /// the plain request.
    fn request_for(&mut self, job: &JobSpec) -> JobRequest {
        let request = JobRequest::new(job.ranks, self.cfg.strategy, job.kernel.program());
        let Some(ctx) = self.search.as_mut() else {
            return request;
        };

        // Effective free capacity right now: the runtime admits one
        // application per MPD (`max_apps` = 1), so a host is wholly free
        // when its peer is alive and idle, wholly busy otherwise.  The
        // timeline was advanced to the arrival instant before this, so the
        // view matches what brokering will see.
        self.search_caps.clear();
        self.search_caps.resize(self.tb.topology.host_count(), 0u32);
        for (h, cap) in self.search_caps.iter_mut().enumerate() {
            if let Some(peer) = self.tb.overlay.peer_on_host(HostId(h)) {
                let node = self.tb.overlay.node(peer);
                if node.is_alive() && node.rs.active_applications() == 0 {
                    *cap = self.tb.topology.host(HostId(h)).cores as u32;
                }
            }
        }

        let arrival = (self.submitted - 1) as u64;
        let Some(hosts) = ctx.searched_hosts(job.kernel, job.ranks, &self.search_caps, arrival)
        else {
            return request;
        };

        // Fold the per-rank host map into per-host rank lists, hosts in
        // first-occurrence (rank) order.
        let mut plan: Vec<PlannedHost> = Vec::new();
        for (rank, &host) in hosts.iter().enumerate() {
            let peer = self
                .tb
                .overlay
                .peer_on_host(host)
                .expect("searched placements only use hosts with live peers");
            match plan.iter_mut().find(|ph| ph.peer == peer) {
                Some(ph) => ph.ranks.push(rank as u32),
                None => plan.push(PlannedHost {
                    peer,
                    ranks: vec![rank as u32],
                }),
            }
        }
        request.with_plan(Arc::from(plan))
    }

    /// Takes every utilisation sample due at or before `upto`.
    fn sample_due(&mut self, upto: SimTime) {
        while self.next_sample <= upto {
            self.tb.overlay.run_until(self.next_sample);
            self.samples.push(UtilisationSample {
                t: self.next_sample,
                running: sample_running(&self.tb),
            });
            self.next_sample += self.cfg.sample_period;
        }
    }

    /// Re-probes the supernode cache if a refresh period elapsed.
    fn maybe_probe(&mut self) {
        if let Some(due) = &mut self.next_probe {
            if self.tb.overlay.now() >= *due {
                self.tb.overlay.probe_round(self.tb.submitter);
                while *due <= self.tb.overlay.now() {
                    *due += self.cfg.cache_refresh;
                }
            }
        }
    }

    /// The tombstone-reap cadence (see [`DaySweepConfig::reap_threshold`]):
    /// tracks the dead-ticket high-water mark and eagerly compacts the
    /// timeline when cancellations outrun pops.
    fn maybe_reap(&mut self) {
        let dead = self
            .tb
            .overlay
            .events_queued()
            .saturating_sub(self.tb.overlay.events_pending());
        self.dead_ticket_hwm = self.dead_ticket_hwm.max(dead);
        if dead > self.cfg.reap_threshold {
            self.reaped_tickets += self.tb.overlay.reap_events() as u64;
        }
    }

    /// Advances the timeline to `at` with samples, probe and reap cadence —
    /// exactly what [`SweepCore::submit`] does before brokering.  The
    /// sharded driver calls this to bring a shard to a synchronization
    /// barrier.
    pub(crate) fn advance_to(&mut self, at: SimTime) {
        self.sample_due(at);
        self.tb.overlay.run_until(at);
        self.maybe_probe();
        self.maybe_reap();
    }

    /// Charges `hold` on every booked host of `alloc` and schedules the
    /// job's completion (releasing the hosts) `hold` after now.  The
    /// counterpart, for cross-shard jobs whose hold was computed on the
    /// merged view, is [`SweepCore::charge_remote`] plus the driver's
    /// batched scatter-back.
    pub(crate) fn record_success(
        &mut self,
        alloc: &p2pmpi_core::allocation::Allocation,
        key: p2pmpi_overlay::ReservationKey,
        hold: SimDuration,
    ) {
        self.succeeded += 1;
        self.hold_secs_total += hold.as_secs_f64();
        let done_at = self.tb.overlay.now() + hold;
        self.charge_remote(alloc, hold);
        let peers: Vec<_> = alloc.hosts.iter().map(|h| h.peer).collect();
        self.tb.overlay.schedule_completion(done_at, key, peers);
    }

    /// Adds `hold`'s core-seconds for `alloc`'s hosts to this core's
    /// per-site ledger without scheduling anything — the charging half of
    /// [`SweepCore::record_success`], used on its own when the completion
    /// is scattered back in a barrier batch.
    pub(crate) fn charge_remote(
        &mut self,
        alloc: &p2pmpi_core::allocation::Allocation,
        hold: SimDuration,
    ) {
        // Per-site cores this job holds, summed before the bin spread so
        // each site walks its bins once per job, not once per host.
        self.charge_scratch.fill(0.0);
        for h in &alloc.hosts {
            let site = self.tb.topology.host(h.host).site;
            self.charge_scratch[site.0] += h.instances() as f64;
        }
        let start = self.tb.overlay.now().as_secs_f64();
        let end = start + hold.as_secs_f64();
        let w = self.cfg.sample_period.as_secs_f64();
        let first = (start / w).floor() as usize;
        let last = ((end / w).ceil() as usize).max(first + 1);
        if self.site_core_bins[0].len() < last {
            for series in &mut self.site_core_bins {
                series.resize(last, 0.0);
            }
        }
        for (site, &c) in self.charge_scratch.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            self.core_seconds[site] += c * hold.as_secs_f64();
            for b in first..last {
                let bin_start = b as f64 * w;
                let overlap = (end.min(bin_start + w) - start.max(bin_start)).max(0.0);
                if overlap > 0.0 {
                    self.site_core_bins[site][b] += c * overlap;
                }
            }
        }
    }

    /// Submits one job: advance the timeline to its arrival, broker it,
    /// and on success charge the modeled kernel time on the job's real
    /// placement as a hold on its booked hosts.
    pub(crate) fn submit(&mut self, job: &JobSpec) {
        if self.submitted == self.mid_job {
            self.mid_caps = (
                self.tb.overlay.events_capacity(),
                self.tb.overlay.rs_scratch_capacity(),
            );
        }
        self.submitted += 1;
        self.advance_to(job.at);
        let request = self.request_for(job);
        let report = self
            .allocator
            .allocate(&mut self.tb.overlay, self.tb.submitter, &request);
        self.timeouts += report.dead as u64;
        match &report.outcome {
            Ok(alloc) => {
                let placement = Placement::from_allocation(alloc);
                let point = run_kernel_on_placement(
                    job.kernel,
                    self.cfg.strategy,
                    &placement,
                    &self.tb.topology,
                    &self.settings,
                );
                let hold = point.makespan.mul_f64(self.cfg.duration_scale);
                self.record_success(alloc, report.key, hold);
            }
            Err(_) => self.failed += 1,
        }
    }

    /// Drains the tail of the trace (remaining samples, completions,
    /// heartbeats) up to `horizon` and closes the books.
    pub(crate) fn finish(mut self, horizon: SimTime) -> DaySweepResult {
        self.sample_due(horizon);
        self.tb.overlay.run_until(horizon);

        DaySweepResult {
            site_names: self.site_names,
            site_cores: self.site_cores,
            samples: self.samples,
            bin_secs: self.cfg.sample_period.as_secs_f64(),
            site_core_bins: self.site_core_bins,
            core_seconds: self.core_seconds,
            submitted: self.submitted,
            succeeded: self.succeeded,
            failed: self.failed,
            timeouts: self.timeouts,
            mean_hold_secs: self.hold_secs_total / self.succeeded.max(1) as f64,
            events_processed: self.tb.overlay.events_processed(),
            virtual_end: self.tb.overlay.now(),
            events_capacity_mid: self.mid_caps.0,
            events_capacity_end: self.tb.overlay.events_capacity(),
            rs_scratch_capacity_mid: self.mid_caps.1,
            rs_scratch_capacity_end: self.tb.overlay.rs_scratch_capacity(),
            jobs_killed: self.tb.overlay.jobs_killed(),
            leaked_grants: self.tb.overlay.leaked_grants(),
            leaked_grant_hwm: self.tb.overlay.leaked_grant_hwm(),
            reaped_tickets: self.reaped_tickets,
            dead_ticket_hwm: self.dead_ticket_hwm,
            search: self.search.as_ref().map(|c| c.stats()),
        }
    }
}

/// Replays a [`DayProfile`] submission trace against a fresh Grid'5000
/// testbed on the overlay's event timeline.  See the module docs for the
/// driver-loop shape; the `fig23_sweep` binary renders the result.  This
/// is the sequential driver: one [`SweepCore`] over all of Table 1, every
/// job shard-local.  `crate::shard::run_shard_sweep` runs the same loop
/// split over per-site shards.
pub fn run_day_sweep(cfg: &DaySweepConfig) -> DaySweepResult {
    let profile = burst_profile(&cfg.profile, &cfg.faults);
    let trace = day_trace(&profile, &cfg.mix, cfg.seed);
    let mut core = SweepCore::new(cfg, TABLE1, cfg.seed, trace.len() / 2);
    for job in &trace {
        core.submit(job);
    }
    core.finish(SimTime::ZERO + cfg.profile.horizon())
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- satellite: statistical coverage of the arrival generators --------

    #[test]
    fn poisson_mean_gap_matches_inverse_rate_over_10k_draws() {
        // Mean of 10k Exp(rate) draws must sit within 3 standard errors of
        // 1/rate (sigma of the mean = (1/rate)/sqrt(n) ≈ 0.02 here).
        let rate = 0.5; // mean gap 2 s
        let n = 10_000;
        let mut p = PoissonArrivals::new(rate, 42);
        let mean: f64 = (0..n).map(|_| p.next_gap().as_secs_f64()).sum::<f64>() / n as f64;
        let expected = 1.0 / rate;
        let tolerance = 3.0 * expected / (n as f64).sqrt();
        assert!(
            (mean - expected).abs() < tolerance,
            "mean gap {mean} vs expected {expected} ± {tolerance}"
        );
    }

    #[test]
    fn poisson_gaps_are_deterministic_per_seed_and_vary_across_seeds() {
        let a: Vec<_> = PoissonArrivals::new(1.0, 7).gaps(50);
        let b: Vec<_> = PoissonArrivals::new(1.0, 7).gaps(50);
        let c: Vec<_> = PoissonArrivals::new(1.0, 8).gaps(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bursty_alternates_phases_with_per_phase_rates() {
        // 100 draws per phase: each phase's mean gap must match its own
        // rate within 5 standard errors, through two full cycles.
        let (burst_rate, quiet_rate) = (50.0, 0.5);
        let phase_len = 100usize;
        let mut g = BurstyArrivals::new(burst_rate, phase_len, quiet_rate, phase_len, 3);
        for cycle in 0..2 {
            for (phase, rate) in [("burst", burst_rate), ("quiet", quiet_rate)] {
                assert_eq!(g.in_burst(), phase == "burst", "cycle {cycle} {phase}");
                let mean: f64 = (0..phase_len)
                    .map(|_| g.next_gap().as_secs_f64())
                    .sum::<f64>()
                    / phase_len as f64;
                let expected = 1.0 / rate;
                let tolerance = 5.0 * expected / (phase_len as f64).sqrt();
                assert!(
                    (mean - expected).abs() < tolerance,
                    "cycle {cycle} {phase} mean {mean} vs {expected} ± {tolerance}"
                );
            }
        }
    }

    #[test]
    fn bursty_gaps_are_deterministic_per_seed() {
        let a = BurstyArrivals::new(10.0, 5, 0.1, 5, 11).gaps(40);
        let b = BurstyArrivals::new(10.0, 5, 0.1, 5, 11).gaps(40);
        let c = BurstyArrivals::new(10.0, 5, 0.1, 5, 12).gaps(40);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        PoissonArrivals::new(0.0, 1);
    }

    // -- DayProfile -------------------------------------------------------

    #[test]
    fn paper_day_integrates_past_twenty_thousand_jobs() {
        let p = DayProfile::paper_day();
        assert_eq!(p.horizon(), SimDuration::from_secs(DAY_SECS));
        let expected = p.expected_jobs();
        assert!(
            expected > 20_000.0 && expected < 25_000.0,
            "expected {expected}"
        );
        // Poisson count over the day: within 5 sigma of the mean.
        let n = p.arrivals(1).len() as f64;
        assert!((n - expected).abs() < 5.0 * expected.sqrt(), "sampled {n}");
    }

    #[test]
    fn arrivals_are_sorted_in_horizon_and_deterministic() {
        let p = DayProfile::paper_day();
        let a = p.arrivals(9);
        let b = p.arrivals(9);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
        let end = SimTime::ZERO + p.horizon();
        assert!(a.iter().all(|&t| t < end));
        assert_ne!(a.len(), p.arrivals(10).len());
    }

    #[test]
    fn arrival_density_follows_the_rate_profile() {
        // The 9–12h burst must be ~11x denser than the 0–6h night (rates
        // 0.55 vs 0.05); allow generous sampling noise.
        let p = DayProfile::paper_day();
        let arrivals = p.arrivals(5);
        let in_window = |a: u64, b: u64| {
            arrivals
                .iter()
                .filter(|t| (a * 3600..b * 3600).contains(&(t.as_nanos() / 1_000_000_000)))
                .count() as f64
        };
        let night_per_hour = in_window(0, 6) / 6.0;
        let burst_per_hour = in_window(9, 12) / 3.0;
        let ratio = burst_per_hour / night_per_hour;
        assert!((6.0..18.0).contains(&ratio), "burst/night ratio {ratio}");
    }

    #[test]
    fn compression_preserves_expected_jobs_in_less_time() {
        let p = DayProfile::paper_day();
        let expected = p.expected_jobs();
        let c = p.compressed(24.0);
        assert_eq!(c.horizon(), SimDuration::from_secs(3600));
        assert!((c.expected_jobs() - expected).abs() < 1e-6 * expected);
        // Scaling then stacks on top for the ~1k-job CI smoke.
        let small = c.scaled(0.05);
        assert!((small.expected_jobs() - 0.05 * expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn repeated_tiles_the_day_exactly() {
        let day = DayProfile::paper_day();
        let week = DayProfile::week();
        assert_eq!(week.horizon(), SimDuration::from_secs(7 * 86_400));
        assert!(
            (week.expected_jobs() - 7.0 * day.expected_jobs()).abs() < 1e-6 * day.expected_jobs()
        );
        // Every instant of day k sees day 0's rate: the tiling is exact.
        for hour in [0u64, 3, 9, 12, 17, 23] {
            let t = SimDuration::from_secs(hour * 3600);
            for k in 1..7u64 {
                let shifted = t + SimDuration::from_secs(k * 86_400);
                assert_eq!(week.rate_at(shifted), day.rate_at(t), "day {k} hour {hour}");
            }
        }
        // repeated(1) is the identity, and compression stacks on top.
        assert_eq!(day.repeated(1).expected_jobs(), day.expected_jobs());
        let week_jobs = week.expected_jobs();
        let c = week.compressed(168.0);
        assert_eq!(c.horizon(), SimDuration::from_secs(3600));
        assert!((c.expected_jobs() - week_jobs).abs() < 1e-6 * week_jobs);
    }

    #[test]
    fn rate_at_picks_the_enclosing_segment() {
        let p = DayProfile::paper_day();
        assert_eq!(p.rate_at(SimDuration::from_secs(0)), 0.05);
        assert_eq!(p.rate_at(SimDuration::from_secs(10 * 3600)), 0.55);
        assert_eq!(p.rate_at(SimDuration::from_secs(23 * 3600)), 0.12);
    }

    // -- flash-crowd splice (satellite: statistical coverage) -------------

    #[test]
    fn with_burst_amplifies_inside_and_preserves_outside() {
        let p = DayProfile::paper_day();
        let burst = p.clone().with_burst(
            SimDuration::from_secs(10 * 3600),
            SimDuration::from_secs(3600),
            10.0,
        );
        // Inside the window: 10x the underlying late-morning rate.
        assert_eq!(burst.rate_at(SimDuration::from_secs(10 * 3600)), 5.5);
        assert_eq!(burst.rate_at(SimDuration::from_secs(10 * 3600 + 1800)), 5.5);
        // Outside: untouched, including right at the resume boundary.
        assert_eq!(burst.rate_at(SimDuration::from_secs(9 * 3600)), 0.55);
        assert_eq!(burst.rate_at(SimDuration::from_secs(11 * 3600)), 0.55);
        assert_eq!(burst.rate_at(SimDuration::from_secs(23 * 3600)), 0.12);
        // Expected jobs grow by exactly the burst window's surplus:
        // one hour at 9 * 0.55 extra.
        let surplus = burst.expected_jobs() - p.expected_jobs();
        assert!((surplus - 9.0 * 0.55 * 3600.0).abs() < 1e-6, "{surplus}");
    }

    #[test]
    fn with_burst_straddling_boundaries_scales_interior_segments() {
        // 11h..14h straddles the 12h lunch dip and the 13h afternoon rise.
        let p = DayProfile::paper_day();
        let burst = p.with_burst(
            SimDuration::from_secs(11 * 3600),
            SimDuration::from_secs(3 * 3600),
            4.0,
        );
        assert_eq!(burst.rate_at(SimDuration::from_secs(11 * 3600)), 2.2); // 0.55*4
        assert_eq!(burst.rate_at(SimDuration::from_secs(12 * 3600 + 60)), 1.0); // 0.25*4
        assert_eq!(burst.rate_at(SimDuration::from_secs(13 * 3600 + 60)), 2.0); // 0.50*4
        assert_eq!(burst.rate_at(SimDuration::from_secs(14 * 3600)), 0.50); // resumed
    }

    #[test]
    fn with_burst_at_an_existing_boundary_and_to_the_horizon() {
        let p = DayProfile::paper_day();
        // Onset exactly on the 9h boundary: the boundary segment is replaced
        // by its amplified copy, not duplicated.
        let b = p.clone().with_burst(
            SimDuration::from_secs(9 * 3600),
            SimDuration::from_secs(3 * 3600),
            2.0,
        );
        assert_eq!(b.rate_at(SimDuration::from_secs(9 * 3600)), 1.1);
        // The 12h lunch boundary already exists, so no resume duplicate: the
        // splice re-validates through `piecewise` (a duplicate would panic).
        assert_eq!(b.rate_at(SimDuration::from_secs(12 * 3600)), 0.25);
        // Burst running past the horizon is clamped to it.
        let tail = p.with_burst(
            SimDuration::from_secs(23 * 3600),
            SimDuration::from_secs(5 * 3600),
            3.0,
        );
        assert_eq!(tail.rate_at(SimDuration::from_secs(23 * 3600 + 60)), 0.36);
        assert_eq!(tail.horizon(), SimDuration::from_secs(DAY_SECS));
    }

    #[test]
    fn burst_window_mean_gap_matches_the_amplified_rate() {
        // Statistical check mirroring the Poisson generator tests: arrivals
        // sampled inside a spliced 10x window must have a mean gap within
        // 3 standard errors of 1/(rate*factor).
        let rate = 0.5;
        let factor = 10.0;
        let p = DayProfile::constant(rate, SimDuration::from_secs(20_000)).with_burst(
            SimDuration::from_secs(5_000),
            SimDuration::from_secs(5_000),
            factor,
        );
        let window = SimTime::from_secs(5_000)..SimTime::from_secs(10_000);
        let inside: Vec<SimTime> = p
            .arrivals(77)
            .into_iter()
            .filter(|t| window.contains(t))
            .collect();
        let gaps: Vec<f64> = inside
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]).as_secs_f64())
            .collect();
        let n = gaps.len() as f64;
        assert!(n > 1_000.0, "needs a dense window, got {n} gaps");
        let mean = gaps.iter().sum::<f64>() / n;
        let expected = 1.0 / (rate * factor);
        // Exponential gaps: sigma = mean, standard error = mean/sqrt(n).
        let tolerance = 3.0 * expected / n.sqrt();
        assert!(
            (mean - expected).abs() < tolerance,
            "mean gap {mean} vs {expected} ± {tolerance}"
        );
    }

    #[test]
    #[should_panic(expected = "inside the horizon")]
    fn burst_starting_past_the_horizon_panics() {
        DayProfile::paper_day().with_burst(
            SimDuration::from_secs(DAY_SECS + 1),
            SimDuration::from_secs(60),
            2.0,
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_segments_panic() {
        DayProfile::piecewise(
            vec![
                RateSegment {
                    start: SimDuration::ZERO,
                    rate_per_sec: 1.0,
                },
                RateSegment {
                    start: SimDuration::ZERO,
                    rate_per_sec: 2.0,
                },
            ],
            SimDuration::from_secs(10),
        );
    }

    // -- traces -----------------------------------------------------------

    #[test]
    fn day_trace_is_deterministic_and_respects_the_mix() {
        let profile = DayProfile::constant(1.0, SimDuration::from_secs(2000));
        let mix = JobMix {
            ranks: vec![8],
            is_fraction: 0.5,
            ..JobMix::default()
        };
        let a = day_trace(&profile, &mix, 3);
        let b = day_trace(&profile, &mix, 3);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at == y.at && x.ranks == y.ranks && x.kernel == y.kernel));
        assert!(a.iter().all(|j| j.ranks == 8));
        let is_share =
            a.iter().filter(|j| j.kernel == Fig4Kernel::Is).count() as f64 / a.len().max(1) as f64;
        assert!((0.35..0.65).contains(&is_share), "IS share {is_share}");
    }
}
