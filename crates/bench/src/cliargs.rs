//! Tiny command-line flag helpers shared by the experiment binaries.

/// Returns the value following `flag` on the command line, if present.
pub fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    flag_value_in(&args, flag)
}

/// Returns the value following `flag` in an explicit argument list.
pub fn flag_value_in(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses the value following `flag` as a `u64`.
pub fn flag_u64(flag: &str) -> Option<u64> {
    flag_value(flag).and_then(|v| v.parse().ok())
}

/// Parses the value following `flag` as an `f64`.
pub fn flag_f64(flag: &str) -> Option<f64> {
    flag_value(flag).and_then(|v| v.parse().ok())
}

/// True if `flag` appears on the command line.
pub fn flag_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Sweep flags shared by the Figure 4 binaries.
pub struct SweepFlags {
    /// `--modeled`: cost collectives with the analytical LogGP backend.
    pub modeled: bool,
    /// `--ranks a,b,c`: process counts overriding the paper's defaults.
    pub ranks: Option<Vec<u32>>,
    /// `--scale K`: Table-1 grid scale factor for modeled sweeps
    /// (default: just large enough for the largest count).
    pub scale: Option<usize>,
}

impl SweepFlags {
    /// The backend name for experiment headers.
    pub fn backend_name(&self) -> &'static str {
        if self.modeled {
            "modeled"
        } else {
            "executed"
        }
    }
}

/// Parses the `--modeled` / `--ranks` / `--scale` flags.
pub fn sweep_flags() -> SweepFlags {
    SweepFlags {
        modeled: flag_present("--modeled"),
        ranks: flag_value("--ranks").map(|v| {
            v.split(',')
                .map(|n| n.parse().expect("--ranks takes comma-separated counts"))
                .collect()
        }),
        scale: flag_u64("--scale").map(|s| s as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_value_in_finds_following_token() {
        let args: Vec<String> = ["prog", "--seed", "42", "--fast"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value_in(&args, "--seed"), Some("42".to_string()));
        assert_eq!(flag_value_in(&args, "--sigma"), None);
        assert_eq!(flag_value_in(&args, "--fast"), None);
    }
}
