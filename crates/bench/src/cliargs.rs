//! Tiny command-line flag helpers shared by the experiment binaries.

/// Returns the value following `flag` on the command line, if present.
pub fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    flag_value_in(&args, flag)
}

/// Returns the value following `flag` in an explicit argument list.
pub fn flag_value_in(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses the value following `flag` as a `u64`.
pub fn flag_u64(flag: &str) -> Option<u64> {
    flag_value(flag).and_then(|v| v.parse().ok())
}

/// Parses the value following `flag` as an `f64`.
pub fn flag_f64(flag: &str) -> Option<f64> {
    flag_value(flag).and_then(|v| v.parse().ok())
}

/// True if `flag` appears on the command line.
pub fn flag_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Sweep flags shared by the Figure 4 binaries.
pub struct SweepFlags {
    /// `--modeled`: cost collectives with the analytical LogGP backend.
    pub modeled: bool,
    /// `--ranks a,b,c`: process counts overriding the paper's defaults.
    pub ranks: Option<Vec<u32>>,
    /// `--scale K`: Table-1 grid scale factor for modeled sweeps
    /// (default: just large enough for the largest count).
    pub scale: Option<usize>,
    /// `--searched`: add a third curve with the placement found by the
    /// annealing search (implies `--modeled` for that curve; tune with
    /// `--moves` / `--chains` / `--seed`).
    pub searched: bool,
    /// `--moves N`: annealing moves per search chain.
    pub moves: Option<u64>,
    /// `--chains N`: parallel search chains.
    pub chains: Option<u32>,
    /// `--seed N`: master seed of the search.
    pub seed: Option<u64>,
}

impl SweepFlags {
    /// The backend name for experiment headers.
    pub fn backend_name(&self) -> &'static str {
        if self.modeled {
            "modeled"
        } else {
            "executed"
        }
    }

    /// The search parameters selected by `--moves`/`--chains`/`--seed`,
    /// starting from the kernel's own default move budget
    /// ([`crate::search::SearchParams::default_for`]) — a `fig4_is
    /// --searched` run must not inherit EP's 4 000-move sweep default.
    pub fn search_params(
        &self,
        kernel: crate::experiments::Fig4Kernel,
    ) -> crate::search::SearchParams {
        let default = crate::search::SearchParams::default_for(kernel);
        crate::search::SearchParams {
            moves: self.moves.unwrap_or(default.moves),
            chains: self.chains.unwrap_or(default.chains),
            seed: self.seed.unwrap_or(default.seed),
        }
    }
}

/// Parses the `--modeled` / `--ranks` / `--scale` / `--searched` (and its
/// `--moves` / `--chains` / `--seed`) flags.
pub fn sweep_flags() -> SweepFlags {
    SweepFlags {
        modeled: flag_present("--modeled"),
        ranks: flag_value("--ranks").map(|v| parse_u32_list(&v, "--ranks")),
        scale: flag_u64("--scale").map(|s| s as usize),
        searched: flag_present("--searched"),
        moves: flag_u64("--moves"),
        chains: flag_u64("--chains").map(|c| c as u32),
        seed: flag_u64("--seed"),
    }
}

/// Parses a comma-separated list of `u32`s, panicking with the flag name on
/// malformed input.
pub fn parse_u32_list(value: &str, flag: &str) -> Vec<u32> {
    value
        .split(',')
        .map(|n| {
            n.parse()
                .unwrap_or_else(|_| panic!("{flag} takes comma-separated counts, got {n:?}"))
        })
        .collect()
}

/// Parses a comma-separated list of `f64`s, panicking with the flag name on
/// malformed input (the `fault_search` `--offsets` list).
pub fn parse_f64_list(value: &str, flag: &str) -> Vec<f64> {
    value
        .split(',')
        .map(|n| {
            n.parse()
                .unwrap_or_else(|_| panic!("{flag} takes comma-separated numbers, got {n:?}"))
        })
        .collect()
}

/// Flags of the `sweep` ablation subcommands (`latency-ranking`,
/// `overbooking`, `contention`), parsed once like [`sweep_flags`] is for the
/// Figure 4 binaries.
pub struct AblationFlags {
    /// `--sigma S`: probe-noise sigma for `latency-ranking` (overrides the
    /// built-in sigma ladder with a single value).
    pub sigma: Option<f64>,
    /// `--churn F`: crashed-peer fraction for `overbooking` (default 0.15).
    pub churn: f64,
    /// `--processes N`: demanded process count (`overbooking` default 300,
    /// `contention` default 128).
    pub processes: Option<u32>,
    /// `--seed N`: master seed (default 2008).
    pub seed: u64,
}

/// Parses the `--sigma` / `--churn` / `--processes` / `--seed` flags.
pub fn ablation_flags() -> AblationFlags {
    AblationFlags {
        sigma: flag_f64("--sigma"),
        churn: flag_f64("--churn").unwrap_or(0.15),
        processes: flag_u64("--processes").map(|n| n as u32),
        seed: flag_u64("--seed").unwrap_or(2008),
    }
}

/// Flags of the `fig23_sweep` day-trace binary.
pub struct DaySweepFlags {
    /// `--strategy concentrate|spread|searched|both|all`: which runs to
    /// perform (default both, like Figures 2 and 3 side by side; `all`
    /// adds the search-guided run to the pair).
    pub strategy: String,
    /// `--searched`: shorthand for `--strategy searched` — one run with
    /// the online per-arrival placement search.
    pub searched: bool,
    /// `--search-moves N`: annealing move budget per arrival (default 300).
    pub search_moves: Option<u64>,
    /// `--search-cold`: disable the warm cross-job evaluator pool (every
    /// arrival rebuilds from scratch; the warm-vs-cold control arm).
    pub search_cold: bool,
    /// `--queue heap|calendar|ladder`: event-queue kind (default ladder,
    /// the sweep default for the timeout-heavy timeline).
    pub queue: String,
    /// `--seed N`: master seed (default 2008).
    pub seed: u64,
    /// `--compress F`: replay the day's shape in `1/F` of the virtual time
    /// (rates scaled up to preserve the job count).
    pub compress: Option<f64>,
    /// `--rate-scale F`: multiply every arrival rate (job count scales).
    pub rate_scale: Option<f64>,
    /// `--duration-scale F`: multiply each job's modeled hold duration.
    pub duration_scale: Option<f64>,
    /// `--sample-secs S`: utilisation sample period (default 300).
    pub sample_secs: Option<u64>,
    /// `--ranks a,b,c`: rank palette jobs draw from (default 8,32,64,128,
    /// the `JobMix::default` palette).
    pub ranks: Option<Vec<u32>>,
    /// `--churn F`: enable the dead-peer flapping scenario with fraction
    /// `F` of peers on the default down/up cycle (timeout-heavy trace).
    pub churn: Option<f64>,
}

/// Parses the `fig23_sweep` flags.
pub fn day_sweep_flags() -> DaySweepFlags {
    DaySweepFlags {
        strategy: flag_value("--strategy").unwrap_or_else(|| "both".to_string()),
        searched: flag_present("--searched"),
        search_moves: flag_u64("--search-moves"),
        search_cold: flag_present("--search-cold"),
        queue: flag_value("--queue").unwrap_or_else(|| "ladder".to_string()),
        seed: flag_u64("--seed").unwrap_or(2008),
        compress: flag_f64("--compress"),
        rate_scale: flag_f64("--rate-scale"),
        duration_scale: flag_f64("--duration-scale"),
        sample_secs: flag_u64("--sample-secs"),
        ranks: flag_value("--ranks").map(|v| parse_u32_list(&v, "--ranks")),
        churn: flag_f64("--churn"),
    }
}

/// Flags of the `week_sweep` sharded-driver binary.
pub struct WeekSweepFlags {
    /// `--shards N`: number of site-aligned shards (default 4).
    pub shards: usize,
    /// `--days N`: how many paper days to tile into the trace (default 7).
    pub days: usize,
    /// `--cross-fraction F`: fraction of jobs brokered cross-shard at
    /// synchronization barriers (default 0.05).
    pub cross_fraction: f64,
    /// `--strategy concentrate|spread`: allocation strategy (default
    /// spread — cross-shard splits exercise more than one site).
    pub strategy: String,
    /// `--queue heap|calendar|ladder`: per-shard timeline structure
    /// (default ladder).
    pub queue: String,
    /// `--seed N`: master seed (default 2008).
    pub seed: u64,
    /// `--compress F`: replay the trace's shape in `1/F` of the virtual
    /// time.
    pub compress: Option<f64>,
    /// `--rate-scale F`: multiply every arrival rate (job count scales).
    pub rate_scale: Option<f64>,
    /// `--sequential`: run the shard timelines on one thread (the
    /// bit-identical speedup baseline).
    pub sequential: bool,
    /// `--baseline`: additionally run the single-thread driver and report
    /// the parallel speedup.
    pub baseline: bool,
}

/// Parses the `week_sweep` flags.
pub fn week_sweep_flags() -> WeekSweepFlags {
    WeekSweepFlags {
        shards: flag_u64("--shards").unwrap_or(4) as usize,
        days: flag_u64("--days").unwrap_or(7) as usize,
        cross_fraction: flag_f64("--cross-fraction").unwrap_or(0.05),
        strategy: flag_value("--strategy").unwrap_or_else(|| "spread".to_string()),
        queue: flag_value("--queue").unwrap_or_else(|| "ladder".to_string()),
        seed: flag_u64("--seed").unwrap_or(2008),
        compress: flag_f64("--compress"),
        rate_scale: flag_f64("--rate-scale"),
        sequential: flag_present("--sequential"),
        baseline: flag_present("--baseline"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_value_in_finds_following_token() {
        let args: Vec<String> = ["prog", "--seed", "42", "--fast"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value_in(&args, "--seed"), Some("42".to_string()));
        assert_eq!(flag_value_in(&args, "--sigma"), None);
        assert_eq!(flag_value_in(&args, "--fast"), None);
    }
}
