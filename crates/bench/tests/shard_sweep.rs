//! Correctness anchors of the sharded parallel sweep driver: one shard
//! reproduces the sequential sweep bit-for-bit, the parallel and
//! single-thread drivers agree bit-for-bit (with and without cross-shard
//! jobs), and the queue kind backing each shard's timeline never changes
//! an outcome.

use p2pmpi_bench::shard::{run_shard_sweep, ShardSweepConfig};
use p2pmpi_bench::workload::{run_day_sweep, DaySweepConfig, DaySweepResult};
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_simgrid::event::QueueKind;
use p2pmpi_simgrid::time::SimDuration;

/// The CI-smoke shape shared with `tests/day_sweep.rs`: the day's burst
/// profile compressed into one virtual hour at ~1.1k jobs.
fn reduced(strategy: StrategyKind) -> DaySweepConfig {
    let mut cfg = DaySweepConfig::new(strategy).compress(24.0);
    cfg.profile = cfg.profile.scaled(0.05);
    cfg.sample_period = SimDuration::from_secs(60);
    cfg
}

/// Bit-for-bit outcome equality: submissions, outcomes, timeouts, kills,
/// leaks, delivered events, per-site work and every utilisation sample.
fn assert_identical(a: &DaySweepResult, b: &DaySweepResult, what: &str) {
    assert_eq!(a.submitted, b.submitted, "{what}");
    assert_eq!(a.succeeded, b.succeeded, "{what}");
    assert_eq!(a.failed, b.failed, "{what}");
    assert_eq!(a.timeouts, b.timeouts, "{what}");
    assert_eq!(a.jobs_killed, b.jobs_killed, "{what}");
    assert_eq!(a.leaked_grants, b.leaked_grants, "{what}");
    assert_eq!(a.leaked_grant_hwm, b.leaked_grant_hwm, "{what}");
    assert_eq!(a.events_processed, b.events_processed, "{what}");
    assert_eq!(a.reaped_tickets, b.reaped_tickets, "{what}");
    assert_eq!(a.dead_ticket_hwm, b.dead_ticket_hwm, "{what}");
    assert_eq!(a.site_names, b.site_names, "{what}");
    assert_eq!(a.core_seconds, b.core_seconds, "{what}");
    let sa: Vec<_> = a.samples.iter().map(|s| (s.t, &s.running)).collect();
    let sb: Vec<_> = b.samples.iter().map(|s| (s.t, &s.running)).collect();
    assert_eq!(sa, sb, "{what}");
}

#[test]
fn one_shard_reproduces_the_sequential_sweep_bit_for_bit() {
    // The 1-shard plan is the identity partition and shard 0 keeps the
    // base seed, so the sharded driver must be indistinguishable from
    // run_day_sweep — threads and barrier machinery included.
    let base = reduced(StrategyKind::Concentrate);
    let sequential = run_day_sweep(&base);
    let sharded = run_shard_sweep(&ShardSweepConfig::new(base, 1));
    assert_eq!(sharded.barriers, 0, "one shard must never synchronize");
    assert_eq!(sharded.cross_submitted, 0);
    assert_identical(&sharded.merged, &sequential, "1-shard vs sequential");
    assert_identical(&sharded.per_shard[0], &sequential, "shard 0 vs sequential");
}

#[test]
fn parallel_and_single_thread_drivers_agree_bit_for_bit() {
    // Shards share nothing between barriers and every coordinator step
    // runs in fixed shard order, so threading is unobservable — with and
    // without cross-shard traffic.
    for cross_fraction in [0.0, 0.1] {
        let mut cfg = ShardSweepConfig::new(reduced(StrategyKind::Spread), 4);
        cfg.cross_fraction = cross_fraction;
        cfg.parallel = true;
        let parallel = run_shard_sweep(&cfg);
        cfg.parallel = false;
        let single = run_shard_sweep(&cfg);
        let what = format!("parallel vs single-thread at cross {cross_fraction}");
        assert_identical(&parallel.merged, &single.merged, &what);
        assert_eq!(parallel.per_shard.len(), single.per_shard.len(), "{what}");
        for (p, s) in parallel.per_shard.iter().zip(&single.per_shard) {
            assert_identical(p, s, &what);
        }
        assert_eq!(parallel.cross_submitted, single.cross_submitted, "{what}");
        assert_eq!(parallel.cross_succeeded, single.cross_succeeded, "{what}");
        assert_eq!(parallel.cross_failed, single.cross_failed, "{what}");
        assert_eq!(parallel.barriers, single.barriers, "{what}");
        if cross_fraction == 0.0 {
            assert_eq!(
                parallel.barriers, 0,
                "zero cross fraction still synchronized"
            );
        } else {
            assert!(
                parallel.barriers > 0,
                "cross fraction 0.1 never synchronized"
            );
            assert!(
                parallel.cross_succeeded > 0,
                "no cross-shard job ever placed"
            );
        }
    }
}

#[test]
fn shard_timelines_agree_on_every_queue_kind() {
    // Same contract the sequential sweep pins: the queue structure backing
    // each shard's timeline is a performance choice, never a semantic one.
    let run = |kind: QueueKind| {
        let mut base = reduced(StrategyKind::Concentrate);
        base.queue = kind;
        let mut cfg = ShardSweepConfig::new(base, 3);
        cfg.cross_fraction = 0.1;
        run_shard_sweep(&cfg)
    };
    let heap = run(QueueKind::BinaryHeap);
    let cal = run(QueueKind::Calendar);
    let ladder = run(QueueKind::Ladder);
    assert_identical(&heap.merged, &cal.merged, "sharded heap vs calendar");
    assert_identical(&heap.merged, &ladder.merged, "sharded heap vs ladder");
}
