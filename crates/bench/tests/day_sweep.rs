//! Integration test of the day-scale sweep harness at reduced scale: the
//! compressed paper-day trace must run fast on the event timeline (with
//! every reservation's timeout as a scheduled event), reproduce the
//! Figures 2–3 concentrate/spread contrast, and produce bit-identical
//! outcomes whichever queue structure backs the timeline.

use p2pmpi_bench::workload::{run_day_sweep, DaySweepConfig, DaySweepResult, FaultSpec};
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_simgrid::event::QueueKind;
use p2pmpi_simgrid::time::SimDuration;
use std::time::Instant;

/// The CI-smoke shape: the whole day's burst profile compressed into one
/// virtual hour at ~1.1k jobs.
fn reduced(strategy: StrategyKind) -> DaySweepConfig {
    let mut cfg = DaySweepConfig::new(strategy).compress(24.0);
    cfg.profile = cfg.profile.scaled(0.05);
    cfg.sample_period = SimDuration::from_secs(60);
    cfg
}

#[test]
fn reduced_day_sweep_shows_the_concentrate_spread_contrast() {
    let start = Instant::now();
    let conc = run_day_sweep(&reduced(StrategyKind::Concentrate));
    let spread = run_day_sweep(&reduced(StrategyKind::Spread));
    let wall = start.elapsed();
    assert!(
        wall.as_secs() < 30,
        "two reduced day sweeps took {wall:?}; the full day must stay in single-digit seconds"
    );

    for (name, r) in [("concentrate", &conc), ("spread", &spread)] {
        assert_eq!(r.site_names[0], "nancy");
        assert!(
            r.submitted > 800,
            "{name}: only {} jobs arrived",
            r.submitted
        );
        assert_eq!(r.submitted, r.succeeded + r.failed, "{name}");
        assert!(
            r.succeeded > r.submitted / 2,
            "{name}: {}/{} jobs succeeded",
            r.succeeded,
            r.submitted
        );
        assert_eq!(
            r.virtual_end,
            p2pmpi_simgrid::time::SimTime::from_secs(3600)
        );
        // Completions, heartbeats and samples all ran on the timeline.
        assert!(r.events_processed > r.succeeded as u64, "{name}");
        // Some sample must have caught work in flight.
        assert!(
            r.samples.iter().any(|s| s.running.iter().sum::<u32>() > 0),
            "{name}: utilisation samples never saw a running process"
        );
    }

    // The Figures 2–3 narrative: the concentrate run keeps (nearly) all the
    // work at Nancy, the spread run pushes a substantial share of it to the
    // other sites.
    let conc_nancy = conc.site_work_share()[0];
    let spread_nancy = spread.site_work_share()[0];
    assert!(conc_nancy > 0.85, "concentrate nancy share {conc_nancy}");
    assert!(spread_nancy < 0.80, "spread nancy share {spread_nancy}");
    assert!(
        conc_nancy > spread_nancy + 0.1,
        "contrast too weak: concentrate {conc_nancy} vs spread {spread_nancy}"
    );
    let spread_remote_sites = spread
        .site_work_share()
        .iter()
        .skip(1)
        .filter(|&&s| s > 0.01)
        .count();
    assert!(
        spread_remote_sites >= 2,
        "spread reached {spread_remote_sites} remote sites"
    );
}

/// Asserts two sweep results are outcome-identical (submissions, outcomes,
/// per-site work, every utilisation sample, observed timeouts).
fn assert_identical(a: &DaySweepResult, b: &DaySweepResult, what: &str) {
    assert_eq!(a.submitted, b.submitted, "{what}");
    assert_eq!(a.succeeded, b.succeeded, "{what}");
    assert_eq!(a.failed, b.failed, "{what}");
    assert_eq!(a.timeouts, b.timeouts, "{what}");
    assert_eq!(a.jobs_killed, b.jobs_killed, "{what}");
    assert_eq!(a.leaked_grants, b.leaked_grants, "{what}");
    assert_eq!(a.leaked_grant_hwm, b.leaked_grant_hwm, "{what}");
    assert_eq!(a.events_processed, b.events_processed, "{what}");
    assert_eq!(a.core_seconds, b.core_seconds, "{what}");
    let sa: Vec<_> = a.samples.iter().map(|s| &s.running).collect();
    let sb: Vec<_> = b.samples.iter().map(|s| &s.running).collect();
    assert_eq!(sa, sb, "{what}");
    // The binned core-seconds timelines feed the recovery-time metric, so
    // they are part of the outcome contract too.
    assert_eq!(a.bin_secs, b.bin_secs, "{what}: bin width");
    assert_eq!(
        a.site_core_bins, b.site_core_bins,
        "{what}: core-second bins"
    );
}

#[test]
fn heap_calendar_and_ladder_timelines_agree_on_the_sweep_outcome() {
    // The queue kind is a performance choice, never a semantic one: the
    // same trace must produce bit-identical outcomes on all three
    // structures — including the reservation reply/timeout races the
    // brokering step now runs on the timeline.
    let run = |kind: QueueKind| {
        let mut cfg = reduced(StrategyKind::Concentrate);
        cfg.queue = kind;
        run_day_sweep(&cfg)
    };
    let heap = run(QueueKind::BinaryHeap);
    let cal = run(QueueKind::Calendar);
    let ladder = run(QueueKind::Ladder);
    assert_identical(&heap, &cal, "heap vs calendar");
    assert_identical(&heap, &ladder, "heap vs ladder");
}

#[test]
fn alive_peer_fast_path_is_outcome_invariant() {
    // The warm-brokering fast path (skip arming a timeout whose reply is
    // already scheduled to win the race) is a scheduling-cost optimisation,
    // never a semantic one: with it on or off, the standard day trace and
    // the churn-heavy dead-peer trace must produce bit-identical outcomes —
    // same submissions, same refusals, same observed timeouts, same
    // utilisation samples, same delivered-event count (skipped timeouts
    // were never delivered on the armed path either).
    let run = |fast_path: bool, churny: bool| {
        let mut cfg = if churny {
            let mut cfg = DaySweepConfig::dead_peer_day(StrategyKind::Concentrate).compress(24.0);
            cfg.profile = cfg.profile.scaled(0.05);
            cfg
        } else {
            reduced(StrategyKind::Concentrate)
        };
        cfg.rs_timeout_fast_path = fast_path;
        run_day_sweep(&cfg)
    };
    for churny in [false, true] {
        let armed = run(false, churny);
        let fast = run(true, churny);
        assert_identical(
            &armed,
            &fast,
            if churny {
                "fast path vs armed under churn"
            } else {
                "fast path vs armed on the standard day"
            },
        );
    }
    // And the fast path genuinely observes timeouts under churn: dead
    // peers still arm (the machinery is kept where it is load-bearing).
    let fast_churny = run(true, true);
    assert!(fast_churny.timeouts > 100, "{}", fast_churny.timeouts);
}

#[test]
fn dead_peer_day_parks_timeouts_on_the_timeline_identically_on_every_queue() {
    // The churn-heavy scenario: flapping peers keep getting booked while
    // dead, so reservation timeouts genuinely fire (not just armed and
    // cancelled).  The timeout count must be substantial, the sweep must
    // still place most jobs, and — races included — the three queue kinds
    // must agree bit-for-bit.
    let run = |kind: QueueKind| {
        let mut cfg = DaySweepConfig::dead_peer_day(StrategyKind::Concentrate).compress(24.0);
        cfg.profile = cfg.profile.scaled(0.05);
        cfg.queue = kind;
        run_day_sweep(&cfg)
    };
    let ladder = run(QueueKind::Ladder);
    assert!(
        ladder.submitted > 800,
        "only {} jobs arrived",
        ladder.submitted
    );
    assert!(
        ladder.timeouts > 100,
        "only {} reservation timeouts observed — the churn scenario is not exercising \
         the timeout path",
        ladder.timeouts
    );
    // Compression makes the churn brutal (a flapper cycles every ~37 s of
    // virtual time, and brokering genuinely stalls 2 s per dead booking),
    // so refusals and start failures are part of the scenario — but the
    // grid must still place a meaningful share of the day.
    assert!(
        ladder.succeeded > ladder.submitted / 4,
        "{}/{} jobs succeeded under churn",
        ladder.succeeded,
        ladder.submitted
    );
    // The brokering scratch and event store reach an allocation-free
    // steady state even under timeout churn.
    assert!(
        ladder.steady_state_alloc_free(),
        "brokering re-allocated past the mid-trace high-water mark: events {} -> {}, scratch {} -> {}",
        ladder.events_capacity_mid,
        ladder.events_capacity_end,
        ladder.rs_scratch_capacity_mid,
        ladder.rs_scratch_capacity_end,
    );
    let heap = run(QueueKind::BinaryHeap);
    let cal = run(QueueKind::Calendar);
    assert_identical(&ladder, &heap, "ladder vs heap under churn");
    assert_identical(&ladder, &cal, "ladder vs calendar under churn");
}

#[test]
fn reap_cadence_bounds_dead_tickets_on_a_cancel_heavy_week() {
    // The cancel-heavy week: seven compressed dead-peer days with job-kill
    // on crash and stretched holds, so churn keeps revoking far-future
    // completions (cancel_batch) while armed timeouts keep losing races to
    // millisecond replies — both leave tombstones parked on the timeline.
    // With reaping disabled the dead weight grows past any fixed bound;
    // with the cadence on, it must stay bounded by the threshold plus one
    // inter-job interval — and reaping must not change a single outcome.
    let run = |reap_threshold: usize| {
        let mut cfg =
            p2pmpi_bench::workload::DaySweepConfig::dead_peer_day(StrategyKind::Concentrate)
                .compress(168.0);
        cfg.profile = p2pmpi_bench::workload::DayProfile::week()
            .scaled(0.02)
            .compressed(168.0);
        cfg.fail_jobs_on_crash = true;
        cfg.duration_scale = 20.0;
        cfg.reap_threshold = reap_threshold;
        run_day_sweep(&cfg)
    };
    let off = run(usize::MAX);
    let on = run(200);
    assert_identical(&off, &on, "reap cadence off vs on");
    // The scenario genuinely cancels: jobs died to crashes, timeouts fired,
    // and without reaping the standing dead population grows to tens of
    // thousands of tickets (observed ~24k at threshold ∞).
    assert!(off.jobs_killed > 0, "churn never killed a running job");
    assert_eq!(off.reaped_tickets, 0, "disabled cadence must never reap");
    assert!(
        off.dead_ticket_hwm > 10_000,
        "unreaped dead weight only reached {} tickets — the trace is not cancel-heavy",
        off.dead_ticket_hwm
    );
    // With the cadence on, dead weight stays bounded by the threshold plus
    // one inter-job interval's cancellations (observed ~360 at 200).
    assert!(on.reaped_tickets > 0, "cadence never fired");
    assert!(
        on.dead_ticket_hwm <= 1_000,
        "reaped run still accumulated {} dead tickets",
        on.dead_ticket_hwm
    );
}

#[test]
fn searched_day_sweep_is_bit_identical_across_queues_and_warm_vs_cold() {
    // The online search rides the sweep deterministically: per-arrival RNG
    // streams derive from the config seed, never from the queue structure
    // or from whether the evaluator pool ran warm.  So (a) the three queue
    // kinds must agree bit-for-bit, exactly like the fixed strategies, and
    // (b) forcing every arrival down the cold rebuild path (`search_cold`)
    // must reproduce the warm run's outcomes — the day-scale face of the
    // `PlacementCost::rebase` exactness contract.
    let run = |kind: QueueKind, cold: bool| {
        let mut cfg = DaySweepConfig::new(StrategyKind::Searched).compress(24.0);
        cfg.profile = cfg.profile.scaled(0.01);
        cfg.sample_period = SimDuration::from_secs(60);
        cfg.search_moves = 80;
        cfg.queue = kind;
        cfg.search_cold = cold;
        run_day_sweep(&cfg)
    };
    let ladder = run(QueueKind::Ladder, false);
    assert!(
        ladder.submitted > 150,
        "only {} jobs arrived",
        ladder.submitted
    );
    assert!(
        ladder.succeeded > ladder.submitted / 2,
        "{}/{} searched jobs succeeded",
        ladder.succeeded,
        ladder.submitted
    );
    // The warm pool genuinely carried the day: one cold build per kernel
    // shape in the mix, everything else a rebase.
    let warm_stats = ladder.search.expect("searched sweeps report search stats");
    assert!(warm_stats.warm_rebases > warm_stats.cold_builds * 10);
    assert!(warm_stats.cold_builds >= 1);

    let heap = run(QueueKind::BinaryHeap, false);
    let cal = run(QueueKind::Calendar, false);
    assert_identical(&ladder, &heap, "searched: ladder vs heap");
    assert_identical(&ladder, &cal, "searched: ladder vs calendar");

    let cold = run(QueueKind::Ladder, true);
    assert_identical(&ladder, &cold, "searched: warm vs cold evaluator pool");
    let cold_stats = cold.search.expect("searched sweeps report search stats");
    assert_eq!(cold_stats.warm_rebases, 0, "cold runs must never rebase");
    assert_eq!(cold_stats.searched, warm_stats.searched);
    assert_eq!(cold_stats.moves_evaluated, warm_stats.moves_evaluated);
}

#[test]
fn injected_faults_agree_bit_for_bit_on_every_queue() {
    // Injected faults ride the same timeline as everything else — churn
    // events, mass revocations (`cancel_batch`), link-degradation toggles,
    // supernode crash/recovery and eager grant releases included — so a
    // scenario stacking every fault kind must still produce bit-identical
    // outcomes whichever queue structure backs the engine.  Times are in
    // the compressed hour's coordinates (the config is already compressed).
    let run = |kind: QueueKind| {
        let mut cfg = reduced(StrategyKind::Spread);
        cfg.mix.ranks = vec![32, 256, 300];
        cfg.fail_jobs_on_crash = true;
        // Stretch holds (~3 s modeled -> ~1 min) so the outage reliably
        // catches jobs mid-run: revocation needs victims.
        cfg.duration_scale = 20.0;
        cfg.faults = vec![
            FaultSpec::SiteOutage {
                site: "rennes".to_string(),
                at: SimDuration::from_secs(1350),
                duration: SimDuration::from_secs(300),
            },
            FaultSpec::SlowLinks {
                site: "sophia".to_string(),
                at: SimDuration::from_secs(150),
                duration: SimDuration::from_secs(3300),
                latency_factor: 200.0,
            },
            FaultSpec::SupernodeOutage {
                at: SimDuration::from_secs(2400),
                duration: SimDuration::from_secs(450),
            },
        ];
        cfg.queue = kind;
        run_day_sweep(&cfg)
    };
    let ladder = run(QueueKind::Ladder);
    // Every fault path genuinely fired: the outage revoked running jobs,
    // and the 200x Sophia latency made reservation replies lose their 2 s
    // races (leaks that the eager release then reclaimed).
    assert!(
        ladder.jobs_killed > 0,
        "site outage revoked no running jobs"
    );
    assert!(
        ladder.leaked_grants > 0,
        "degraded links never exercised the reply-loses-race path"
    );
    assert!(
        ladder.leaked_grant_hwm < ladder.leaked_grants,
        "eager release never drained: high-water mark {} of {} leaks",
        ladder.leaked_grant_hwm,
        ladder.leaked_grants
    );
    let heap = run(QueueKind::BinaryHeap);
    let cal = run(QueueKind::Calendar);
    assert_identical(&ladder, &heap, "ladder vs heap under faults");
    assert_identical(&ladder, &cal, "ladder vs calendar under faults");
}
