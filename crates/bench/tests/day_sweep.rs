//! Integration test of the day-scale sweep harness at reduced scale: the
//! compressed paper-day trace must run fast on the calendar-queue timeline
//! and reproduce the Figures 2–3 concentrate/spread contrast.

use p2pmpi_bench::workload::{run_day_sweep, DayProfile, DaySweepConfig};
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_simgrid::event::QueueKind;
use p2pmpi_simgrid::time::SimDuration;
use std::time::Instant;

/// The CI-smoke shape: the whole day's burst profile compressed into one
/// virtual hour at ~1.1k jobs.
fn reduced(strategy: StrategyKind) -> DaySweepConfig {
    let mut cfg = DaySweepConfig::new(strategy);
    cfg.profile = DayProfile::paper_day().compressed(24.0).scaled(0.05);
    cfg.sample_period = SimDuration::from_secs(60);
    cfg
}

#[test]
fn reduced_day_sweep_shows_the_concentrate_spread_contrast() {
    let start = Instant::now();
    let conc = run_day_sweep(&reduced(StrategyKind::Concentrate));
    let spread = run_day_sweep(&reduced(StrategyKind::Spread));
    let wall = start.elapsed();
    assert!(
        wall.as_secs() < 30,
        "two reduced day sweeps took {wall:?}; the full day must stay in single-digit seconds"
    );

    for (name, r) in [("concentrate", &conc), ("spread", &spread)] {
        assert_eq!(r.site_names[0], "nancy");
        assert!(
            r.submitted > 800,
            "{name}: only {} jobs arrived",
            r.submitted
        );
        assert_eq!(r.submitted, r.succeeded + r.failed, "{name}");
        assert!(
            r.succeeded > r.submitted / 2,
            "{name}: {}/{} jobs succeeded",
            r.succeeded,
            r.submitted
        );
        assert_eq!(
            r.virtual_end,
            p2pmpi_simgrid::time::SimTime::from_secs(3600)
        );
        // Completions, heartbeats and samples all ran on the timeline.
        assert!(r.events_processed > r.succeeded as u64, "{name}");
        // Some sample must have caught work in flight.
        assert!(
            r.samples.iter().any(|s| s.running.iter().sum::<u32>() > 0),
            "{name}: utilisation samples never saw a running process"
        );
    }

    // The Figures 2–3 narrative: the concentrate run keeps (nearly) all the
    // work at Nancy, the spread run pushes a substantial share of it to the
    // other sites.
    let conc_nancy = conc.site_work_share()[0];
    let spread_nancy = spread.site_work_share()[0];
    assert!(conc_nancy > 0.85, "concentrate nancy share {conc_nancy}");
    assert!(spread_nancy < 0.80, "spread nancy share {spread_nancy}");
    assert!(
        conc_nancy > spread_nancy + 0.1,
        "contrast too weak: concentrate {conc_nancy} vs spread {spread_nancy}"
    );
    let spread_remote_sites = spread
        .site_work_share()
        .iter()
        .skip(1)
        .filter(|&&s| s > 0.01)
        .count();
    assert!(
        spread_remote_sites >= 2,
        "spread reached {spread_remote_sites} remote sites"
    );
}

#[test]
fn heap_and_calendar_timelines_agree_on_the_sweep_outcome() {
    // The queue kind is a performance choice, never a semantic one: the
    // same trace must produce identical outcomes on both structures.
    let mut heap_cfg = reduced(StrategyKind::Concentrate);
    heap_cfg.queue = QueueKind::BinaryHeap;
    let heap = run_day_sweep(&heap_cfg);
    let cal = run_day_sweep(&reduced(StrategyKind::Concentrate));
    assert_eq!(heap.submitted, cal.submitted);
    assert_eq!(heap.succeeded, cal.succeeded);
    assert_eq!(heap.failed, cal.failed);
    assert_eq!(heap.events_processed, cal.events_processed);
    assert_eq!(heap.core_seconds, cal.core_seconds);
    let heap_samples: Vec<_> = heap.samples.iter().map(|s| &s.running).collect();
    let cal_samples: Vec<_> = cal.samples.iter().map(|s| &s.running).collect();
    assert_eq!(heap_samples, cal_samples);
}
