//! Integration test of the sweep-scale claim: modeled Figure 4 points at
//! 1k–2k ranks — far beyond the paper grid's 1040 cores and the executed
//! backend's thread-per-rank ceiling — complete in (fractions of) seconds
//! and behave sanely.

use p2pmpi_bench::experiments::{modeled_kernel_times, Fig4Kernel, Fig4Settings};
use p2pmpi_core::strategy::StrategyKind;
use p2pmpi_simgrid::time::SimDuration;
use std::time::Instant;

#[test]
fn ep_modeled_sweep_reaches_2048_ranks_in_seconds() {
    let settings = Fig4Settings::default();
    let counts = [512u32, 1024, 2048];
    let start = Instant::now();
    let spread = modeled_kernel_times(
        Fig4Kernel::Ep,
        StrategyKind::Spread,
        &counts,
        &settings,
        None,
    );
    let concentrate = modeled_kernel_times(
        Fig4Kernel::Ep,
        StrategyKind::Concentrate,
        &counts,
        &settings,
        None,
    );
    let wall = start.elapsed();
    assert!(
        wall.as_secs() < 30,
        "six modeled EP points through 2048 ranks took {wall:?}; the analytical backend must stay in seconds"
    );
    for points in [&spread, &concentrate] {
        assert_eq!(points.len(), 3);
        for p in points.iter() {
            assert!(p.verified);
            assert!(p.makespan > SimDuration::ZERO);
        }
        // EP is embarrassingly parallel: doubling ranks keeps cutting the
        // virtual time even at sweep scale (class B work per rank halves,
        // the two allreduces only grow logarithmically).
        assert!(points[1].makespan < points[0].makespan);
        assert!(points[2].makespan < points[1].makespan);
    }
    // Spread uses more hosts than concentrate at every point.
    for (s, c) in spread.iter().zip(&concentrate) {
        assert!(s.hosts_used > c.hosts_used);
    }
}

#[test]
fn is_modeled_point_runs_at_512_ranks() {
    // IS models the full ring alltoall(v) schedule (n² messages per
    // iteration), so keep the integration test at 512 ranks; perf_report
    // measures 1024 and the fig4_is binary takes --ranks for more.
    let settings = Fig4Settings::default();
    let start = Instant::now();
    let points = modeled_kernel_times(
        Fig4Kernel::Is,
        StrategyKind::Concentrate,
        &[512],
        &settings,
        None,
    );
    let wall = start.elapsed();
    assert!(
        wall.as_secs() < 30,
        "one modeled IS point at 512 ranks took {wall:?}"
    );
    assert_eq!(points[0].processes, 512);
    assert!(points[0].verified);
    // Ten iterations of WAN-crossing collectives cannot be free.
    assert!(points[0].makespan > SimDuration::from_millis(100));
}
