//! Integration tests of the recovery-time metric: every verdict carries a
//! time-to-95%-of-twin-utilisation, composition makes recovery strictly
//! harder than the lone fault, and the composed/partial-site fault paths
//! stay bit-identical whichever queue structure backs the timeline.

use p2pmpi_bench::scenario::{
    outage_in_crowd_config, recovery_to_twin, run_scenario, Scenario, ScenarioParams,
};
use p2pmpi_bench::workload::{flatten_faults, run_day_sweep, FaultSpec};
use p2pmpi_simgrid::event::QueueKind;

/// The CI smoke scale of the scenario matrix: the day in one virtual hour.
fn ci_params() -> ScenarioParams {
    ScenarioParams {
        compress: 24.0,
        ..ScenarioParams::default()
    }
}

#[test]
fn baseline_day_recovers_instantly() {
    // No outage window means nothing to recover from: the verdict's
    // recovery time is defined as zero (not absent — `None` is reserved
    // for a run that never regained the twin's utilisation).
    let v = run_scenario(Scenario::BaselineDay, &ci_params());
    assert_eq!(v.recovery_secs, Some(0.0));
    assert!(v.passed(), "baseline day failed its own gates");
}

#[test]
fn composed_outage_recovers_strictly_later_than_the_lone_outage() {
    // The composition claim: an outage *during* the flash crowd takes
    // strictly longer to refill than the same-shaped lone outage, because
    // the outage clears into the crowd's hold tail — the twin's bar is
    // still crowd-inflated while arrivals have collapsed.  And the pinned
    // adversarial phase (`OUTAGE_IN_CROWD_WORST_OFFSET_SECS`) is strictly
    // worse again: that ordering is exactly what `fault_search` hunts for.
    let params = ci_params();
    let lone = run_scenario(Scenario::SiteOutage, &params);
    let composed = run_scenario(Scenario::OutageInCrowd, &params);
    let worst = run_scenario(Scenario::OutageInCrowdWorst, &params);

    let lone_s = lone.recovery_secs.expect("lone outage never recovered");
    let composed_s = composed
        .recovery_secs
        .expect("composed outage never recovered");
    let worst_s = worst.recovery_secs.expect("worst phase never recovered");

    // One core-second bin at this scale is sample_period/compress = 12.5 s:
    // the composed recovery must be a real delay, not bin jitter.
    assert!(
        composed_s >= 12.5,
        "composed recovery {composed_s}s is below one bin — the refill is not arrival-limited"
    );
    assert!(
        composed_s > lone_s,
        "composed outage recovered in {composed_s}s, not strictly later than the lone outage's {lone_s}s"
    );
    assert!(
        worst_s > composed_s,
        "adversarial phase recovered in {worst_s}s, not strictly later than the nominal onset's {composed_s}s"
    );

    // All three still pass their graceful-degradation and SLO gates: the
    // point of the worst case is a *measured* longer recovery, not a miss.
    for (name, v) in [("lone", &lone), ("composed", &composed), ("worst", &worst)] {
        assert!(v.passed(), "{name} scenario failed its gates");
    }
}

#[test]
fn composed_and_partial_site_faults_are_queue_invariant() {
    // `Compose`/`PhaseShift` unfold to plain timeline faults and
    // `PartialSite` kills a host subset — none of it may depend on the
    // queue structure.  Both fault shapes must produce bit-identical
    // outcomes (and therefore bit-identical recovery times) on all three
    // queue kinds.
    let run_composed = |kind: QueueKind| {
        let params = ScenarioParams {
            queue: kind,
            ..ci_params()
        };
        run_day_sweep(&outage_in_crowd_config(0.0, &params))
    };
    let ladder = run_composed(QueueKind::Ladder);
    let heap = run_composed(QueueKind::BinaryHeap);
    let cal = run_composed(QueueKind::Calendar);

    // The crowd-only twin scores each run; the nominal outage window ends
    // at 12:30 on the uncompressed day = 1875 s compressed.
    let mut twin_cfg = outage_in_crowd_config(0.0, &ci_params());
    twin_cfg.faults = flatten_faults(&twin_cfg.faults)
        .into_iter()
        .filter(|f| matches!(f, FaultSpec::FlashCrowd { .. }))
        .collect();
    let twin = run_day_sweep(&twin_cfg);
    let end = 12.5 * 3600.0 / 24.0;
    let recovery = recovery_to_twin(&ladder, &twin, end);
    assert!(ladder.jobs_killed > 0, "the composed outage killed no jobs");
    for (name, other) in [("heap", &heap), ("calendar", &cal)] {
        assert_eq!(ladder.submitted, other.submitted, "{name}");
        assert_eq!(ladder.succeeded, other.succeeded, "{name}");
        assert_eq!(ladder.failed, other.failed, "{name}");
        assert_eq!(ladder.timeouts, other.timeouts, "{name}");
        assert_eq!(ladder.jobs_killed, other.jobs_killed, "{name}");
        assert_eq!(ladder.events_processed, other.events_processed, "{name}");
        assert_eq!(ladder.bin_secs, other.bin_secs, "{name}");
        assert_eq!(ladder.site_core_bins, other.site_core_bins, "{name}");
        assert_eq!(recovery, recovery_to_twin(other, &twin, end), "{name}");
    }

    // Same contract for the rack brown-out (`PartialSite`).
    let run_rack = |kind: QueueKind| {
        let params = ScenarioParams {
            queue: kind,
            ..ci_params()
        };
        run_day_sweep(&Scenario::RackOutage.config(&params))
    };
    let rack_ladder = run_rack(QueueKind::Ladder);
    let rack_heap = run_rack(QueueKind::BinaryHeap);
    let rack_cal = run_rack(QueueKind::Calendar);
    assert!(
        rack_ladder.jobs_killed > 0,
        "the rack brown-out killed no jobs"
    );
    for (name, other) in [("heap", &rack_heap), ("calendar", &rack_cal)] {
        assert_eq!(rack_ladder.submitted, other.submitted, "rack: {name}");
        assert_eq!(rack_ladder.succeeded, other.succeeded, "rack: {name}");
        assert_eq!(rack_ladder.failed, other.failed, "rack: {name}");
        assert_eq!(rack_ladder.jobs_killed, other.jobs_killed, "rack: {name}");
        assert_eq!(
            rack_ladder.events_processed, other.events_processed,
            "rack: {name}"
        );
        assert_eq!(
            rack_ladder.site_core_bins, other.site_core_bins,
            "rack: {name}"
        );
    }
}
