//! Host capacities.
//!
//! Step 6 of the reservation procedure defines the capacity of host `i` as
//! `c_i = min(P_i, n)`: the owner accepts at most `P_i` processes of one
//! application, and the allocator never places more than `n` processes of an
//! `n`-process job on a single host, because with replication two copies of
//! the same logical process would otherwise share the host.

/// Capacity of one host for a job of `n` logical processes, given the
/// owner's `P` setting.
pub fn host_capacity(owner_p: u32, n: u32) -> u32 {
    owner_p.min(n)
}

/// Capacities for a whole candidate list.
pub fn capacities(owner_ps: &[u32], n: u32) -> Vec<u32> {
    owner_ps.iter().map(|&p| host_capacity(p, n)).collect()
}

/// Sum of capacities, used by the feasibility check
/// `Σ c_i ≥ n × r`.
pub fn total_capacity(capacities: &[u32]) -> u64 {
    capacities.iter().map(|&c| c as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_min_of_p_and_n() {
        assert_eq!(host_capacity(4, 100), 4);
        assert_eq!(host_capacity(8, 3), 3);
        assert_eq!(host_capacity(0, 5), 0);
    }

    #[test]
    fn vectorised_capacities() {
        assert_eq!(capacities(&[1, 2, 16], 4), vec![1, 2, 4]);
        assert_eq!(total_capacity(&[1, 2, 4]), 7);
        assert_eq!(total_capacity(&[]), 0);
    }

    #[test]
    fn marginal_case_from_the_paper() {
        // "we must not allocate more than n processes to a single host even
        // if P > n since two copies would be on that host"
        let n = 3;
        let p = 8;
        assert_eq!(host_capacity(p, n), n);
    }
}
