//! The *concentrate* strategy.
//!
//! "Concentrate tends to maximize locality between processes by using as many
//! cores as hosts offer.  The strategy is to assign the maximum MPI processes
//! to the capacity of each host (c_i)." (Section 4.3.)
//!
//! The implementation is the paper's pseudocode: walk the selected hosts in
//! ascending latency order and give each host `min(c_i, remaining)` processes
//! until all `n × r` are placed.

use crate::strategy::{check_preconditions, AllocationStrategy};

/// Fill each host to capacity, closest hosts first.
#[derive(Debug, Clone, Copy, Default)]
pub struct Concentrate;

impl AllocationStrategy for Concentrate {
    fn name(&self) -> &'static str {
        "concentrate"
    }

    fn distribute_into(&self, capacities: &[u32], total: u32, out: &mut Vec<u32>) {
        check_preconditions(capacities, total);
        out.clear();
        out.resize(capacities.len(), 0);
        let mut d = 0u32;
        let mut cont = total > 0;
        while cont {
            let mut i = 0;
            while i < capacities.len() && cont {
                out[i] = capacities[i].min(total - d);
                d += out[i];
                if d == total {
                    cont = false;
                }
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fills_closest_hosts_first() {
        // Figure 2: up to the local site's core capacity, only the closest
        // hosts are used.
        let u = Concentrate.distribute(&[4, 4, 4, 4], 10);
        assert_eq!(u, vec![4, 4, 2, 0]);
    }

    #[test]
    fn exact_capacity_fits_exactly() {
        let u = Concentrate.distribute(&[4, 4], 8);
        assert_eq!(u, vec![4, 4]);
    }

    #[test]
    fn single_host_can_take_everything() {
        let u = Concentrate.distribute(&[16, 4, 4], 10);
        assert_eq!(u, vec![10, 0, 0]);
    }

    #[test]
    fn zero_capacity_hosts_are_skipped() {
        let u = Concentrate.distribute(&[0, 3, 0, 3], 4);
        assert_eq!(u, vec![0, 3, 0, 1]);
    }

    #[test]
    fn zero_total_is_all_zeros() {
        assert_eq!(Concentrate.distribute(&[2, 2], 0), vec![0, 0]);
    }

    proptest! {
        /// Concentrate produces a "prefix-saturated" distribution: every host
        /// that received fewer processes than its capacity is followed only
        /// by hosts that received nothing.
        #[test]
        fn concentrate_is_prefix_saturated(
            caps in prop::collection::vec(0u32..8, 1..30),
            frac in 0.0f64..1.0,
        ) {
            let cap_sum: u64 = caps.iter().map(|&c| c as u64).sum();
            let total = (cap_sum as f64 * frac).floor() as u32;
            let u = Concentrate.distribute(&caps, total);
            let mut partial_seen = false;
            for (i, (&ui, &ci)) in u.iter().zip(&caps).enumerate() {
                if partial_seen {
                    prop_assert_eq!(ui, 0, "host {} received work after a partial host", i);
                }
                if ui < ci {
                    partial_seen = true;
                }
            }
        }

        /// Concentrate never uses more hosts than spread does for the same
        /// input (it is the locality-maximising extreme).
        #[test]
        fn concentrate_uses_at_most_as_many_hosts_as_spread(
            caps in prop::collection::vec(0u32..8, 1..30),
            frac in 0.0f64..1.0,
        ) {
            let cap_sum: u64 = caps.iter().map(|&c| c as u64).sum();
            let total = (cap_sum as f64 * frac).floor() as u32;
            let uc = Concentrate.distribute(&caps, total);
            let us = crate::spread::Spread.distribute(&caps, total);
            let hosts = |u: &[u32]| u.iter().filter(|&&x| x > 0).count();
            prop_assert!(hosts(&uc) <= hosts(&us));
        }
    }
}
