//! The result of a co-allocation: which host runs which rank instances.

use crate::strategy::StrategyKind;
use p2pmpi_overlay::messages::{RankAssignment, ReservationKey};
use p2pmpi_overlay::peer::PeerId;
use p2pmpi_simgrid::topology::HostId;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One host's share of an allocation.
#[derive(Debug, Clone)]
pub struct AllocatedHost {
    /// The peer whose MPD accepted the processes.
    pub peer: PeerId,
    /// The physical host behind that peer.
    pub host: HostId,
    /// The capacity `c_i = min(P_i, n)` this host advertised.
    pub capacity: u32,
    /// The rank instances started on this host.
    pub ranks: Vec<RankAssignment>,
}

impl AllocatedHost {
    /// Number of process instances on this host (`u_i`).
    pub fn instances(&self) -> u32 {
        self.ranks.len() as u32
    }
}

/// A complete, validated placement of an `n × r` process job.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Reservation key under which the application was launched.
    pub key: ReservationKey,
    /// Number of logical MPI ranks (`n`).
    pub processes: u32,
    /// Replication degree (`r`).
    pub replication: u32,
    /// Strategy that produced the placement.
    pub strategy: StrategyKind,
    /// Hosts actually used, in ascending-latency (`slist`) order.
    pub hosts: Vec<AllocatedHost>,
}

/// Violations of the allocation invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationInvariantError {
    /// Total instances differ from `n × r`.
    WrongInstanceCount {
        /// Instances present in the allocation.
        found: u64,
        /// Expected `n × r`.
        expected: u64,
    },
    /// A host carries two copies of the same rank.
    ReplicasShareHost {
        /// The offending host.
        host: HostId,
        /// The duplicated rank.
        rank: u32,
    },
    /// A rank does not have exactly `r` copies.
    WrongReplicaCount {
        /// The rank in question.
        rank: u32,
        /// Copies found.
        found: u32,
    },
    /// A host received more instances than its advertised capacity.
    OverCapacity {
        /// The offending host.
        host: HostId,
        /// Instances placed there.
        placed: u32,
        /// Its capacity.
        capacity: u32,
    },
}

impl fmt::Display for AllocationInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationInvariantError::WrongInstanceCount { found, expected } => {
                write!(f, "allocation has {found} instances, expected {expected}")
            }
            AllocationInvariantError::ReplicasShareHost { host, rank } => {
                write!(f, "two replicas of rank {rank} share {host}")
            }
            AllocationInvariantError::WrongReplicaCount { rank, found } => {
                write!(f, "rank {rank} has {found} replicas")
            }
            AllocationInvariantError::OverCapacity {
                host,
                placed,
                capacity,
            } => write!(
                f,
                "{host} got {placed} instances but capacity is {capacity}"
            ),
        }
    }
}

impl std::error::Error for AllocationInvariantError {}

impl Allocation {
    /// Total number of process instances placed.
    pub fn total_instances(&self) -> u64 {
        self.hosts.iter().map(|h| h.ranks.len() as u64).sum()
    }

    /// Number of distinct hosts used.
    pub fn hosts_used(&self) -> usize {
        self.hosts.len()
    }

    /// The host running a given `(rank, replica)` instance, if any.
    pub fn host_of(&self, rank: u32, replica: u32) -> Option<HostId> {
        self.hosts.iter().find_map(|h| {
            h.ranks
                .iter()
                .any(|ra| ra.rank == rank && ra.replica == replica)
                .then_some(h.host)
        })
    }

    /// Placement table indexed `[rank][replica] → host`.
    pub fn placement(&self) -> Vec<Vec<HostId>> {
        let mut table =
            vec![vec![HostId(usize::MAX); self.replication as usize]; self.processes as usize];
        for h in &self.hosts {
            for ra in &h.ranks {
                table[ra.rank as usize][ra.replica as usize] = h.host;
            }
        }
        table
    }

    /// Number of process instances per host, keyed by host.
    pub fn instances_per_host(&self) -> HashMap<HostId, u32> {
        self.hosts.iter().map(|h| (h.host, h.instances())).collect()
    }

    /// Checks every structural invariant the paper requires of a valid
    /// allocation.
    pub fn validate(&self) -> Result<(), AllocationInvariantError> {
        let expected = self.processes as u64 * self.replication as u64;
        let found = self.total_instances();
        if found != expected {
            return Err(AllocationInvariantError::WrongInstanceCount { found, expected });
        }
        let mut replica_counts = vec![0u32; self.processes as usize];
        for h in &self.hosts {
            if h.instances() > h.capacity {
                return Err(AllocationInvariantError::OverCapacity {
                    host: h.host,
                    placed: h.instances(),
                    capacity: h.capacity,
                });
            }
            let mut seen = HashSet::new();
            for ra in &h.ranks {
                if !seen.insert(ra.rank) {
                    return Err(AllocationInvariantError::ReplicasShareHost {
                        host: h.host,
                        rank: ra.rank,
                    });
                }
                replica_counts[ra.rank as usize] += 1;
            }
        }
        for (rank, &count) in replica_counts.iter().enumerate() {
            if count != self.replication {
                return Err(AllocationInvariantError::WrongReplicaCount {
                    rank: rank as u32,
                    found: count,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(peer: usize, host: usize, capacity: u32, ranks: &[(u32, u32)]) -> AllocatedHost {
        AllocatedHost {
            peer: PeerId(peer),
            host: HostId(host),
            capacity,
            ranks: ranks
                .iter()
                .map(|&(rank, replica)| RankAssignment { rank, replica })
                .collect(),
        }
    }

    fn valid_allocation() -> Allocation {
        Allocation {
            key: ReservationKey(1),
            processes: 3,
            replication: 2,
            strategy: StrategyKind::Spread,
            hosts: vec![
                host(0, 0, 3, &[(0, 0), (1, 0), (2, 0)]),
                host(1, 1, 3, &[(0, 1), (1, 1), (2, 1)]),
            ],
        }
    }

    #[test]
    fn valid_allocation_passes_and_reports_shape() {
        let a = valid_allocation();
        assert!(a.validate().is_ok());
        assert_eq!(a.total_instances(), 6);
        assert_eq!(a.hosts_used(), 2);
        assert_eq!(a.host_of(1, 1), Some(HostId(1)));
        assert_eq!(a.host_of(1, 0), Some(HostId(0)));
        assert_eq!(a.host_of(7, 0), None);
        assert_eq!(a.placement()[2], vec![HostId(0), HostId(1)]);
        assert_eq!(a.instances_per_host()[&HostId(0)], 3);
    }

    #[test]
    fn missing_instances_are_detected() {
        let mut a = valid_allocation();
        a.hosts[1].ranks.pop();
        assert_eq!(
            a.validate(),
            Err(AllocationInvariantError::WrongInstanceCount {
                found: 5,
                expected: 6
            })
        );
    }

    #[test]
    fn co_located_replicas_are_detected() {
        let a = Allocation {
            key: ReservationKey(2),
            processes: 2,
            replication: 2,
            strategy: StrategyKind::Concentrate,
            hosts: vec![
                host(0, 0, 4, &[(0, 0), (1, 0), (0, 1)]),
                host(1, 1, 4, &[(1, 1)]),
            ],
        };
        assert_eq!(
            a.validate(),
            Err(AllocationInvariantError::ReplicasShareHost {
                host: HostId(0),
                rank: 0
            })
        );
    }

    #[test]
    fn wrong_replica_count_is_detected() {
        let a = Allocation {
            key: ReservationKey(3),
            processes: 2,
            replication: 2,
            strategy: StrategyKind::Spread,
            hosts: vec![
                host(0, 0, 2, &[(0, 0), (1, 0)]),
                host(1, 1, 2, &[(0, 1)]),
                host(2, 2, 2, &[(0, 2)]),
            ],
        };
        // Rank 0 has three copies spread over distinct hosts, rank 1 only
        // one; the per-rank count check fires.
        assert!(matches!(
            a.validate(),
            Err(AllocationInvariantError::WrongReplicaCount { .. })
        ));
    }

    #[test]
    fn over_capacity_is_detected() {
        let a = Allocation {
            key: ReservationKey(4),
            processes: 3,
            replication: 1,
            strategy: StrategyKind::Concentrate,
            hosts: vec![host(0, 0, 2, &[(0, 0), (1, 0), (2, 0)])],
        };
        assert_eq!(
            a.validate(),
            Err(AllocationInvariantError::OverCapacity {
                host: HostId(0),
                placed: 3,
                capacity: 2
            })
        );
    }

    #[test]
    fn error_display() {
        let e = AllocationInvariantError::ReplicasShareHost {
            host: HostId(3),
            rank: 1,
        };
        assert!(e.to_string().contains("rank 1"));
    }
}
