//! Allocation feasibility.
//!
//! Step 6 of the reservation procedure: "the MPD must decide whether the
//! allocation is feasible.  It is feasible if the two following conditions
//! are met: (a) |slist| ≥ r, (b) Σ c_i ≥ n × r."
//!
//! Condition (a) guarantees enough distinct hosts so that no two replicas of
//! a process share a host; condition (b) guarantees enough total capacity.

use crate::capacity::total_capacity;
use std::fmt;

/// Why an allocation is infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Infeasibility {
    /// Fewer selected hosts than the replication degree (condition (a)).
    NotEnoughHostsForReplication {
        /// Number of selected hosts.
        hosts: usize,
        /// Requested replication degree.
        replication: u32,
    },
    /// Total capacity below `n × r` (condition (b)).
    InsufficientCapacity {
        /// Sum of host capacities.
        capacity: u64,
        /// Required `n × r`.
        required: u64,
    },
}

impl fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Infeasibility::NotEnoughHostsForReplication { hosts, replication } => write!(
                f,
                "only {hosts} host(s) selected but replication degree is {replication}"
            ),
            Infeasibility::InsufficientCapacity { capacity, required } => write!(
                f,
                "selected hosts offer {capacity} process slot(s), {required} needed"
            ),
        }
    }
}

impl std::error::Error for Infeasibility {}

/// Checks the two feasibility conditions for a selected host list with the
/// given capacities (`c_i = min(P_i, n)` already applied).
pub fn check_feasibility(capacities: &[u32], n: u32, r: u32) -> Result<(), Infeasibility> {
    if capacities.len() < r as usize {
        return Err(Infeasibility::NotEnoughHostsForReplication {
            hosts: capacities.len(),
            replication: r,
        });
    }
    let required = n as u64 * r as u64;
    let capacity = total_capacity(capacities);
    if capacity < required {
        return Err(Infeasibility::InsufficientCapacity { capacity, required });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn feasible_when_both_conditions_hold() {
        assert!(check_feasibility(&[2, 2, 2], 3, 2).is_ok());
        assert!(check_feasibility(&[4], 4, 1).is_ok());
    }

    #[test]
    fn replication_needs_enough_hosts() {
        // One host cannot hold two replicas of anything.
        assert_eq!(
            check_feasibility(&[8], 3, 2),
            Err(Infeasibility::NotEnoughHostsForReplication {
                hosts: 1,
                replication: 2
            })
        );
    }

    #[test]
    fn capacity_must_cover_n_times_r() {
        assert_eq!(
            check_feasibility(&[1, 1, 1], 2, 2),
            Err(Infeasibility::InsufficientCapacity {
                capacity: 3,
                required: 4
            })
        );
    }

    #[test]
    fn paper_example_two_hosts_replication_two() {
        // p2pmpirun -n 3 -r 2 prog "requires a minimum of two hosts".
        assert!(check_feasibility(&[3, 3], 3, 2).is_ok());
        assert!(check_feasibility(&[3], 3, 2).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = check_feasibility(&[1], 4, 2).unwrap_err();
        assert!(e.to_string().contains("replication"));
        let e = check_feasibility(&[1, 1], 4, 2).unwrap_err();
        assert!(e.to_string().contains("slot"));
    }

    proptest! {
        /// Feasibility is exactly the conjunction of the two paper conditions.
        #[test]
        fn matches_definition(
            caps in prop::collection::vec(0u32..6, 0..20),
            n in 1u32..10,
            r in 1u32..4,
        ) {
            let expected_a = caps.len() >= r as usize;
            let expected_b = caps.iter().map(|&c| c as u64).sum::<u64>() >= (n * r) as u64;
            let ok = check_feasibility(&caps, n, r).is_ok();
            prop_assert_eq!(ok, expected_a && expected_b);
        }
    }
}
