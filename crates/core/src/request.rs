//! Job requests.
//!
//! An execution is invoked as `p2pmpirun -n n -r r -a alloc prog`
//! (Section 3.2): `n` MPI processes, an optional replication degree `r`
//! (each logical process gets `r` copies on distinct hosts) and an
//! allocation strategy.

use crate::strategy::StrategyKind;
use p2pmpi_overlay::peer::PeerId;
use std::fmt;
use std::sync::Arc;

/// One host of a search-produced placement plan: the peer to book and the
/// exact MPI ranks to pin there.  Ranks are explicit (not contiguous
/// blocks) because the annealed rank→host map is what the model priced —
/// permuting ranks changes ring/tree transfer costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedHost {
    /// The MPD peer managing the planned host.
    pub peer: PeerId,
    /// The MPI ranks to place on that host, in rank order.
    pub ranks: Vec<u32>,
}

/// A request to co-allocate and launch one MPI application.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Number of logical MPI processes (`-n`).
    pub processes: u32,
    /// Replication degree (`-r`); 1 means no replication.
    pub replication: u32,
    /// Allocation strategy (`-a`).
    pub strategy: StrategyKind,
    /// Program name (informational; the MPI runtime decides what to run).
    pub program: String,
    /// Search-produced placement plan ([`StrategyKind::Searched`] only).
    /// The co-allocator books the planned peers first and pins the planned
    /// ranks when every planned peer grants with enough capacity; any
    /// shortfall (refusal, death, lost capacity, replication > 1) falls
    /// back to the strategy's distribution function over whatever was
    /// granted.  Shared, not cloned, per brokering attempt.
    pub plan: Option<Arc<[PlannedHost]>>,
}

/// Errors detected before any network interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// `n` must be at least 1.
    ZeroProcesses,
    /// `r` must be at least 1.
    ZeroReplication,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::ZeroProcesses => write!(f, "a job needs at least one process"),
            RequestError::ZeroReplication => write!(f, "the replication degree must be >= 1"),
        }
    }
}

impl std::error::Error for RequestError {}

impl JobRequest {
    /// Builds a plain (non-replicated) request.
    pub fn new(processes: u32, strategy: StrategyKind, program: impl Into<String>) -> Self {
        JobRequest {
            processes,
            replication: 1,
            strategy,
            program: program.into(),
            plan: None,
        }
    }

    /// Builds a replicated request (`-r r`).
    pub fn replicated(
        processes: u32,
        replication: u32,
        strategy: StrategyKind,
        program: impl Into<String>,
    ) -> Self {
        JobRequest {
            processes,
            replication,
            strategy,
            program: program.into(),
            plan: None,
        }
    }

    /// Attaches a search-produced placement plan (see [`JobRequest::plan`]).
    pub fn with_plan(mut self, plan: Arc<[PlannedHost]>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Total number of process instances to place: `n × r`.
    pub fn total_instances(&self) -> u32 {
        self.processes * self.replication
    }

    /// Validates the request parameters.
    pub fn validate(&self) -> Result<(), RequestError> {
        if self.processes == 0 {
            return Err(RequestError::ZeroProcesses);
        }
        if self.replication == 0 {
            return Err(RequestError::ZeroReplication);
        }
        Ok(())
    }

    /// The command line this request corresponds to, for traces and docs.
    pub fn command_line(&self) -> String {
        format!(
            "p2pmpirun -n {} -r {} -a {} {}",
            self.processes,
            self.replication,
            self.strategy.name(),
            self.program
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_instances_is_n_times_r() {
        let j = JobRequest::replicated(3, 2, StrategyKind::Spread, "prog");
        assert_eq!(j.total_instances(), 6);
        assert_eq!(
            JobRequest::new(5, StrategyKind::Concentrate, "p").total_instances(),
            5
        );
    }

    #[test]
    fn validation_catches_zeros() {
        assert_eq!(
            JobRequest::new(0, StrategyKind::Spread, "p").validate(),
            Err(RequestError::ZeroProcesses)
        );
        assert_eq!(
            JobRequest::replicated(3, 0, StrategyKind::Spread, "p").validate(),
            Err(RequestError::ZeroReplication)
        );
        assert!(JobRequest::new(1, StrategyKind::Spread, "p")
            .validate()
            .is_ok());
    }

    #[test]
    fn command_line_matches_paper_syntax() {
        let j = JobRequest::replicated(3, 2, StrategyKind::Spread, "prog");
        assert_eq!(j.command_line(), "p2pmpirun -n 3 -r 2 -a spread prog");
    }

    #[test]
    fn errors_format() {
        assert!(RequestError::ZeroProcesses.to_string().contains("process"));
        assert!(RequestError::ZeroReplication
            .to_string()
            .contains("replication"));
    }
}
