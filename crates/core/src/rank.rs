//! MPI rank assignment.
//!
//! Once a strategy has decided how many process instances `u_i` each selected
//! host receives, ranks are assigned with the paper's algorithm
//! (Section 4.3): walk the hosts in `slist` order, give each host `u_i`
//! consecutive ranks from a counter that wraps at `n`, and cancel the
//! reservation of hosts with `u_i = 0`.
//!
//! Criterion (b) — "no two copies of a process are on the same processor" —
//! follows from `u_i ≤ c_i ≤ n`: a host receives at most `n` consecutive
//! values of a counter that wraps at `n`, hence never the same rank twice.

use p2pmpi_overlay::messages::RankAssignment;

/// Rank assignments for one host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRanks {
    /// Index of the host in the `slist` (latency order).
    pub slist_index: usize,
    /// The rank instances this host will run.
    pub ranks: Vec<RankAssignment>,
}

/// Assigns ranks (and replica indices) to hosts from the per-host counts.
///
/// `counts[i]` is the number of process instances host `i` of the `slist`
/// receives; `n` is the number of logical ranks.  Hosts with a zero count are
/// omitted from the result — their reservation is to be cancelled, as the
/// paper prescribes.
///
/// The replica index attached to each assignment counts how many times that
/// rank has been assigned so far (0 for the primary copy, then 1, 2, …).
///
/// # Panics
///
/// Panics if `n == 0` while `counts` is non-zero, or if any `counts[i] > n`
/// (which would force two copies of a rank onto one host).
pub fn assign_ranks(counts: &[u32], n: u32) -> Vec<HostRanks> {
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return Vec::new();
    }
    assert!(n > 0, "cannot assign ranks for a zero-process job");
    assert!(
        counts.iter().all(|&c| c <= n),
        "a host was given more instances than there are ranks"
    );

    let mut result = Vec::new();
    let mut rank = 0u32;
    // How many copies of each rank have been handed out so far; used to give
    // each copy a distinct replica index.
    let mut copies = vec![0u32; n as usize];
    for (i, &ui) in counts.iter().enumerate() {
        if ui == 0 {
            continue; // reservation cancelled
        }
        let mut ranks = Vec::with_capacity(ui as usize);
        for _ in 0..ui {
            let replica = copies[rank as usize];
            copies[rank as usize] += 1;
            ranks.push(RankAssignment { rank, replica });
            rank += 1;
            if rank >= n {
                rank = 0;
            }
        }
        result.push(HostRanks {
            slist_index: i,
            ranks,
        });
    }
    result
}

/// Checks the replica-separation criterion on an assignment: no host holds
/// two copies of the same rank.  Used by tests and by the allocation
/// validator.
pub fn replicas_are_separated(assignment: &[HostRanks]) -> bool {
    assignment.iter().all(|h| {
        let mut seen = std::collections::HashSet::new();
        h.ranks.iter().all(|r| seen.insert(r.rank))
    })
}

/// Checks that every rank `0..n` appears exactly `r` times overall.
pub fn replication_is_complete(assignment: &[HostRanks], n: u32, r: u32) -> bool {
    let mut counts = vec![0u32; n as usize];
    for h in assignment {
        for ra in &h.ranks {
            if ra.rank >= n {
                return false;
            }
            counts[ra.rank as usize] += 1;
        }
    }
    counts.iter().all(|&c| c == r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_concentrate_style_assignment() {
        // n=4, one host of capacity 4: ranks 0..3 on that host.
        let a = assign_ranks(&[4], 4);
        assert_eq!(a.len(), 1);
        assert_eq!(
            a[0].ranks.iter().map(|r| r.rank).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(replicas_are_separated(&a));
        assert!(replication_is_complete(&a, 4, 1));
    }

    #[test]
    fn paper_example_n3_r2_two_hosts() {
        // "processes P0, P1 and P2 ... mapped on H0 and their replicas P'0,
        // P'1 and P'2 on H1".
        let a = assign_ranks(&[3, 3], 3);
        assert_eq!(a.len(), 2);
        assert_eq!(
            a[0].ranks,
            vec![
                RankAssignment {
                    rank: 0,
                    replica: 0
                },
                RankAssignment {
                    rank: 1,
                    replica: 0
                },
                RankAssignment {
                    rank: 2,
                    replica: 0
                }
            ]
        );
        assert_eq!(
            a[1].ranks,
            vec![
                RankAssignment {
                    rank: 0,
                    replica: 1
                },
                RankAssignment {
                    rank: 1,
                    replica: 1
                },
                RankAssignment {
                    rank: 2,
                    replica: 1
                }
            ]
        );
        assert!(replicas_are_separated(&a));
        assert!(replication_is_complete(&a, 3, 2));
    }

    #[test]
    fn zero_count_hosts_are_cancelled() {
        let a = assign_ranks(&[2, 0, 2], 4);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].slist_index, 0);
        assert_eq!(a[1].slist_index, 2);
        assert_eq!(
            a[1].ranks.iter().map(|r| r.rank).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn spread_style_replication_interleaves_copies() {
        // n=2, r=2 over 4 hosts, one instance each: ranks 0,1,0,1 with
        // replica indices 0,0,1,1.
        let a = assign_ranks(&[1, 1, 1, 1], 2);
        let flat: Vec<(u32, u32)> = a
            .iter()
            .flat_map(|h| h.ranks.iter().map(|r| (r.rank, r.replica)))
            .collect();
        assert_eq!(flat, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        assert!(replication_is_complete(&a, 2, 2));
    }

    #[test]
    fn empty_counts_yield_empty_assignment() {
        assert!(assign_ranks(&[0, 0], 4).is_empty());
        assert!(assign_ranks(&[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "more instances than there are ranks")]
    fn overfull_host_panics() {
        assign_ranks(&[5], 4);
    }

    proptest! {
        /// For any feasible strategy output, the paper's criterion (b) holds:
        /// no host carries two copies of the same rank, and with
        /// `Σ u_i = n × r` every rank gets exactly `r` copies.
        #[test]
        fn assignment_invariants(
            n in 1u32..20,
            r in 1u32..4,
            extra_hosts in 0usize..10,
            seed in any::<u64>(),
        ) {
            // Build a random feasible distribution of n*r over enough hosts
            // with per-host counts <= n.
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let total = n * r;
            let mut remaining = total;
            let mut counts = Vec::new();
            while remaining > 0 {
                let c = rng.gen_range(0..=n.min(remaining));
                counts.push(c);
                remaining -= c;
            }
            counts.extend(std::iter::repeat_n(0u32, extra_hosts));
            let a = assign_ranks(&counts, n);
            prop_assert!(replicas_are_separated(&a));
            prop_assert!(replication_is_complete(&a, n, r));
            // Hosts in the result appear in slist order.
            let idx: Vec<usize> = a.iter().map(|h| h.slist_index).collect();
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            prop_assert_eq!(idx, sorted);
        }
    }
}
