//! The *balanced* strategy (extension).
//!
//! The paper's conclusion lists "the design of mixed strategies" as future
//! work: policies between the two extremes that do not require the user to
//! know the platform.  `Balanced(k)` is such a policy: it first fills hosts
//! like *concentrate* but never beyond `k` processes per host, then, if
//! processes remain, falls back to a *spread*-style round-robin over the
//! residual capacities.  `Balanced(1)` degenerates to spread-with-enough-
//! hosts; `Balanced(∞)` degenerates to concentrate.

use crate::strategy::{check_preconditions, AllocationStrategy};

/// Concentrate up to a per-host cap, then round-robin the remainder.
#[derive(Debug, Clone, Copy)]
pub struct Balanced {
    max_per_host: u32,
}

impl Balanced {
    /// Creates the strategy with the given per-host cap (≥ 1).
    pub fn new(max_per_host: u32) -> Self {
        assert!(max_per_host >= 1, "the per-host cap must be at least 1");
        Balanced { max_per_host }
    }

    /// The per-host cap.
    pub fn max_per_host(&self) -> u32 {
        self.max_per_host
    }
}

impl AllocationStrategy for Balanced {
    fn name(&self) -> &'static str {
        "balanced"
    }

    fn distribute_into(&self, capacities: &[u32], total: u32, out: &mut Vec<u32>) {
        check_preconditions(capacities, total);
        out.clear();
        out.resize(capacities.len(), 0);
        let mut remaining = total;

        // Phase 1: concentrate, capped at max_per_host.
        for (ui, &ci) in out.iter_mut().zip(capacities) {
            if remaining == 0 {
                break;
            }
            let take = ci.min(self.max_per_host).min(remaining);
            *ui = take;
            remaining -= take;
        }

        // Phase 2: round-robin whatever is left over the residual capacity.
        while remaining > 0 {
            let mut progressed = false;
            for (ui, &ci) in out.iter_mut().zip(capacities) {
                if remaining == 0 {
                    break;
                }
                if *ui < ci {
                    *ui += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            assert!(progressed, "feasibility precondition violated");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concentrate::Concentrate;
    use crate::spread::Spread;
    use proptest::prelude::*;

    #[test]
    fn cap_limits_first_phase() {
        let u = Balanced::new(2).distribute(&[4, 4, 4], 5);
        assert_eq!(u, vec![2, 2, 1]);
    }

    #[test]
    fn overflow_falls_back_to_round_robin() {
        let u = Balanced::new(2).distribute(&[4, 4], 7);
        assert_eq!(u, vec![4, 3]);
    }

    #[test]
    fn cap_one_is_spread_like_when_hosts_suffice() {
        let caps = vec![4, 4, 4, 4];
        assert_eq!(
            Balanced::new(1).distribute(&caps, 4),
            Spread.distribute(&caps, 4)
        );
    }

    #[test]
    fn huge_cap_is_concentrate() {
        let caps = vec![4, 2, 6];
        assert_eq!(
            Balanced::new(u32::MAX).distribute(&caps, 9),
            Concentrate.distribute(&caps, 9)
        );
    }

    #[test]
    fn accessor_returns_cap() {
        assert_eq!(Balanced::new(3).max_per_host(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cap_panics() {
        Balanced::new(0);
    }

    proptest! {
        /// Balanced uses at least as many hosts as concentrate and at most as
        /// many as spread — it sits between the two extremes.
        #[test]
        fn balanced_sits_between_extremes(
            caps in prop::collection::vec(0u32..8, 1..25),
            frac in 0.0f64..1.0,
            k in 1u32..5,
        ) {
            let cap_sum: u64 = caps.iter().map(|&c| c as u64).sum();
            let total = (cap_sum as f64 * frac).floor() as u32;
            let hosts = |u: &[u32]| u.iter().filter(|&&x| x > 0).count();
            let ub = Balanced::new(k).distribute(&caps, total);
            let uc = Concentrate.distribute(&caps, total);
            let us = Spread.distribute(&caps, total);
            prop_assert!(hosts(&ub) >= hosts(&uc));
            prop_assert!(hosts(&ub) <= hosts(&us).max(hosts(&uc)));
        }
    }
}
