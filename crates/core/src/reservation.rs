//! The co-allocation procedure (Section 4.2, Figure 1).
//!
//! [`CoAllocator::allocate`] drives the eight steps of the paper's job
//! submission procedure against a simulated [`Overlay`]:
//!
//! 1. **Submission** — the user's `JobRequest` reaches the local MPD.
//! 2. **Booking** — the MPD checks it knows at least `n × r` peers
//!    (refreshing its cache from the supernode otherwise), sorts its cache by
//!    ascending latency and books hosts from the front, overbooking to
//!    anticipate unavailable hosts.
//! 3. **RS–RS brokering** — the local RS sends reservation requests carrying
//!    a unique hash key.  Each outbound request arms a timeout event on the
//!    overlay timeline; the simulated reply cancels it
//!    (`Overlay::rs_send` / `Overlay::rs_collect_into`).
//! 4. Remote RSs accept (OK + their `P`) or refuse (NOK).
//! 5. **RS–MPD response** — answers are gathered into `rlist`; peers whose
//!    armed timeout fired (they never answered) are marked dead and dropped
//!    from the cache.  The virtual clock genuinely waits those timeouts
//!    out — dead-peer stalls are observable on the timeline.
//! 6. **Allocation** — `slist` is the first `min(|rlist|, n × r)` hosts;
//!    surplus reservations are cancelled; feasibility is checked; the chosen
//!    strategy distributes processes; ranks are assigned.
//! 7. Remote MPDs verify the key.
//! 8. Remote MPDs launch the processes.

use crate::allocation::{AllocatedHost, Allocation};
use crate::capacity::host_capacity;
use crate::feasibility::{check_feasibility, Infeasibility};
use crate::overbooking::OverbookingPolicy;
use crate::rank::{assign_ranks, HostRanks};
use crate::request::{JobRequest, PlannedHost, RequestError};
use p2pmpi_overlay::messages::{RankAssignment, ReservationKey, ReservationReply, StartReply};
use p2pmpi_overlay::overlay::{Overlay, RsOutcome};
use p2pmpi_overlay::peer::PeerId;
use p2pmpi_simgrid::time::SimDuration;
use p2pmpi_simgrid::trace::TraceCategory;
use std::cell::RefCell;
use std::fmt;

/// Why a co-allocation attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// The request itself was invalid.
    InvalidRequest(RequestError),
    /// The selected hosts cannot satisfy the request (step 6 conditions).
    Infeasible(Infeasibility),
    /// A remote MPD refused or failed the start request (steps 7–8).
    StartFailed {
        /// The peer whose start failed.
        peer: PeerId,
        /// What it answered.
        reply: StartReply,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::InvalidRequest(e) => write!(f, "invalid request: {e}"),
            AllocationError::Infeasible(e) => write!(f, "allocation infeasible: {e}"),
            AllocationError::StartFailed { peer, reply } => {
                write!(f, "start request to {peer} failed: {reply:?}")
            }
        }
    }
}

impl std::error::Error for AllocationError {}

/// Statistics describing one co-allocation attempt.
#[derive(Debug, Clone)]
pub struct CoAllocationReport {
    /// The reservation key used for this round.
    pub key: ReservationKey,
    /// The resulting allocation, or why it failed.
    pub outcome: Result<Allocation, AllocationError>,
    /// Number of reservation requests sent (booking size after overbooking).
    pub booked: usize,
    /// Number of OK answers.
    pub granted: usize,
    /// Number of NOK answers.
    pub refused: usize,
    /// Number of peers marked dead (timeouts).
    pub dead: usize,
    /// Reservations granted but cancelled because they were not needed.
    pub cancelled_unused: usize,
    /// Virtual time spent on the whole procedure (booking, brokering,
    /// starting), assuming each phase contacts peers concurrently.
    pub elapsed: SimDuration,
}

impl CoAllocationReport {
    /// True if an allocation was produced.
    pub fn is_success(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The allocation, panicking on failure (convenience for tests and
    /// experiment harnesses).
    pub fn allocation(&self) -> &Allocation {
        self.outcome
            .as_ref()
            .expect("co-allocation failed; check outcome before unwrapping")
    }
}

/// Parameters of the co-allocation driver.
#[derive(Debug, Clone, Copy)]
pub struct CoAllocatorParams {
    /// Overbooking policy applied at the booking step.
    pub overbooking: OverbookingPolicy,
    /// Whether to pull a fresh host list from the supernode (and probe the
    /// newcomers) when the cache holds fewer peers than `n × r`.
    pub refresh_cache_if_short: bool,
    /// Whether the submitter's own host is a candidate resource (it is in
    /// the paper's experiments: the Nancy submitter is part of the Nancy
    /// pool).
    pub include_submitter: bool,
}

impl Default for CoAllocatorParams {
    fn default() -> Self {
        CoAllocatorParams {
            overbooking: OverbookingPolicy::default(),
            refresh_cache_if_short: true,
            include_submitter: true,
        }
    }
}

/// Counters accumulated while the procedure runs; assembled into the
/// [`CoAllocationReport`] once the outcome is known, so the report never
/// carries a placeholder error.
#[derive(Debug, Clone, Copy)]
struct BrokeringStats {
    booked: usize,
    granted: usize,
    refused: usize,
    dead: usize,
    cancelled_unused: usize,
    elapsed: SimDuration,
}

impl BrokeringStats {
    fn new() -> Self {
        BrokeringStats {
            booked: 0,
            granted: 0,
            refused: 0,
            dead: 0,
            cancelled_unused: 0,
            elapsed: SimDuration::ZERO,
        }
    }
}

/// Reusable buffers for the per-job hot path.  Booking lists, brokering
/// outcomes, `rlist`, capacities and per-host counts live here and are
/// cleared — never freed — between jobs, so a warm allocator submits jobs
/// without heap traffic beyond the returned [`Allocation`] itself.
#[derive(Debug, Default)]
struct AllocScratch {
    booked: Vec<PeerId>,
    outcomes: Vec<(PeerId, RsOutcome)>,
    start_outcomes: Vec<(PeerId, StartReply, SimDuration)>,
    rlist: Vec<(PeerId, u32)>, // (peer, owner P)
    capacities: Vec<u32>,
    counts: Vec<u32>,
}

/// Drives the reservation procedure over an overlay.
///
/// The driver owns reusable scratch buffers, so keep one allocator alive
/// across a job sweep instead of constructing one per submission.
#[derive(Debug, Default)]
pub struct CoAllocator {
    params: CoAllocatorParams,
    scratch: RefCell<AllocScratch>,
}

impl Clone for CoAllocator {
    fn clone(&self) -> Self {
        // Scratch space is per-instance; clones start cold.
        CoAllocator {
            params: self.params,
            scratch: RefCell::new(AllocScratch::default()),
        }
    }
}

impl CoAllocator {
    /// A driver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A driver with explicit parameters.
    pub fn with_params(params: CoAllocatorParams) -> Self {
        CoAllocator {
            params,
            scratch: RefCell::new(AllocScratch::default()),
        }
    }

    /// The driver parameters.
    pub fn params(&self) -> CoAllocatorParams {
        self.params
    }

    /// Runs the full procedure for `request`, submitted from `submitter`.
    pub fn allocate(
        &self,
        overlay: &mut Overlay,
        submitter: PeerId,
        request: &JobRequest,
    ) -> CoAllocationReport {
        let key = overlay.generate_key();
        let mut stats = BrokeringStats::new();
        let outcome = self.run_procedure(overlay, submitter, request, key, &mut stats);
        CoAllocationReport {
            key,
            outcome,
            booked: stats.booked,
            granted: stats.granted,
            refused: stats.refused,
            dead: stats.dead,
            cancelled_unused: stats.cancelled_unused,
            elapsed: stats.elapsed,
        }
    }

    /// The eight steps proper.  Early exits use `?`/`return Err(..)`;
    /// `stats` carries whatever counters were accumulated up to that point.
    fn run_procedure(
        &self,
        overlay: &mut Overlay,
        submitter: PeerId,
        request: &JobRequest,
        key: ReservationKey,
        stats: &mut BrokeringStats,
    ) -> Result<Allocation, AllocationError> {
        request
            .validate()
            .map_err(AllocationError::InvalidRequest)?;
        let n = request.processes;
        let r = request.replication;
        let total = request.total_instances();

        // Step 2 — booking: make sure enough peers are known, then walk the
        // cache in ascending-latency order.
        if self.params.refresh_cache_if_short
            && overlay.node(submitter).cache.len() < total as usize
        {
            let (added, d) = overlay.refresh_cache(submitter);
            stats.elapsed += d;
            if added > 0 {
                stats.elapsed += overlay.probe_round(submitter);
            }
        }
        let mut scratch = self.scratch.borrow_mut();
        let AllocScratch {
            booked,
            outcomes,
            start_outcomes,
            rlist,
            capacities,
            counts,
        } = &mut *scratch;

        let candidate_count =
            usize::from(self.params.include_submitter) + overlay.node(submitter).cache.len();
        let booking_target = self
            .params
            .overbooking
            .booking_target(total as usize, candidate_count);
        booked.clear();
        if let Some(plan) = request.plan.as_deref() {
            // A search plan books its peers first, in plan order, so a full
            // round of grants puts them at the head of the slist.
            for ph in plan.iter() {
                if !booked.contains(&ph.peer) {
                    booked.push(ph.peer);
                }
            }
        }
        let plan_prefix = booked.len();
        if self.params.include_submitter && booking_target > 0 && !booked.contains(&submitter) {
            booked.push(submitter);
        }
        for peer in overlay.ranking_iter(submitter) {
            if booked.len() >= booking_target.max(plan_prefix) {
                break;
            }
            if booked[..plan_prefix].contains(&peer) {
                continue;
            }
            booked.push(peer);
        }
        stats.booked = booked.len();

        // Steps 3–5 — RS brokering, fully event-driven: every outbound
        // request arms a timeout event on the overlay timeline and the
        // simulated reply races it (`Overlay::rs_send`).  Requests go out
        // concurrently; `rs_collect_into` runs the timeline until the whole
        // round has resolved and hands the outcomes back in send order, so
        // the virtual clock genuinely waits out dead peers' timeouts while
        // the phase's reported duration stays the slowest exchange.
        rlist.clear();
        for &peer in booked.iter() {
            overlay.rs_send(submitter, peer, key, total);
        }
        overlay.rs_collect_into(outcomes);
        let mut phase_elapsed = SimDuration::ZERO;
        for &(peer, outcome) in outcomes.iter() {
            match outcome {
                RsOutcome::Reply { reply, elapsed } => {
                    phase_elapsed = phase_elapsed.max(elapsed);
                    match reply {
                        ReservationReply::Ok { capacity_p } => {
                            stats.granted += 1;
                            rlist.push((peer, capacity_p));
                        }
                        ReservationReply::Nok(_) => stats.refused += 1,
                    }
                }
                RsOutcome::Timeout { elapsed } => {
                    phase_elapsed = phase_elapsed.max(elapsed);
                    stats.dead += 1;
                    // Step 5: dead peers are removed from the cached list.
                    overlay.node_mut(submitter).cache.remove(peer);
                }
            }
        }
        stats.elapsed += phase_elapsed;

        // Step 6 — slist extraction and cancellation of surplus reservations.
        let slist_len = rlist.len().min(total as usize);
        let (slist, surplus) = rlist.split_at(slist_len);
        for &(peer, _) in surplus {
            overlay.rs_cancel(submitter, peer, key);
            stats.cancelled_unused += 1;
        }

        // Feasibility.
        capacities.clear();
        capacities.extend(slist.iter().map(|&(_, p)| host_capacity(p, n)));
        if let Err(inf) = check_feasibility(capacities, n, r) {
            for &(peer, _) in slist {
                overlay.rs_cancel(submitter, peer, key);
            }
            overlay
                .tracer()
                .record(overlay.now(), TraceCategory::Allocation, || {
                    format!("allocation of '{}' infeasible: {inf}", request.program)
                });
            return Err(AllocationError::Infeasible(inf));
        }

        // Strategy distribution and rank assignment.  A search plan that
        // survived brokering intact overrides both, pinning the exact
        // annealed rank→host map (the contiguous blocks of `assign_ranks`
        // would re-permute ranks and change the modeled collective costs);
        // any shortfall falls back to the strategy's distribution function.
        let assignment = match request
            .plan
            .as_deref()
            .filter(|_| r == 1)
            .and_then(|plan| plan_assignment(plan, slist, capacities, counts, total))
        {
            Some(a) => a,
            None => {
                request.strategy.distribute_into(capacities, total, counts);
                assign_ranks(counts, n)
            }
        };

        // Hosts that ended up with zero processes lose their reservation.
        for (i, &(peer, _)) in slist.iter().enumerate() {
            if counts[i] == 0 {
                overlay.rs_cancel(submitter, peer, key);
                stats.cancelled_unused += 1;
            }
        }

        // Steps 7–8 — start requests, event-driven like the brokering
        // round: the whole batch goes out at once, each request's start
        // decision is made when its arrival event fires (so crashes and
        // recoveries mid-start interleave honestly with the timeline), and
        // `start_collect_into` runs the timeline until every reply or
        // deadline has resolved, returning outcomes in send order.
        let mut start_elapsed = SimDuration::ZERO;
        for host_ranks in &assignment {
            let (peer, _) = slist[host_ranks.slist_index];
            overlay.start_send(submitter, peer, key, host_ranks.ranks.len() as u32);
        }
        overlay.start_collect_into(start_outcomes);
        let mut hosts = Vec::with_capacity(assignment.len());
        let mut failed: Option<(PeerId, StartReply)> = None;
        for (host_ranks, &(peer, reply, elapsed)) in assignment.iter().zip(start_outcomes.iter()) {
            let (_, owner_p) = slist[host_ranks.slist_index];
            start_elapsed = start_elapsed.max(elapsed);
            if reply != StartReply::Started {
                if failed.is_none() {
                    failed = Some((peer, reply));
                }
                continue;
            }
            hosts.push(AllocatedHost {
                peer,
                host: overlay.host_of(peer),
                capacity: host_capacity(owner_p, n),
                ranks: host_ranks.ranks.clone(),
            });
        }
        stats.elapsed += start_elapsed;
        if let Some((peer, reply)) = failed {
            // Roll back every host that did start and give up (first
            // failure in send order is the one reported).
            for started in &hosts {
                let h: &AllocatedHost = started;
                overlay.complete_job(h.peer, key);
            }
            return Err(AllocationError::StartFailed { peer, reply });
        }

        let allocation = Allocation {
            key,
            processes: n,
            replication: r,
            strategy: request.strategy,
            hosts,
        };
        debug_assert!(allocation.validate().is_ok());
        overlay
            .tracer()
            .record(overlay.now(), TraceCategory::Allocation, || {
                format!(
                    "'{}' allocated: {} instance(s) on {} host(s) with {}",
                    request.program,
                    allocation.total_instances(),
                    allocation.hosts_used(),
                    request.strategy
                )
            });
        Ok(allocation)
    }
}

/// Attempts to honor a search plan over the granted `slist`: writes the
/// per-host counts and returns the explicit rank pinning iff every planned
/// peer was granted with enough capacity and the plan covers the job
/// exactly.  `None` sends the caller to the strategy's distribution
/// function (a planned peer refused, timed out, or lost capacity since the
/// search ran).
fn plan_assignment(
    plan: &[PlannedHost],
    slist: &[(PeerId, u32)],
    capacities: &[u32],
    counts: &mut Vec<u32>,
    total: u32,
) -> Option<Vec<HostRanks>> {
    counts.clear();
    counts.resize(slist.len(), 0);
    let mut assignment = Vec::with_capacity(plan.len());
    let mut placed = 0u32;
    for ph in plan {
        let i = slist.iter().position(|&(p, _)| p == ph.peer)?;
        let u = ph.ranks.len() as u32;
        if u == 0 || u > capacities[i] || counts[i] != 0 {
            return None;
        }
        counts[i] = u;
        placed += u;
        assignment.push(HostRanks {
            slist_index: i,
            ranks: ph
                .ranks
                .iter()
                .map(|&rank| RankAssignment { rank, replica: 0 })
                .collect(),
        });
    }
    if placed != total {
        return None;
    }
    Some(assignment)
}

/// Convenience wrapper: allocate with default parameters.
pub fn allocate(
    overlay: &mut Overlay,
    submitter: PeerId,
    request: &JobRequest,
) -> CoAllocationReport {
    CoAllocator::new().allocate(overlay, submitter, request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use p2pmpi_overlay::boot::OverlayBuilder;
    use p2pmpi_overlay::config::OwnerConfig;
    use p2pmpi_simgrid::noise::NoiseModel;
    use p2pmpi_simgrid::topology::{NodeSpec, Topology, TopologyBuilder};
    use std::sync::Arc;

    // Two sites: "local" with 3 quad-core hosts, "remote" with 4 dual-core
    // hosts, 10 ms apart.
    fn topology() -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("local");
        let s1 = b.add_site("remote");
        b.add_cluster(
            s0,
            "l",
            "cpu",
            3,
            NodeSpec {
                cores: 4,
                ..NodeSpec::default()
            },
        );
        b.add_cluster(
            s1,
            "r",
            "cpu",
            4,
            NodeSpec {
                cores: 2,
                ..NodeSpec::default()
            },
        );
        b.set_rtt(s0, s1, p2pmpi_simgrid::time::SimDuration::from_millis(10));
        Arc::new(b.build())
    }

    fn booted_overlay() -> (Overlay, PeerId) {
        let topo = topology();
        let mut o = OverlayBuilder::new(topo.clone())
            .seed(7)
            .noise(NoiseModel::disabled())
            .peer_per_host_with_core_capacity()
            .build();
        o.boot_all();
        let submitter = o
            .peer_on_host(topo.host_by_name("l-0").unwrap().id)
            .unwrap();
        o.bootstrap_peer(submitter);
        (o, submitter)
    }

    #[test]
    fn concentrate_fills_local_site_first() {
        let (mut o, submitter) = booted_overlay();
        let req = JobRequest::new(8, StrategyKind::Concentrate, "hostname");
        let report = allocate(&mut o, submitter, &req);
        assert!(report.is_success(), "{:?}", report.outcome);
        let alloc = report.allocation();
        assert!(alloc.validate().is_ok());
        assert_eq!(alloc.total_instances(), 8);
        // 8 processes fit on two local quad-core hosts: no remote host used.
        assert_eq!(alloc.hosts_used(), 2);
        let topo = o.topology().clone();
        for h in &alloc.hosts {
            assert_eq!(
                topo.host(h.host).site,
                topo.site_by_name("local").unwrap().id
            );
        }
    }

    #[test]
    fn spread_uses_one_process_per_host_when_possible() {
        let (mut o, submitter) = booted_overlay();
        let req = JobRequest::new(6, StrategyKind::Spread, "hostname");
        let report = allocate(&mut o, submitter, &req);
        let alloc = report.allocation();
        assert_eq!(alloc.hosts_used(), 6);
        assert!(alloc.hosts.iter().all(|h| h.instances() == 1));
    }

    #[test]
    fn replication_places_copies_on_distinct_hosts() {
        let (mut o, submitter) = booted_overlay();
        let req = JobRequest::replicated(4, 2, StrategyKind::Spread, "prog");
        let report = allocate(&mut o, submitter, &req);
        let alloc = report.allocation();
        assert!(alloc.validate().is_ok());
        for rank in 0..4 {
            let h0 = alloc.host_of(rank, 0).unwrap();
            let h1 = alloc.host_of(rank, 1).unwrap();
            assert_ne!(h0, h1, "replicas of rank {rank} share a host");
        }
    }

    #[test]
    fn infeasible_when_capacity_is_too_small() {
        let (mut o, submitter) = booted_overlay();
        // 3*4 + 4*2 = 20 total slots; ask for more.
        let req = JobRequest::new(21, StrategyKind::Concentrate, "prog");
        let report = allocate(&mut o, submitter, &req);
        assert!(matches!(
            report.outcome,
            Err(AllocationError::Infeasible(
                Infeasibility::InsufficientCapacity { .. }
            ))
        ));
        // All granted reservations must have been cancelled.
        for id in o.peer_ids() {
            assert_eq!(o.node(id).rs.active_applications(), 0);
        }
    }

    #[test]
    fn replication_higher_than_host_count_is_infeasible() {
        let (mut o, submitter) = booted_overlay();
        let req = JobRequest::replicated(1, 8, StrategyKind::Spread, "prog");
        let report = allocate(&mut o, submitter, &req);
        assert!(matches!(
            report.outcome,
            Err(AllocationError::Infeasible(
                Infeasibility::NotEnoughHostsForReplication { .. }
            ))
        ));
    }

    #[test]
    fn dead_peers_are_marked_and_skipped() {
        let (mut o, submitter) = booted_overlay();
        // Kill two remote peers; the job still fits on the remaining hosts.
        let victims: Vec<PeerId> = o
            .peer_ids()
            .into_iter()
            .filter(|&p| p != submitter)
            .take(2)
            .collect();
        for &v in &victims {
            o.kill_peer(v);
        }
        let req = JobRequest::new(12, StrategyKind::Concentrate, "prog");
        let report = allocate(&mut o, submitter, &req);
        assert!(report.is_success(), "{:?}", report.outcome);
        assert_eq!(report.dead, 2);
        // Dead peers were dropped from the submitter's cache (step 5).
        for &v in &victims {
            assert!(o.node(submitter).cache.get(v).is_none());
        }
        let alloc = report.allocation();
        assert!(victims
            .iter()
            .all(|v| alloc.hosts.iter().all(|h| h.peer != *v)));
    }

    #[test]
    fn unused_overbooked_reservations_are_cancelled() {
        let (mut o, submitter) = booted_overlay();
        let req = JobRequest::new(2, StrategyKind::Concentrate, "prog");
        let params = CoAllocatorParams {
            overbooking: OverbookingPolicy::Additive(4),
            ..CoAllocatorParams::default()
        };
        let report = CoAllocator::with_params(params).allocate(&mut o, submitter, &req);
        assert!(report.is_success());
        assert_eq!(report.booked, 6);
        assert!(report.cancelled_unused >= 4);
        // Only the host actually running processes keeps a reservation.
        let running: usize = o
            .peer_ids()
            .iter()
            .filter(|&&p| o.node(p).rs.running_processes() > 0)
            .count();
        assert_eq!(running, 1);
    }

    #[test]
    fn invalid_request_short_circuits() {
        let (mut o, submitter) = booted_overlay();
        let req = JobRequest::new(0, StrategyKind::Spread, "prog");
        let report = allocate(&mut o, submitter, &req);
        assert_eq!(report.booked, 0);
        assert!(matches!(
            report.outcome,
            Err(AllocationError::InvalidRequest(RequestError::ZeroProcesses))
        ));
    }

    #[test]
    fn busy_peers_refuse_and_are_counted() {
        let (mut o, submitter) = booted_overlay();
        // First job occupies every host (J defaults to 1 app per node).
        let req1 = JobRequest::new(20, StrategyKind::Concentrate, "first");
        let r1 = allocate(&mut o, submitter, &req1);
        assert!(r1.is_success());
        // Second job cannot reserve anything: every RS refuses.
        let req2 = JobRequest::new(2, StrategyKind::Concentrate, "second");
        let r2 = allocate(&mut o, submitter, &req2);
        assert!(!r2.is_success());
        assert!(r2.refused > 0);
        assert_eq!(r2.granted, 0);
        // Completing the first job frees the gatekeepers.
        let alloc = r1.allocation();
        for h in &alloc.hosts {
            assert!(o.complete_job(h.peer, r1.key));
        }
        let r3 = allocate(&mut o, submitter, &req2);
        assert!(r3.is_success());
    }

    #[test]
    fn elapsed_time_reflects_remote_latency() {
        let (mut o, submitter) = booted_overlay();
        // A local-only job should broker faster than one forced to remote
        // hosts (higher booking because of more processes).
        let small = allocate(
            &mut o,
            submitter,
            &JobRequest::new(2, StrategyKind::Concentrate, "a"),
        );
        for id in o.peer_ids() {
            o.node_mut(id).rs.cancel(small.key);
        }
        let large = allocate(
            &mut o,
            submitter,
            &JobRequest::new(18, StrategyKind::Concentrate, "b"),
        );
        assert!(small.is_success() && large.is_success());
        assert!(large.elapsed > small.elapsed);
    }

    #[test]
    fn excluding_submitter_keeps_its_host_free() {
        let topo = topology();
        let mut o = OverlayBuilder::new(topo.clone())
            .seed(3)
            .noise(NoiseModel::disabled())
            .peer_per_host(|h| OwnerConfig::with_procs(h.cores as u32))
            .build();
        o.boot_all();
        let submitter = o
            .peer_on_host(topo.host_by_name("l-0").unwrap().id)
            .unwrap();
        o.bootstrap_peer(submitter);
        let params = CoAllocatorParams {
            include_submitter: false,
            ..CoAllocatorParams::default()
        };
        let req = JobRequest::new(4, StrategyKind::Concentrate, "prog");
        let report = CoAllocator::with_params(params).allocate(&mut o, submitter, &req);
        let alloc = report.allocation();
        assert!(alloc.hosts.iter().all(|h| h.peer != submitter));
    }
}
