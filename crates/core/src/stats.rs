//! Per-site allocation statistics.
//!
//! Figures 2 and 3 of the paper plot, for each demanded process count, the
//! number of *hosts* and the number of *cores* (process slots) allocated at
//! each Grid'5000 site.  This module computes those tallies from an
//! [`Allocation`] and the topology.

use crate::allocation::Allocation;
use p2pmpi_simgrid::topology::{SiteId, Topology};

/// Hosts and processes allocated at one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteUsage {
    /// The site.
    pub site: SiteId,
    /// Site name (e.g. `"nancy"`).
    pub site_name: String,
    /// Number of distinct hosts of this site holding at least one process.
    pub hosts: usize,
    /// Number of process instances placed at this site (the paper's
    /// "allocated cores", since at most one process runs per core).
    pub processes: u64,
}

/// Tallies an allocation per site, in site-id order.  Sites with no
/// allocation are included with zeros so that experiment output always has
/// the same number of rows.
pub fn usage_by_site(allocation: &Allocation, topology: &Topology) -> Vec<SiteUsage> {
    let mut usage: Vec<SiteUsage> = topology
        .sites()
        .iter()
        .map(|s| SiteUsage {
            site: s.id,
            site_name: s.name.clone(),
            hosts: 0,
            processes: 0,
        })
        .collect();
    for h in &allocation.hosts {
        let site = topology.host(h.host).site;
        let entry = &mut usage[site.0];
        if h.instances() > 0 {
            entry.hosts += 1;
            entry.processes += h.instances() as u64;
        }
    }
    usage
}

/// Total hosts used across all sites.
pub fn total_hosts(usage: &[SiteUsage]) -> usize {
    usage.iter().map(|u| u.hosts).sum()
}

/// Total process instances across all sites.
pub fn total_processes(usage: &[SiteUsage]) -> u64 {
    usage.iter().map(|u| u.processes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocatedHost;
    use crate::strategy::StrategyKind;
    use p2pmpi_overlay::messages::{RankAssignment, ReservationKey};
    use p2pmpi_overlay::peer::PeerId;
    use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("nancy");
        let s1 = b.add_site("lyon");
        b.add_cluster(
            s0,
            "grelon",
            "xeon",
            2,
            NodeSpec {
                cores: 4,
                ..NodeSpec::default()
            },
        );
        b.add_cluster(
            s1,
            "capricorn",
            "opteron",
            2,
            NodeSpec {
                cores: 2,
                ..NodeSpec::default()
            },
        );
        b.build()
    }

    fn alloc(topology: &Topology) -> Allocation {
        let h = |name: &str, count: u32| {
            let host = topology.host_by_name(name).unwrap();
            AllocatedHost {
                peer: PeerId(host.id.0),
                host: host.id,
                capacity: host.cores as u32,
                ranks: (0..count)
                    .map(|i| RankAssignment {
                        rank: i,
                        replica: 0,
                    })
                    .collect(),
            }
        };
        Allocation {
            key: ReservationKey(0),
            processes: 7,
            replication: 1,
            strategy: StrategyKind::Concentrate,
            hosts: vec![h("grelon-0", 4), h("grelon-1", 2), h("capricorn-0", 1)],
        }
    }

    #[test]
    fn usage_counts_hosts_and_processes_per_site() {
        let t = topo();
        let a = alloc(&t);
        let usage = usage_by_site(&a, &t);
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].site_name, "nancy");
        assert_eq!(usage[0].hosts, 2);
        assert_eq!(usage[0].processes, 6);
        assert_eq!(usage[1].site_name, "lyon");
        assert_eq!(usage[1].hosts, 1);
        assert_eq!(usage[1].processes, 1);
        assert_eq!(total_hosts(&usage), 3);
        assert_eq!(total_processes(&usage), 7);
    }

    #[test]
    fn empty_sites_appear_with_zeros() {
        let t = topo();
        let mut a = alloc(&t);
        a.hosts.pop(); // drop the lyon host
        let usage = usage_by_site(&a, &t);
        assert_eq!(usage[1].hosts, 0);
        assert_eq!(usage[1].processes, 0);
    }

    #[test]
    fn hosts_with_no_ranks_do_not_count() {
        let t = topo();
        let mut a = alloc(&t);
        a.hosts[2].ranks.clear();
        let usage = usage_by_site(&a, &t);
        assert_eq!(usage[1].hosts, 0);
    }
}
