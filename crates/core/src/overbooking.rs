//! Overbooking policies.
//!
//! Step 2 of the reservation procedure: "when possible, the request is an
//! overbooking to anticipate unavailable hosts."  The booking step asks more
//! hosts than strictly necessary, so that refusals (J exceeded, deny list)
//! and dead peers do not force a second brokering round.  Reservations that
//! end up unused are cancelled in step 6.

/// How many hosts to book for a job that needs `needed` of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverbookingPolicy {
    /// Book exactly the number of hosts needed.
    None,
    /// Book `ceil(needed × factor)` hosts (factor ≥ 1).
    Factor(f64),
    /// Book `needed + extra` hosts.
    Additive(u32),
}

impl Default for OverbookingPolicy {
    fn default() -> Self {
        // A modest 25 % of slack absorbs typical refusal rates without
        // flooding the overlay with reservations to cancel.
        OverbookingPolicy::Factor(1.25)
    }
}

impl OverbookingPolicy {
    /// Number of hosts to book, capped by the number of known candidates.
    pub fn booking_target(&self, needed: usize, known_candidates: usize) -> usize {
        let raw = match *self {
            OverbookingPolicy::None => needed,
            OverbookingPolicy::Factor(f) => {
                assert!(f >= 1.0 && f.is_finite(), "overbooking factor must be >= 1");
                (needed as f64 * f).ceil() as usize
            }
            OverbookingPolicy::Additive(extra) => needed + extra as usize,
        };
        raw.min(known_candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_books_exactly_what_is_needed() {
        assert_eq!(OverbookingPolicy::None.booking_target(10, 100), 10);
    }

    #[test]
    fn factor_rounds_up() {
        assert_eq!(OverbookingPolicy::Factor(1.25).booking_target(10, 100), 13);
        assert_eq!(OverbookingPolicy::Factor(1.0).booking_target(7, 100), 7);
        assert_eq!(OverbookingPolicy::Factor(2.0).booking_target(3, 100), 6);
    }

    #[test]
    fn additive_adds_a_constant() {
        assert_eq!(OverbookingPolicy::Additive(5).booking_target(10, 100), 15);
        assert_eq!(OverbookingPolicy::Additive(0).booking_target(10, 100), 10);
    }

    #[test]
    fn target_is_capped_by_known_candidates() {
        assert_eq!(OverbookingPolicy::Factor(2.0).booking_target(300, 350), 350);
        assert_eq!(OverbookingPolicy::None.booking_target(400, 350), 350);
    }

    #[test]
    fn default_is_a_quarter_extra() {
        assert_eq!(OverbookingPolicy::default().booking_target(100, 1000), 125);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn shrinking_factor_panics() {
        OverbookingPolicy::Factor(0.5).booking_target(10, 100);
    }

    proptest! {
        /// The booking target always covers the need (when enough candidates
        /// exist) and never exceeds the candidate pool.
        #[test]
        fn target_bounds(
            needed in 0usize..500,
            known in 0usize..700,
            factor in 1.0f64..3.0,
            extra in 0u32..50,
        ) {
            for policy in [
                OverbookingPolicy::None,
                OverbookingPolicy::Factor(factor),
                OverbookingPolicy::Additive(extra),
            ] {
                let t = policy.booking_target(needed, known);
                prop_assert!(t <= known);
                prop_assert!(t >= needed.min(known));
            }
        }
    }
}
