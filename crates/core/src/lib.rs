//! # p2pmpi-core
//!
//! The paper's primary contribution: **co-allocation of MPI processes over a
//! P2P overlay**, with the *spread* and *concentrate* strategies, the
//! replication-aware rank assignment, and the full reservation procedure of
//! Section 4 of
//! *"Large-Scale Experiment of Co-allocation Strategies for Peer-to-Peer
//! SuperComputing in P2P-MPI"* (Genaud & Rattanapoka, IPDPS/HPGC 2008).
//!
//! ## Pieces
//!
//! * [`strategy`] / [`spread`] / [`concentrate`] / [`balanced`] — the
//!   process-distribution policies (`-a` flag of `p2pmpirun`).
//! * [`capacity`] — `c_i = min(P_i, n)`.
//! * [`feasibility`] — the two feasibility conditions of step 6.
//! * [`overbooking`] — booking-step overbooking policies.
//! * [`rank`] — rank/replica assignment guaranteeing that no two copies of a
//!   process share a host.
//! * [`reservation`] — the eight-step procedure driven against a
//!   [`p2pmpi_overlay::Overlay`].
//! * [`allocation`] / [`stats`] — the resulting placement and the per-site
//!   tallies plotted in Figures 2 and 3.
//!
//! ## Example
//!
//! ```
//! use p2pmpi_core::prelude::*;
//! use p2pmpi_overlay::OverlayBuilder;
//! use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};
//! use std::sync::Arc;
//!
//! // A small two-site grid.
//! let mut b = TopologyBuilder::new();
//! let here = b.add_site("here");
//! let there = b.add_site("there");
//! b.add_cluster(here, "h", "cpu", 2, NodeSpec { cores: 2, ..NodeSpec::default() });
//! b.add_cluster(there, "t", "cpu", 2, NodeSpec { cores: 2, ..NodeSpec::default() });
//! let topology = Arc::new(b.build());
//!
//! let mut overlay = OverlayBuilder::new(topology)
//!     .seed(1)
//!     .peer_per_host_with_core_capacity()
//!     .build();
//! overlay.boot_all();
//! let submitter = overlay.peer_ids()[0];
//! overlay.bootstrap_peer(submitter);
//!
//! // p2pmpirun -n 4 -a spread prog
//! let request = JobRequest::new(4, StrategyKind::Spread, "prog");
//! let report = allocate(&mut overlay, submitter, &request);
//! let allocation = report.allocation();
//! assert_eq!(allocation.total_instances(), 4);
//! assert!(allocation.validate().is_ok());
//! ```

#![warn(missing_docs)]

pub mod allocation;
pub mod balanced;
pub mod capacity;
pub mod concentrate;
pub mod feasibility;
pub mod overbooking;
pub mod rank;
pub mod request;
pub mod reservation;
pub mod spread;
pub mod stats;
pub mod strategy;

pub use allocation::{AllocatedHost, Allocation, AllocationInvariantError};
pub use balanced::Balanced;
pub use concentrate::Concentrate;
pub use feasibility::{check_feasibility, Infeasibility};
pub use overbooking::OverbookingPolicy;
pub use rank::{assign_ranks, HostRanks};
pub use request::{JobRequest, RequestError};
pub use reservation::{
    allocate, AllocationError, CoAllocationReport, CoAllocator, CoAllocatorParams,
};
pub use spread::Spread;
pub use stats::{total_hosts, total_processes, usage_by_site, SiteUsage};
pub use strategy::{AllocationStrategy, StrategyKind};

/// Commonly used items, for glob imports in examples and experiments.
pub mod prelude {
    pub use crate::allocation::Allocation;
    pub use crate::overbooking::OverbookingPolicy;
    pub use crate::request::{JobRequest, PlannedHost};
    pub use crate::reservation::{allocate, CoAllocator, CoAllocatorParams};
    pub use crate::stats::{usage_by_site, SiteUsage};
    pub use crate::strategy::{AllocationStrategy, StrategyKind};
}
