//! Allocation strategies.
//!
//! A strategy decides how many process instances `u_i` each selected host
//! receives, given the host capacities `c_i` (in ascending-latency order) and
//! the total `n × r` to place.  The paper proposes two strategies, *spread*
//! and *concentrate* (Section 4.3); this crate adds a *balanced* strategy as
//! an instance of the "mixed strategies" the conclusion lists as future work.

use std::fmt;
use std::str::FromStr;

/// A process-distribution policy.
///
/// Implementations must satisfy, for `distribute(c, total)` whenever
/// `Σ c_i ≥ total`:
///
/// * the result has the same length as `c`,
/// * `u_i ≤ c_i` for every `i`,
/// * `Σ u_i = total`.
///
/// These invariants are checked by the property tests in this module and are
/// what the rank-assignment step relies on.
pub trait AllocationStrategy {
    /// Short machine-readable name (used by `-a` on the command line).
    fn name(&self) -> &'static str;

    /// Distributes `total` process instances over hosts with capacities
    /// `capacities` (ascending latency order), writing the per-host counts
    /// into `out` (cleared first).  This is the hot-path entry point: the
    /// co-allocation driver reuses one buffer across jobs.
    ///
    /// # Panics
    ///
    /// Implementations panic if `Σ capacities < total`; callers are expected
    /// to have verified feasibility first (step 6 of the procedure).
    fn distribute_into(&self, capacities: &[u32], total: u32, out: &mut Vec<u32>);

    /// Allocating convenience wrapper over
    /// [`AllocationStrategy::distribute_into`].
    fn distribute(&self, capacities: &[u32], total: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(capacities.len());
        self.distribute_into(capacities, total, &mut out);
        out
    }
}

/// The built-in strategies, as selected by `p2pmpirun -a <name>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Round-robin one process at a time over the selected hosts
    /// (maximises aggregate memory; locality is secondary).
    Spread,
    /// Fill each host to its capacity starting with the closest
    /// (maximises locality).
    Concentrate,
    /// Future-work extension: fill hosts like *concentrate* but never beyond
    /// `max_per_host` processes, then round-robin the remainder like
    /// *spread*.
    Balanced {
        /// Per-host cap applied before falling back to round-robin.
        max_per_host: u32,
    },
    /// Model-driven placement: an upstream searcher (the day sweep's
    /// `SearchContext`) attaches an explicit host plan to the request,
    /// which the co-allocator honors verbatim.  As a *distribution
    /// function* this delegates to [`Concentrate`](crate::concentrate) —
    /// the fallback whenever a plan is absent or invalidated by brokering
    /// (a planned peer refused, died, or lost capacity).
    Searched,
}

impl StrategyKind {
    /// The strategy's command-line name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Spread => "spread",
            StrategyKind::Concentrate => "concentrate",
            StrategyKind::Balanced { .. } => "balanced",
            StrategyKind::Searched => "searched",
        }
    }

    /// Instantiates the strategy implementation.
    pub fn build(&self) -> Box<dyn AllocationStrategy> {
        match *self {
            StrategyKind::Spread => Box::new(crate::spread::Spread),
            StrategyKind::Concentrate => Box::new(crate::concentrate::Concentrate),
            StrategyKind::Balanced { max_per_host } => {
                Box::new(crate::balanced::Balanced::new(max_per_host))
            }
            StrategyKind::Searched => Box::new(crate::concentrate::Concentrate),
        }
    }

    /// Distributes using this strategy into a caller-provided buffer,
    /// dispatching statically — no boxed strategy object, no result `Vec`.
    pub fn distribute_into(&self, capacities: &[u32], total: u32, out: &mut Vec<u32>) {
        match *self {
            StrategyKind::Spread => crate::spread::Spread.distribute_into(capacities, total, out),
            StrategyKind::Concentrate => {
                crate::concentrate::Concentrate.distribute_into(capacities, total, out)
            }
            StrategyKind::Balanced { max_per_host } => {
                crate::balanced::Balanced::new(max_per_host).distribute_into(capacities, total, out)
            }
            StrategyKind::Searched => {
                crate::concentrate::Concentrate.distribute_into(capacities, total, out)
            }
        }
    }

    /// Distributes using this strategy (allocating convenience wrapper over
    /// [`StrategyKind::distribute_into`]).
    pub fn distribute(&self, capacities: &[u32], total: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(capacities.len());
        self.distribute_into(capacities, total, &mut out);
        out
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyKind::Balanced { max_per_host } => write!(f, "balanced({max_per_host})"),
            other => f.write_str(other.name()),
        }
    }
}

impl FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "spread" => Ok(StrategyKind::Spread),
            "concentrate" => Ok(StrategyKind::Concentrate),
            "searched" => Ok(StrategyKind::Searched),
            other => {
                if let Some(rest) = other.strip_prefix("balanced:") {
                    let k: u32 = rest
                        .parse()
                        .map_err(|_| format!("bad balanced cap: {rest}"))?;
                    if k == 0 {
                        return Err("balanced cap must be >= 1".to_string());
                    }
                    Ok(StrategyKind::Balanced { max_per_host: k })
                } else {
                    Err(format!(
                        "unknown strategy '{other}' (expected spread, concentrate, \
                         searched or balanced:<k>)"
                    ))
                }
            }
        }
    }
}

/// Asserts the common preconditions of the strategy implementations.
pub(crate) fn check_preconditions(capacities: &[u32], total: u32) {
    let cap: u64 = capacities.iter().map(|&c| c as u64).sum();
    assert!(
        cap >= total as u64,
        "infeasible distribution: total capacity {cap} < {total} requested \
         (feasibility must be checked before distributing)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn names_and_parsing() {
        assert_eq!(StrategyKind::Spread.name(), "spread");
        assert_eq!(StrategyKind::Concentrate.to_string(), "concentrate");
        assert_eq!(
            StrategyKind::Balanced { max_per_host: 2 }.to_string(),
            "balanced(2)"
        );
        assert_eq!(
            "spread".parse::<StrategyKind>().unwrap(),
            StrategyKind::Spread
        );
        assert_eq!(
            "Concentrate".parse::<StrategyKind>().unwrap(),
            StrategyKind::Concentrate
        );
        assert_eq!(
            "balanced:3".parse::<StrategyKind>().unwrap(),
            StrategyKind::Balanced { max_per_host: 3 }
        );
        assert_eq!(
            "searched".parse::<StrategyKind>().unwrap(),
            StrategyKind::Searched
        );
        assert_eq!(StrategyKind::Searched.to_string(), "searched");
        assert!("balanced:0".parse::<StrategyKind>().is_err());
        assert!("balanced:x".parse::<StrategyKind>().is_err());
        assert!("random".parse::<StrategyKind>().is_err());
    }

    #[test]
    fn build_returns_matching_impl() {
        assert_eq!(StrategyKind::Spread.build().name(), "spread");
        assert_eq!(StrategyKind::Concentrate.build().name(), "concentrate");
        assert_eq!(
            StrategyKind::Balanced { max_per_host: 2 }.build().name(),
            "balanced"
        );
        // Searched's distribution function is the concentrate fallback.
        assert_eq!(StrategyKind::Searched.build().name(), "concentrate");
    }

    /// The three strategy invariants hold for every built-in strategy on
    /// arbitrary feasible inputs.
    fn strategy_invariants(kind: StrategyKind, capacities: Vec<u32>, total: u32) {
        let u = kind.distribute(&capacities, total);
        assert_eq!(u.len(), capacities.len());
        for (ui, ci) in u.iter().zip(&capacities) {
            assert!(ui <= ci, "{kind}: u {ui} exceeds capacity {ci}");
        }
        assert_eq!(u.iter().map(|&x| x as u64).sum::<u64>(), total as u64);
    }

    proptest! {
        #[test]
        fn all_strategies_respect_invariants(
            caps in prop::collection::vec(0u32..8, 1..40),
            frac in 0.0f64..1.0,
            balanced_cap in 1u32..6,
        ) {
            let cap_sum: u64 = caps.iter().map(|&c| c as u64).sum();
            let total = (cap_sum as f64 * frac).floor() as u32;
            strategy_invariants(StrategyKind::Spread, caps.clone(), total);
            strategy_invariants(StrategyKind::Concentrate, caps.clone(), total);
            strategy_invariants(StrategyKind::Searched, caps.clone(), total);
            strategy_invariants(
                StrategyKind::Balanced { max_per_host: balanced_cap },
                caps,
                total,
            );
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_distribution_panics() {
        StrategyKind::Spread.distribute(&[1, 1], 3);
    }
}
