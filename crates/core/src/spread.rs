//! The *spread* strategy.
//!
//! "Spread tends to map processes on hosts so as to maximize the total amount
//! of available memory while maintaining locality as a secondary objective.
//! The strategy is to assign the MPI processes to all selected hosts (the
//! |slist| closest hosts regarding latency) in a round-robin fashion."
//! (Section 4.3.)
//!
//! The implementation below is a direct transcription of the paper's
//! pseudocode: repeatedly sweep the host list in latency order, placing one
//! process on each host that still has spare capacity, until `n × r`
//! processes have been placed.

use crate::strategy::{check_preconditions, AllocationStrategy};

/// Round-robin, one process per host per sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spread;

impl AllocationStrategy for Spread {
    fn name(&self) -> &'static str {
        "spread"
    }

    fn distribute_into(&self, capacities: &[u32], total: u32, out: &mut Vec<u32>) {
        check_preconditions(capacities, total);
        out.clear();
        out.resize(capacities.len(), 0);
        let mut d = 0u32; // processes distributed so far
        let mut cont = total > 0;
        while cont {
            let mut i = 0;
            while i < capacities.len() && cont {
                if out[i] < capacities[i] {
                    out[i] += 1;
                    d += 1;
                }
                if d == total {
                    cont = false;
                }
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_process_per_host_when_enough_hosts() {
        // 6 hosts of capacity 4, 4 processes: the 4 closest hosts take one
        // process each — the behaviour Figure 3 shows while hosts remain.
        let u = Spread.distribute(&[4, 4, 4, 4, 4, 4], 4);
        assert_eq!(u, vec![1, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn second_sweep_starts_at_closest_host() {
        // "the closest peers are first chosen to host a second process as
        // they have extra available cores" — the stair of Figure 3.
        let u = Spread.distribute(&[4, 4, 4], 5);
        assert_eq!(u, vec![2, 2, 1]);
    }

    #[test]
    fn hosts_at_capacity_are_skipped() {
        let u = Spread.distribute(&[1, 3, 1], 5);
        assert_eq!(u, vec![1, 3, 1]);
        let u = Spread.distribute(&[1, 3, 2], 5);
        assert_eq!(u, vec![1, 2, 2]);
    }

    #[test]
    fn zero_capacity_hosts_get_nothing() {
        let u = Spread.distribute(&[0, 2, 0, 2], 3);
        assert_eq!(u, vec![0, 2, 0, 1]);
    }

    #[test]
    fn zero_total_is_all_zeros() {
        assert_eq!(Spread.distribute(&[3, 3], 0), vec![0, 0]);
    }

    #[test]
    fn exact_fill_uses_every_slot() {
        let u = Spread.distribute(&[2, 2, 2], 6);
        assert_eq!(u, vec![2, 2, 2]);
    }

    #[test]
    fn paper_example_three_processes_two_hosts_replicated() {
        // p2pmpirun -n 3 -r 2 on two hosts of capacity >= 3: 6 instances are
        // placed 3 + 3.
        let u = Spread.distribute(&[3, 3], 6);
        assert_eq!(u, vec![3, 3]);
    }

    proptest! {
        /// Spread keeps the load as even as the capacities allow: any host
        /// strictly below its capacity is at most one process below any other
        /// host (it would have received the next round-robin slot otherwise).
        #[test]
        fn spread_is_balanced(
            caps in prop::collection::vec(0u32..6, 1..30),
            frac in 0.0f64..1.0,
        ) {
            let cap_sum: u64 = caps.iter().map(|&c| c as u64).sum();
            let total = (cap_sum as f64 * frac).floor() as u32;
            let u = Spread.distribute(&caps, total);
            let max_u = *u.iter().max().unwrap();
            for (i, (&ui, &ci)) in u.iter().zip(&caps).enumerate() {
                if ui < ci {
                    prop_assert!(
                        max_u <= ui + 1,
                        "host {i} has spare capacity but lags: u={ui}, max={max_u}"
                    );
                }
            }
        }

        /// Earlier (lower-latency) hosts never carry less than later hosts
        /// minus one sweep, i.e. the prefix is preferred.
        #[test]
        fn spread_prefers_earlier_hosts(
            caps in prop::collection::vec(1u32..6, 2..20),
            frac in 0.0f64..1.0,
        ) {
            let cap_sum: u64 = caps.iter().map(|&c| c as u64).sum();
            let total = (cap_sum as f64 * frac).floor() as u32;
            let u = Spread.distribute(&caps, total);
            for w in 0..u.len() - 1 {
                let (a, b) = (u[w], u[w + 1]);
                // If host w still has capacity, it cannot be behind host w+1.
                if a < caps[w] {
                    prop_assert!(a >= b, "host {w}: {a} < next {b}");
                }
            }
        }
    }
}
