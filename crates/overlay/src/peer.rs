//! Peer identity and descriptors.
//!
//! In P2P-MPI every machine that runs `mpiboot` becomes a *peer*: its MPD
//! daemon registers with a supernode and is thereafter known to other peers
//! by the supernode's host list.  A peer is bound to exactly one physical
//! host of the topology.

use p2pmpi_simgrid::topology::HostId;
use std::fmt;

/// Identifier of a peer (dense index into the overlay's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub usize);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

/// Liveness state of a peer, as seen by the fault-injection layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// The MPD answers requests.
    Alive,
    /// The MPD is gone; requests to it time out and it stops sending alive
    /// signals to the supernode.
    Dead,
}

/// Static description of a peer.
#[derive(Debug, Clone)]
pub struct PeerDescriptor {
    /// Peer identifier.
    pub id: PeerId,
    /// Physical host this peer's MPD runs on.
    pub host: HostId,
    /// Simulated network address ("IP:port"), used by deny lists.
    pub address: String,
}

impl PeerDescriptor {
    /// Creates a descriptor with a synthetic address derived from the ids.
    pub fn new(id: PeerId, host: HostId) -> Self {
        PeerDescriptor {
            id,
            host,
            address: format!(
                "10.{}.{}.{}:9200",
                (host.0 >> 8) & 0xff,
                host.0 & 0xff,
                id.0 % 250 + 1
            ),
        }
    }

    /// Creates a descriptor with an explicit address.
    pub fn with_address(id: PeerId, host: HostId, address: impl Into<String>) -> Self {
        PeerDescriptor {
            id,
            host,
            address: address.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_has_synthetic_address() {
        let d = PeerDescriptor::new(PeerId(3), HostId(260));
        assert_eq!(d.id, PeerId(3));
        assert_eq!(d.host, HostId(260));
        assert!(d.address.starts_with("10.1.4."));
        assert!(d.address.ends_with(":9200"));
    }

    #[test]
    fn explicit_address_is_kept() {
        let d = PeerDescriptor::with_address(PeerId(0), HostId(0), "192.168.1.1:4444");
        assert_eq!(d.address, "192.168.1.1:4444");
    }

    #[test]
    fn peer_id_display() {
        assert_eq!(PeerId(7).to_string(), "peer#7");
    }

    #[test]
    fn peer_state_equality() {
        assert_eq!(PeerState::Alive, PeerState::Alive);
        assert_ne!(PeerState::Alive, PeerState::Dead);
    }
}
