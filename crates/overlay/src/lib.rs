//! # p2pmpi-overlay
//!
//! The P2P middleware substrate of the `p2pmpi-rs` reproduction: supernode
//! membership, per-peer MPD daemons with cached host lists and latency
//! probing, the Reservation Service (RS) gatekeeper, and fault injection.
//!
//! Section 3.2 and 4 of the paper describe these components; the
//! co-allocation procedure that drives them lives in `p2pmpi-core`.
//!
//! ## Quick tour
//!
//! ```
//! use p2pmpi_overlay::boot::OverlayBuilder;
//! use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};
//! use std::sync::Arc;
//!
//! // Two sites, a handful of dual-core hosts.
//! let mut b = TopologyBuilder::new();
//! let s0 = b.add_site("local");
//! let s1 = b.add_site("remote");
//! b.add_cluster(s0, "l", "cpu", 2, NodeSpec::default());
//! b.add_cluster(s1, "r", "cpu", 2, NodeSpec::default());
//! let topology = Arc::new(b.build());
//!
//! // One peer per host, P = core count (the paper's setting), then boot.
//! let mut overlay = OverlayBuilder::new(topology)
//!     .seed(42)
//!     .peer_per_host_with_core_capacity()
//!     .build();
//! overlay.boot_all();
//! let submitter = overlay.peer_ids()[0];
//! overlay.bootstrap_peer(submitter);
//! assert_eq!(overlay.latency_ranking(submitter).len(), 3);
//! ```

#![warn(missing_docs)]

pub mod boot;
pub mod cache;
pub mod churn;
pub mod config;
pub mod messages;
pub mod mpd;
pub mod overlay;
pub mod peer;
pub mod ping;
pub mod rs;
pub mod supernode;

pub use boot::OverlayBuilder;
pub use cache::{CacheEntry, CachedList};
pub use churn::{ChurnEvent, ChurnKind, ChurnSchedule};
pub use config::OwnerConfig;
pub use messages::{
    RankAssignment, RefusalReason, ReservationKey, ReservationReply, ReservationRequest,
    StartReply, StartRequest,
};
pub use mpd::MpdNode;
pub use overlay::{Overlay, OverlayParams, RsOutcome};
pub use peer::{PeerDescriptor, PeerId, PeerState};
pub use ping::LatencyProber;
pub use rs::{Reservation, ReservationService, ReservationStatus, StartError};
pub use supernode::{HostListEntry, Supernode};
