//! Application-level latency probing.
//!
//! "Each neighbor in the cache is periodically ping'ed to assess network
//! latency to it.  Notice that this 'ping' test is a standard P2P-MPI
//! communication and does not rely on an ICMP echo measurement" (Section 4.1).
//! The probe therefore goes through the same cost model as real messages
//! (including software overhead) and is perturbed by the load-noise model.

use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::time::SimDuration;
use p2pmpi_simgrid::topology::HostId;
use rand::Rng;

/// Produces noisy application-level RTT measurements between hosts.
#[derive(Debug, Clone)]
pub struct LatencyProber {
    network: NetworkModel,
    noise: NoiseModel,
}

impl LatencyProber {
    /// Creates a prober over the given network model and noise model.
    pub fn new(network: NetworkModel, noise: NoiseModel) -> Self {
        LatencyProber { network, noise }
    }

    /// Creates a noise-free prober (useful for deterministic tests).
    pub fn noiseless(network: NetworkModel) -> Self {
        LatencyProber {
            network,
            noise: NoiseModel::disabled(),
        }
    }

    /// The network model used by the prober.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Mutable access to the prober's network model.  The prober owns its own
    /// clone of the model, so fault injection that degrades links must update
    /// this copy alongside the overlay's messaging model.
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        &mut self.network
    }

    /// The noise model used by the prober.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// One RTT probe from `src` to `dst`.  Inlined into the per-peer probe
    /// loops of the overlay's bootstrap and refresh rounds.
    #[inline]
    pub fn probe<R: Rng + ?Sized>(&self, src: HostId, dst: HostId, rng: &mut R) -> SimDuration {
        let base = self.network.probe_rtt(src, dst);
        self.noise.perturb(base, rng)
    }

    /// Average of `count` probes (the MPD smooths measurements over time;
    /// this helper is used when bootstrapping a cache in one go).
    pub fn probe_avg<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        count: usize,
        rng: &mut R,
    ) -> SimDuration {
        assert!(count > 0, "need at least one probe");
        let total: SimDuration = (0..count).map(|_| self.probe(src, dst, rng)).sum();
        total / count as u64
    }

    /// The noise-free ICMP-style RTT, for comparing rankings as Section 5.1
    /// of the paper does.
    #[inline]
    pub fn icmp_rtt(&self, src: HostId, dst: HostId) -> SimDuration {
        self.network.icmp_rtt(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_simgrid::rngutil::seeded;
    use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};
    use std::sync::Arc;

    fn prober(sigma: f64) -> (LatencyProber, HostId, HostId, HostId) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("origin");
        let s1 = b.add_site("near");
        let s2 = b.add_site("far");
        b.add_cluster(s0, "o", "cpu", 1, NodeSpec::default());
        b.add_cluster(s1, "n", "cpu", 1, NodeSpec::default());
        b.add_cluster(s2, "f", "cpu", 1, NodeSpec::default());
        b.set_rtt(s0, s1, SimDuration::from_millis(10));
        b.set_rtt(s0, s2, SimDuration::from_millis(17));
        b.set_rtt(s1, s2, SimDuration::from_millis(15));
        let t = Arc::new(b.build());
        let o = t.host_by_name("o-0").unwrap().id;
        let n = t.host_by_name("n-0").unwrap().id;
        let f = t.host_by_name("f-0").unwrap().id;
        let network = NetworkModel::new(t);
        let noise = if sigma == 0.0 {
            NoiseModel::disabled()
        } else {
            NoiseModel::with_sigma(sigma)
        };
        (LatencyProber::new(network, noise), o, n, f)
    }

    #[test]
    fn noiseless_probe_is_deterministic_and_ordered() {
        let (p, o, n, f) = prober(0.0);
        let mut rng = seeded(1);
        let a = p.probe(o, n, &mut rng);
        let b = p.probe(o, n, &mut rng);
        assert_eq!(a, b);
        assert!(p.probe(o, n, &mut rng) < p.probe(o, f, &mut rng));
        // Application-level probe exceeds the ICMP RTT (software overhead).
        assert!(a > p.icmp_rtt(o, n));
    }

    #[test]
    fn noisy_probe_varies_but_preserves_coarse_ranking() {
        let (p, o, n, f) = prober(0.06);
        let mut rng = seeded(7);
        let a = p.probe(o, n, &mut rng);
        let b = p.probe(o, n, &mut rng);
        assert_ne!(a, b);
        // With a 7 ms RTT gap, 6 % noise never flips near/far.
        for _ in 0..2_000 {
            assert!(p.probe(o, n, &mut rng) < p.probe(o, f, &mut rng));
        }
    }

    #[test]
    fn probe_avg_reduces_variance() {
        let (p, o, n, _) = prober(0.06);
        let mut rng = seeded(11);
        let singles: Vec<f64> = (0..200)
            .map(|_| p.probe(o, n, &mut rng).as_millis_f64())
            .collect();
        let avgs: Vec<f64> = (0..200)
            .map(|_| p.probe_avg(o, n, 8, &mut rng).as_millis_f64())
            .collect();
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(var(&avgs) < var(&singles));
    }

    #[test]
    fn noiseless_constructor_disables_noise() {
        let (p, o, n, _) = prober(0.06);
        let q = LatencyProber::noiseless(p.network().clone());
        let mut rng = seeded(3);
        assert_eq!(q.probe(o, n, &mut rng), q.probe(o, n, &mut rng));
        assert!(q.noise().is_disabled());
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn probe_avg_zero_count_panics() {
        let (p, o, n, _) = prober(0.0);
        let mut rng = seeded(1);
        p.probe_avg(o, n, 0, &mut rng);
    }
}
