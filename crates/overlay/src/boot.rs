//! Overlay construction ("mpiboot" for a whole testbed at once).
//!
//! [`OverlayBuilder`] wires a [`Topology`] to a set of peers (one per host in
//! the common case), their owner configurations, the noise model and the RNG
//! seed, and produces a ready-to-boot [`Overlay`].

use crate::config::OwnerConfig;
use crate::mpd::MpdNode;
use crate::overlay::{Overlay, OverlayParams};
use crate::peer::{PeerDescriptor, PeerId};
use crate::ping::LatencyProber;
use p2pmpi_simgrid::event::QueueKind;
use p2pmpi_simgrid::network::{NetworkModel, NetworkParams};
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::rngutil;
use p2pmpi_simgrid::topology::{Host, HostId, Topology};
use p2pmpi_simgrid::trace::Tracer;
use std::sync::Arc;

/// Builder for [`Overlay`].
pub struct OverlayBuilder {
    topology: Arc<Topology>,
    seed: u64,
    noise: NoiseModel,
    network_params: NetworkParams,
    overlay_params: OverlayParams,
    peers: Vec<(HostId, OwnerConfig)>,
    supernode_host: Option<HostId>,
    tracer: Tracer,
    queue_kind: QueueKind,
}

impl OverlayBuilder {
    /// Starts a builder over `topology` with default models and no peers.
    pub fn new(topology: Arc<Topology>) -> Self {
        OverlayBuilder {
            topology,
            seed: 0,
            noise: NoiseModel::default(),
            network_params: NetworkParams::default(),
            overlay_params: OverlayParams::default(),
            peers: Vec::new(),
            supernode_host: None,
            tracer: Tracer::new(),
            queue_kind: QueueKind::default(),
        }
    }

    /// Sets the master RNG seed (probe noise, reservation keys, churn).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the probe noise model.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the network cost-model parameters.
    pub fn network_params(mut self, params: NetworkParams) -> Self {
        self.network_params = params;
        self
    }

    /// Sets the overlay protocol parameters.
    pub fn overlay_params(mut self, params: OverlayParams) -> Self {
        self.overlay_params = params;
        self
    }

    /// Sets the tracer used by the overlay.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Selects the priority structure backing the overlay's event timeline
    /// (default: binary heap).  Sweep-scale simulations holding thousands of
    /// pending completions should pick [`QueueKind::Calendar`].
    pub fn queue_kind(mut self, kind: QueueKind) -> Self {
        self.queue_kind = kind;
        self
    }

    /// Places the supernode on a specific host (defaults to the first host).
    pub fn supernode_on(mut self, host: HostId) -> Self {
        self.supernode_host = Some(host);
        self
    }

    /// Adds a single peer on `host` with the given owner configuration.
    pub fn add_peer(mut self, host: HostId, config: OwnerConfig) -> Self {
        self.peers.push((host, config));
        self
    }

    /// Adds one peer on every host of the topology, with the owner
    /// configuration produced by `config_of`.
    pub fn peer_per_host<F>(mut self, config_of: F) -> Self
    where
        F: Fn(&Host) -> OwnerConfig,
    {
        let hosts: Vec<(HostId, OwnerConfig)> = self
            .topology
            .hosts()
            .iter()
            .map(|h| (h.id, config_of(h)))
            .collect();
        self.peers.extend(hosts);
        self
    }

    /// Adds one peer on every host with `P` set to the host's core count and
    /// `J = 1` — the configuration used throughout the paper's experiments.
    pub fn peer_per_host_with_core_capacity(self) -> Self {
        self.peer_per_host(|h| OwnerConfig::with_procs(h.cores as u32))
    }

    /// Builds the overlay.  Panics if no peer was added or a host carries two
    /// peers.
    pub fn build(self) -> Overlay {
        assert!(!self.peers.is_empty(), "an overlay needs at least one peer");
        let mut seen = std::collections::HashSet::new();
        for (h, _) in &self.peers {
            assert!(
                seen.insert(*h),
                "host {h} carries more than one peer (one MPD per machine)"
            );
            assert!(
                h.0 < self.topology.host_count(),
                "peer placed on unknown host {h}"
            );
        }
        let nodes: Vec<MpdNode> = self
            .peers
            .into_iter()
            .enumerate()
            .map(|(i, (host, config))| MpdNode::new(PeerDescriptor::new(PeerId(i), host), config))
            .collect();
        let supernode_host = self.supernode_host.unwrap_or(nodes[0].descriptor.host);
        let network = NetworkModel::with_params(self.topology.clone(), self.network_params);
        let prober = LatencyProber::new(network.clone(), self.noise);
        let rng = rngutil::substream(self.seed, 0xB007);
        Overlay::assemble(
            self.topology,
            network,
            prober,
            supernode_host,
            nodes,
            rng,
            self.tracer,
            self.overlay_params,
            self.queue_kind,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};

    fn topo() -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s = b.add_site("s");
        b.add_cluster(
            s,
            "c",
            "cpu",
            4,
            NodeSpec {
                cores: 2,
                ..NodeSpec::default()
            },
        );
        Arc::new(b.build())
    }

    #[test]
    fn peer_per_host_places_one_peer_everywhere() {
        let o = OverlayBuilder::new(topo())
            .peer_per_host_with_core_capacity()
            .build();
        assert_eq!(o.peer_count(), 4);
        for id in o.peer_ids() {
            assert_eq!(o.node(id).capacity_per_app(), 2);
            assert_eq!(o.peer_on_host(o.host_of(id)), Some(id));
        }
    }

    #[test]
    fn explicit_peers_and_supernode_placement() {
        let t = topo();
        let h0 = t.hosts()[0].id;
        let h2 = t.hosts()[2].id;
        let o = OverlayBuilder::new(t)
            .add_peer(h0, OwnerConfig::new(2, 8))
            .add_peer(h2, OwnerConfig::default())
            .supernode_on(h2)
            .seed(7)
            .build();
        assert_eq!(o.peer_count(), 2);
        assert_eq!(o.node(PeerId(0)).config.max_procs_per_app, 8);
        assert!(o.peer_on_host(h2).is_some());
    }

    #[test]
    fn same_seed_same_keys() {
        let build = || {
            OverlayBuilder::new(topo())
                .seed(99)
                .peer_per_host_with_core_capacity()
                .build()
        };
        let mut a = build();
        let mut b = build();
        assert_eq!(a.generate_key(), b.generate_key());
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_overlay_panics() {
        OverlayBuilder::new(topo()).build();
    }

    #[test]
    #[should_panic(expected = "more than one peer")]
    fn duplicate_host_panics() {
        let t = topo();
        let h = t.hosts()[0].id;
        OverlayBuilder::new(t)
            .add_peer(h, OwnerConfig::default())
            .add_peer(h, OwnerConfig::default())
            .build();
    }
}
