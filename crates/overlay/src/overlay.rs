//! The overlay simulation driver.
//!
//! [`Overlay`] owns the supernode, every peer's MPD/RS state, the network
//! and noise models, and a discrete-event simulation
//! ([`p2pmpi_simgrid::engine::TypedEngine`]) that carries the virtual clock.
//! It exposes exactly the interactions the paper's job-submission procedure
//! needs:
//!
//! * membership (register, alive signals, expiry),
//! * cache refresh from the supernode and latency probing,
//! * RS↔RS reservation brokering (with timeouts when a peer is dead),
//! * MPD start requests with key verification,
//! * fault injection (crash/recover, scheduled churn).
//!
//! # The event timeline
//!
//! All time-driven behaviour is *scheduled* on the engine rather than
//! applied inline: churn events, periodic heartbeat rounds
//! ([`Overlay::start_heartbeats`]), periodic cache refreshes
//! ([`Overlay::start_cache_refresh`]), periodic reservation-expiry sweeps
//! ([`Overlay::start_reservation_expiry`]), job completions
//! ([`Overlay::schedule_completion`]) and — since the brokering step became
//! event-driven — every RS reservation request's reply and timeout all
//! interleave on one timeline, delivered in `(time, schedule-order)` order
//! by [`Overlay::run_until`].  The `stop_*` counterparts cancel the pending
//! event by its [`EventKey`], so re-arms and revocations never leave ghost
//! events behind.  [`Overlay::advance`] survives as a thin shim over
//! `run_until` for callers that only want to move the clock.
//!
//! Sweep-scale simulations (thousands of pending completions) should build
//! the overlay with [`crate::boot::OverlayBuilder::queue_kind`] set to
//! [`QueueKind::Calendar`] — or [`QueueKind::Ladder`] when the timeline is
//! dominated by timeout churn (see the `p2pmpi_simgrid::event` docs for the
//! selection guide).
//!
//! # The timeout-event contract
//!
//! [`Overlay::rs_send`] puts one outbound reservation request on the
//! timeline as up to *two* scheduled events: an armed timeout at
//! `now + rs_timeout`, and — when the remote peer is alive — the reply's
//! delivery at `now + rtt`.  Whichever fires first resolves the request and
//! cancels its counterpart; [`RsOutcome::Timeout`] is therefore an observed
//! timeline event, not an analytically charged constant.  The race needs no
//! guard: event keys are generation-stamped, so the loser's cancel of an
//! already-fired (or already-cancelled) counterpart is a harmless stale-key
//! no-op, and the FIFO tie-break resolves the degenerate `rtt == rs_timeout`
//! instant in favour of the timeout armed first — the submitter gives up at
//! its deadline.  The remote RS's *decision* is computed at send time (the
//! grant/refusal mutates remote state immediately); only its delivery and
//! the timeout race are simulated.  A reservation granted by a peer whose
//! reply loses the race is leaked on the granter until the periodic expiry
//! sweep ([`Overlay::start_reservation_expiry`]) reclaims it — exactly the
//! failure mode that sweep exists for in the paper.
//!
//! **The alive-peer fast path.**  When the remote peer is alive and its
//! reply is scheduled *strictly before* the timeout window (`rtt <
//! rs_timeout` — the warm common case), the timeout event can never win the
//! race: it would be armed only to be cancelled by the reply, its tombstone
//! carried by the queue until firing time.  [`Overlay::rs_send`] therefore
//! skips arming it entirely.  This is outcome-invariant — the skipped event
//! never fires on the armed path either, and removing one never-delivered
//! ticket cannot reorder the survivors' FIFO ties — and it halves the
//! scheduling work of the warm brokering path (`perf_report` records the
//! reclaimed time per warm job; `crates/bench/tests/day_sweep.rs` pins
//! bit-identical sweep outcomes fast-path on vs off, churn included).
//! Dead peers and slow replies (`rtt >= rs_timeout`) always arm — the
//! timeout machinery is *kept* under churn, where it is load-bearing.
//! [`Overlay::set_rs_timeout_fast_path`] disables the fast path for
//! benchmarks that measure the armed machinery itself (the
//! `timeout_timeline` sections of `perf_report`).
//!
//! The pending-request bookkeeping lives in a reusable scratch vector on the
//! overlay: a steady-state brokering loop (send × booked, then
//! [`Overlay::rs_collect_into`]) allocates nothing once the high-water mark
//! is reached.
//!
//! The co-allocation procedure itself lives in the `p2pmpi-core` crate and
//! drives this type.

use crate::cache::CacheEntry;
use crate::churn::{ChurnEvent, ChurnKind};
use crate::messages::{
    RankAssignment, ReservationKey, ReservationReply, ReservationRequest, StartReply,
};
use crate::mpd::MpdNode;
use crate::peer::{PeerId, PeerState};
use crate::ping::LatencyProber;
use crate::supernode::Supernode;
use p2pmpi_simgrid::engine::TypedEngine;
use p2pmpi_simgrid::event::{EventKey, QueueKind};
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use p2pmpi_simgrid::topology::{HostId, Topology};
use p2pmpi_simgrid::trace::{TraceCategory, Tracer};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Tunable parameters of the overlay protocol simulation.
#[derive(Debug, Clone, Copy)]
pub struct OverlayParams {
    /// How long the submitter waits for an RS answer before marking the peer
    /// dead (step 5 of the procedure).
    pub rs_timeout: SimDuration,
    /// Number of probe rounds performed when bootstrapping a fresh cache.
    pub bootstrap_probe_rounds: usize,
    /// Period of the MPD alive signal to the supernode.
    pub heartbeat_period: SimDuration,
    /// Size in bytes of an RS reservation-request message.
    pub rs_message_bytes: u64,
    /// Size in bytes of an MPD start-request message (program name + ranks).
    pub start_message_bytes: u64,
}

impl Default for OverlayParams {
    fn default() -> Self {
        OverlayParams {
            rs_timeout: SimDuration::from_secs(2),
            bootstrap_probe_rounds: 3,
            heartbeat_period: SimDuration::from_secs(120),
            rs_message_bytes: 256,
            start_message_bytes: 2048,
        }
    }
}

/// Outcome of an RS→RS reservation request as seen by the submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsOutcome {
    /// The remote RS answered within the timeout.
    Reply {
        /// The OK/NOK answer.
        reply: ReservationReply,
        /// Round-trip time of the exchange.
        elapsed: SimDuration,
    },
    /// The remote peer never answered; it is to be marked dead.
    Timeout {
        /// Time spent waiting (the RS timeout).
        elapsed: SimDuration,
    },
}

impl RsOutcome {
    /// Time spent on this interaction.
    pub fn elapsed(&self) -> SimDuration {
        match self {
            RsOutcome::Reply { elapsed, .. } | RsOutcome::Timeout { elapsed } => *elapsed,
        }
    }
}

/// An event on the overlay's simulation timeline.
///
/// These are the payloads of the overlay's [`TypedEngine`]; they stay
/// private because scheduling happens through the typed methods
/// (`schedule_churn`, `start_heartbeats`, `schedule_completion`, ...),
/// which also maintain the re-arm bookkeeping.
#[derive(Debug)]
enum OverlayEvent {
    /// A scheduled crash or recovery.
    Churn(ChurnEvent),
    /// One round of alive signals plus the supernode expiry sweep;
    /// re-arms itself every `heartbeat_period` while enabled.
    HeartbeatRound,
    /// A peer pulls the supernode host list into its cache; re-arms itself
    /// at the peer's configured refresh period.
    CacheRefresh(PeerId),
    /// Every RS drops pending reservations older than the configured TTL;
    /// re-arms itself at the configured sweep period.
    ReservationSweep,
    /// A running job finishes: free the gatekeeper slot on every host it
    /// occupied.
    JobComplete {
        key: ReservationKey,
        peers: Vec<PeerId>,
    },
    /// An in-flight RS reply reaches the submitter; cancels the armed
    /// timeout of the same request (index into the pending-request scratch).
    RsReply(u32),
    /// An armed reservation timeout fires: the peer never answered within
    /// `rs_timeout`; cancels the pending reply delivery, if any.
    RsTimeout(u32),
}

/// One in-flight RS→RS reservation request: the two scheduled events racing
/// to resolve it, and the outcome once one of them fired.  Slots live in a
/// reusable scratch vector on [`Overlay`] and are recycled wholesale by
/// [`Overlay::rs_collect_into`].
#[derive(Debug)]
struct RsPending {
    from: PeerId,
    to: PeerId,
    /// The remote RS's decision, computed at send time (`None` when the
    /// peer was dead and no reply will ever be delivered).
    reply: Option<ReservationReply>,
    /// Round-trip time of the exchange (meaningful when `reply` is some).
    rtt: SimDuration,
    /// The armed timeout event (`None` on the alive-peer fast path, where
    /// the reply is scheduled strictly before the timeout window and the
    /// race is already decided).
    timeout_key: Option<EventKey>,
    /// The scheduled reply delivery, when the peer was alive.
    reply_key: Option<EventKey>,
    /// Filled by whichever event fires first.
    outcome: Option<RsOutcome>,
}

/// The simulated P2P-MPI overlay.
pub struct Overlay {
    topology: Arc<Topology>,
    network: NetworkModel,
    prober: LatencyProber,
    supernode: Supernode,
    supernode_host: HostId,
    nodes: Vec<MpdNode>,
    host_to_peer: HashMap<HostId, PeerId>,
    sim: TypedEngine<OverlayEvent>,
    rng: StdRng,
    tracer: Tracer,
    params: OverlayParams,
    /// Pending heartbeat event while periodic heartbeats are enabled.
    heartbeat: Option<EventKey>,
    /// Per-peer periodic cache refresh: period and the pending event.
    cache_refresh: HashMap<PeerId, (SimDuration, EventKey)>,
    /// Periodic reservation-expiry sweep: (ttl, period) and the pending
    /// event.
    resv_expiry: Option<(SimDuration, SimDuration, EventKey)>,
    /// Reusable probe-round buffers, so steady-state probing allocates
    /// nothing (cleared, never shrunk, between rounds).
    scratch_measurements: Vec<(PeerId, SimDuration)>,
    scratch_failures: Vec<PeerId>,
    /// In-flight (and resolved-but-undrained) RS reservation requests:
    /// cleared, never shrunk, by [`Overlay::rs_collect_into`], so a
    /// steady-state brokering loop performs no per-request allocation.
    rs_pending: Vec<RsPending>,
    /// How many `rs_pending` slots still await their reply/timeout event.
    rs_inflight: usize,
    /// Skip arming timeouts whose reply is already scheduled to win the
    /// race (see the module docs; benchmarks of the armed machinery turn
    /// this off).
    rs_timeout_fast_path: bool,
}

/// Returns `(&from, &mut to)` for two *distinct* peers of the node table.
fn nodes_from_to(nodes: &mut [MpdNode], from: usize, to: usize) -> (&MpdNode, &mut MpdNode) {
    debug_assert_ne!(from, to, "caller must special-case self requests");
    if from < to {
        let (left, right) = nodes.split_at_mut(to);
        (&left[from], &mut right[0])
    } else {
        let (left, right) = nodes.split_at_mut(from);
        (&right[0], &mut left[to])
    }
}

impl Overlay {
    /// Assembles an overlay; normally called through
    /// [`crate::boot::OverlayBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        topology: Arc<Topology>,
        network: NetworkModel,
        prober: LatencyProber,
        supernode_host: HostId,
        nodes: Vec<MpdNode>,
        rng: StdRng,
        tracer: Tracer,
        params: OverlayParams,
        queue_kind: QueueKind,
    ) -> Self {
        let host_to_peer = nodes
            .iter()
            .map(|n| (n.descriptor.host, n.descriptor.id))
            .collect();
        Overlay {
            topology,
            network,
            prober,
            supernode: Supernode::default(),
            supernode_host,
            nodes,
            host_to_peer,
            sim: TypedEngine::with_queue_kind(queue_kind),
            rng,
            tracer,
            params,
            heartbeat: None,
            cache_refresh: HashMap::new(),
            resv_expiry: None,
            scratch_measurements: Vec::new(),
            scratch_failures: Vec::new(),
            rs_pending: Vec::new(),
            rs_inflight: 0,
            rs_timeout_fast_path: true,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The topology the overlay runs on.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The network cost model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The latency prober (network + noise).
    pub fn prober(&self) -> &LatencyProber {
        &self.prober
    }

    /// The trace recorder.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Protocol parameters.
    pub fn params(&self) -> OverlayParams {
        self.params
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The priority structure backing the event timeline.
    pub fn queue_kind(&self) -> QueueKind {
        self.sim.queue_kind()
    }

    /// Number of timeline events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.processed()
    }

    /// Number of timeline events still pending.
    pub fn events_pending(&self) -> usize {
        self.sim.pending()
    }

    /// Number of timeline tickets still queued, *including* tombstones of
    /// cancelled events awaiting collection — the dead weight a
    /// cancellation-heavy workload (per-reservation timeouts) carries.
    pub fn events_queued(&self) -> usize {
        self.sim.queued()
    }

    /// Payload-slot capacity of the timeline (its high-water mark of
    /// simultaneously pending events; diagnostics for allocation-free
    /// steady-state checks).
    pub fn events_capacity(&self) -> usize {
        self.sim.events_capacity()
    }

    /// Number of peers (alive or dead).
    pub fn peer_count(&self) -> usize {
        self.nodes.len()
    }

    /// All peer ids.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.nodes.iter().map(|n| n.descriptor.id).collect()
    }

    /// Immutable access to a peer's MPD state.
    pub fn node(&self, peer: PeerId) -> &MpdNode {
        &self.nodes[peer.0]
    }

    /// Mutable access to a peer's MPD state.
    pub fn node_mut(&mut self, peer: PeerId) -> &mut MpdNode {
        &mut self.nodes[peer.0]
    }

    /// The peer whose MPD runs on `host`, if any.
    pub fn peer_on_host(&self, host: HostId) -> Option<PeerId> {
        self.host_to_peer.get(&host).copied()
    }

    /// The host a peer runs on.
    pub fn host_of(&self, peer: PeerId) -> HostId {
        self.nodes[peer.0].descriptor.host
    }

    /// The supernode registry (read-only).
    pub fn supernode(&self) -> &Supernode {
        &self.supernode
    }

    /// Generates a fresh unique reservation key (step 3 of the procedure).
    pub fn generate_key(&mut self) -> ReservationKey {
        ReservationKey(self.rng.gen())
    }

    // ------------------------------------------------------------------
    // The event timeline
    // ------------------------------------------------------------------

    /// Runs the simulation until `deadline`: every scheduled event due at or
    /// before it — churn, heartbeat rounds, cache refreshes, reservation
    /// sweeps, job completions — fires in `(time, schedule-order)` order,
    /// and the clock ends at `deadline` (or later only if an event fired
    /// exactly there).  Returns the number of events delivered.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut delivered = 0;
        while let Some(ev) = self.sim.pop_due(deadline) {
            self.dispatch(ev.payload);
            delivered += 1;
        }
        self.sim.advance_clock_to(deadline);
        delivered
    }

    /// Advances the virtual clock by `d`, delivering any scheduled events
    /// that become due.  Compatibility shim over [`Overlay::run_until`].
    pub fn advance(&mut self, d: SimDuration) {
        let target = self.sim.now() + d;
        self.run_until(target);
    }

    /// Delivers one due timeline event.
    fn dispatch(&mut self, event: OverlayEvent) {
        match event {
            OverlayEvent::Churn(ev) => match ev.kind {
                ChurnKind::Crash => self.kill_peer(ev.peer),
                ChurnKind::Recover => self.revive_peer(ev.peer),
            },
            OverlayEvent::HeartbeatRound => {
                self.heartbeat_round();
                if self.heartbeat.is_some() {
                    // Still enabled: re-arm the next round.
                    let key = self
                        .sim
                        .schedule_in(self.params.heartbeat_period, OverlayEvent::HeartbeatRound);
                    self.heartbeat = Some(key);
                }
            }
            OverlayEvent::CacheRefresh(peer) => {
                if let Some(&(period, _)) = self.cache_refresh.get(&peer) {
                    // A dead MPD refreshes nothing, but the schedule stays
                    // armed so it resumes once the peer recovers.
                    if self.nodes[peer.0].is_alive() {
                        self.refresh_cache(peer);
                    }
                    let key = self
                        .sim
                        .schedule_in(period, OverlayEvent::CacheRefresh(peer));
                    self.cache_refresh.insert(peer, (period, key));
                }
            }
            OverlayEvent::ReservationSweep => {
                if let Some((ttl, period, _)) = self.resv_expiry {
                    let now = self.sim.now();
                    let mut dropped = 0;
                    for node in &mut self.nodes {
                        dropped += node.rs.expire_pending(now, ttl);
                    }
                    if dropped > 0 {
                        self.tracer.record(now, TraceCategory::Reservation, || {
                            format!("expired {dropped} stale pending reservation(s)")
                        });
                    }
                    let key = self.sim.schedule_in(period, OverlayEvent::ReservationSweep);
                    self.resv_expiry = Some((ttl, period, key));
                }
            }
            OverlayEvent::JobComplete { key, peers } => {
                let mut freed = 0;
                for peer in peers {
                    if self.nodes[peer.0].rs.complete(key) {
                        freed += 1;
                    }
                }
                self.tracer
                    .record(self.sim.now(), TraceCategory::Runtime, || {
                        format!("job completed, freed {freed} host(s)")
                    });
            }
            OverlayEvent::RsReply(idx) => {
                let slot = &mut self.rs_pending[idx as usize];
                debug_assert!(slot.outcome.is_none(), "RS request resolved twice");
                let reply = slot.reply.expect("reply delivery for a dead-peer request");
                slot.outcome = Some(RsOutcome::Reply {
                    reply,
                    elapsed: slot.rtt,
                });
                let (from, to, timeout_key) = (slot.from, slot.to, slot.timeout_key.take());
                // The reply won the race: disarm the timeout, if one was
                // armed at all (its ticket is tombstoned and compacted by
                // the queue, never delivered).
                if let Some(timeout_key) = timeout_key {
                    self.sim.cancel(timeout_key);
                }
                self.rs_inflight -= 1;
                self.tracer
                    .record(self.sim.now(), TraceCategory::Reservation, || {
                        format!("{from} -> {to}: {reply:?}")
                    });
            }
            OverlayEvent::RsTimeout(idx) => {
                let slot = &mut self.rs_pending[idx as usize];
                debug_assert!(slot.outcome.is_none(), "RS request resolved twice");
                slot.outcome = Some(RsOutcome::Timeout {
                    elapsed: self.params.rs_timeout,
                });
                let (from, to) = (slot.from, slot.to);
                // Cancel the in-flight reply, if one was ever scheduled (a
                // stale key here is harmless; see the module docs).
                if let Some(reply_key) = slot.reply_key.take() {
                    self.sim.cancel(reply_key);
                }
                self.rs_inflight -= 1;
                self.tracer
                    .record(self.sim.now(), TraceCategory::Reservation, || {
                        format!("{from} -> {to}: reservation timed out (peer dead)")
                    });
            }
        }
    }

    /// Schedules a churn schedule onto the timeline (events must not be in
    /// the past).  Repeated calls accumulate: each call adds its events to
    /// the timeline alongside whatever was already scheduled.
    pub fn schedule_churn(&mut self, events: Vec<ChurnEvent>) {
        for ev in events {
            assert!(
                ev.time >= self.sim.now(),
                "churn events must be in the future"
            );
            self.sim.schedule_at(ev.time, OverlayEvent::Churn(ev));
        }
    }

    /// Starts periodic heartbeat rounds ([`Overlay::heartbeat_round`]) every
    /// [`OverlayParams::heartbeat_period`], first round one period from now.
    /// No-op if already running.
    pub fn start_heartbeats(&mut self) {
        if self.heartbeat.is_none() {
            let key = self
                .sim
                .schedule_in(self.params.heartbeat_period, OverlayEvent::HeartbeatRound);
            self.heartbeat = Some(key);
        }
    }

    /// Stops periodic heartbeats, cancelling the pending round.  Returns
    /// `true` if heartbeats were running.
    pub fn stop_heartbeats(&mut self) -> bool {
        match self.heartbeat.take() {
            Some(key) => {
                self.sim.cancel(key);
                true
            }
            None => false,
        }
    }

    /// Starts a periodic supernode cache refresh for `peer`, first refresh
    /// one period from now.  Re-arming an already-scheduled peer replaces
    /// its period (the pending event is cancelled and rescheduled).
    pub fn start_cache_refresh(&mut self, peer: PeerId, period: SimDuration) {
        assert!(!period.is_zero(), "cache refresh needs a non-zero period");
        let key = self
            .sim
            .schedule_in(period, OverlayEvent::CacheRefresh(peer));
        if let Some((_, old)) = self.cache_refresh.insert(peer, (period, key)) {
            self.sim.cancel(old);
        }
    }

    /// Stops the periodic cache refresh for `peer`, cancelling the pending
    /// event.  Returns `true` if one was scheduled.
    pub fn stop_cache_refresh(&mut self, peer: PeerId) -> bool {
        match self.cache_refresh.remove(&peer) {
            Some((_, key)) => {
                self.sim.cancel(key);
                true
            }
            None => false,
        }
    }

    /// Starts a periodic reservation-expiry sweep: every `period`, each RS
    /// drops pending (never running) reservations older than `ttl`.  This is
    /// what reclaims gatekeeper slots promised to submitters that crashed
    /// mid-procedure.  Re-arming replaces the previous configuration.
    pub fn start_reservation_expiry(&mut self, ttl: SimDuration, period: SimDuration) {
        assert!(!period.is_zero(), "expiry sweep needs a non-zero period");
        let key = self.sim.schedule_in(period, OverlayEvent::ReservationSweep);
        if let Some((_, _, old)) = self.resv_expiry.replace((ttl, period, key)) {
            self.sim.cancel(old);
        }
    }

    /// Stops the periodic reservation-expiry sweep.  Returns `true` if one
    /// was running.
    pub fn stop_reservation_expiry(&mut self) -> bool {
        match self.resv_expiry.take() {
            Some((_, _, key)) => {
                self.sim.cancel(key);
                true
            }
            None => false,
        }
    }

    /// Schedules the completion of a running job at absolute time `at`: the
    /// gatekeeper slot held under `key` on each of `peers` is freed when the
    /// event fires.  Returns the event's key so a caller that tears the job
    /// down early (e.g. on failure) can [`Overlay::cancel_completion`].
    pub fn schedule_completion(
        &mut self,
        at: SimTime,
        key: ReservationKey,
        peers: Vec<PeerId>,
    ) -> EventKey {
        self.sim
            .schedule_at(at, OverlayEvent::JobComplete { key, peers })
    }

    /// Cancels a scheduled job completion (the hosts stay booked; the caller
    /// is expected to free them itself).  Returns the job's peers if the
    /// completion was still pending.
    ///
    /// # Panics
    ///
    /// Panics if `event` refers to a pending event that is *not* a job
    /// completion: the caller mixed up keys, and silently revoking a
    /// periodic behaviour (heartbeat, refresh, sweep) would corrupt the
    /// simulation — surfacing the bug beats limping on.
    pub fn cancel_completion(&mut self, event: EventKey) -> Option<Vec<PeerId>> {
        match self.sim.cancel(event) {
            Some(OverlayEvent::JobComplete { peers, .. }) => Some(peers),
            Some(other) => {
                panic!("cancel_completion called with a non-completion event: {other:?}")
            }
            None => None,
        }
    }

    /// Marks a peer dead immediately.
    pub fn kill_peer(&mut self, peer: PeerId) {
        self.nodes[peer.0].state = PeerState::Dead;
        self.tracer
            .record(self.sim.now(), TraceCategory::Fault, || {
                format!("{peer} crashed")
            });
    }

    /// Brings a peer back and re-registers it with the supernode.
    pub fn revive_peer(&mut self, peer: PeerId) {
        self.nodes[peer.0].state = PeerState::Alive;
        let d = self.nodes[peer.0].descriptor.clone();
        self.supernode.register(d, self.sim.now());
        self.tracer
            .record(self.sim.now(), TraceCategory::Fault, || {
                format!("{peer} recovered")
            });
    }

    /// Number of peers currently alive.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_alive()).count()
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Registers every alive peer with the supernode ("mpiboot" on all
    /// machines).
    pub fn boot_all(&mut self) {
        for node in &self.nodes {
            if node.is_alive() {
                self.supernode
                    .register(node.descriptor.clone(), self.sim.now());
            }
        }
        let registered = self.supernode.len();
        self.tracer
            .record(self.sim.now(), TraceCategory::Membership, || {
                format!("{registered} peers registered with supernode")
            });
    }

    /// One round of alive signals from every alive peer, followed by an
    /// expiry sweep at the supernode.  Returns the number of expired peers.
    pub fn heartbeat_round(&mut self) -> usize {
        for node in &self.nodes {
            if node.is_alive() {
                self.supernode.alive(node.descriptor.id, self.sim.now());
            }
        }
        let dropped = self.supernode.expire_stale(self.sim.now());
        if dropped > 0 {
            self.tracer
                .record(self.sim.now(), TraceCategory::Membership, || {
                    format!("supernode expired {dropped} stale peers")
                });
        }
        dropped
    }

    // ------------------------------------------------------------------
    // Cache management and probing
    // ------------------------------------------------------------------

    /// The MPD of `peer` pulls the supernode host list into its cache
    /// (a "cached list update request", step 2).  Returns the number of new
    /// peers learned and the elapsed round-trip time.
    pub fn refresh_cache(&mut self, peer: PeerId) -> (usize, SimDuration) {
        let src = self.nodes[peer.0].descriptor.host;
        let elapsed = self.network.transfer_time(src, self.supernode_host, 128)
            + self.network.transfer_time(
                self.supernode_host,
                src,
                64 * self.supernode.len() as u64 + 64,
            );
        // Merge straight off the supernode's table: no intermediate Vec, and
        // descriptors are cloned only for peers new to this cache.
        let added = self.nodes[peer.0].cache.merge_refs(
            self.supernode
                .host_list_iter()
                .map(|e| &e.descriptor)
                .filter(|d| d.id != peer),
        );
        self.tracer
            .record(self.sim.now(), TraceCategory::Membership, || {
                format!("{peer} refreshed cache (+{added} peers)")
            });
        (added, elapsed)
    }

    /// One probe round: `peer` pings every cached peer once and updates its
    /// latency estimates.  Dead peers record a probe failure.  Returns the
    /// virtual time the round took (probes are sent concurrently, so this is
    /// the slowest individual probe).
    pub fn probe_round(&mut self, peer: PeerId) -> SimDuration {
        let src = self.nodes[peer.0].descriptor.host;
        let mut slowest = SimDuration::ZERO;
        // One pass over the cache, pushing into the reusable scratch buffers:
        // `nodes` is only read here, so probing borrows it alongside the
        // mutable rng/scratch fields without an intermediate target list.
        // The walk follows the latency index (ids only — the target host
        // comes from the node table, no per-entry map lookup), not the hash
        // map: probe noise comes from the shared rng, so the draw-to-peer
        // pairing must be deterministic for a seeded run to be reproducible.
        self.scratch_measurements.clear();
        self.scratch_failures.clear();
        for id in self.nodes[peer.0].cache.ranking_iter() {
            if self.nodes[id.0].is_alive() {
                let dst = self.nodes[id.0].descriptor.host;
                let rtt = self.prober.probe(src, dst, &mut self.rng);
                slowest = slowest.max(rtt);
                self.scratch_measurements.push((id, rtt));
            } else {
                slowest = slowest.max(self.params.rs_timeout);
                self.scratch_failures.push(id);
            }
        }
        let now = self.sim.now();
        let node = &mut self.nodes[peer.0];
        for &(id, rtt) in &self.scratch_measurements {
            node.cache.record_probe(id, rtt, now);
        }
        for &id in &self.scratch_failures {
            node.cache.record_probe_failure(id);
        }
        let cache_len = node.cache.len();
        self.tracer
            .record(self.sim.now(), TraceCategory::Probe, || {
                format!("{peer} probed its cache ({cache_len} entries)")
            });
        slowest
    }

    /// Boots `peer`'s view of the overlay: refresh the cache from the
    /// supernode and run the configured number of probe rounds.  Returns the
    /// elapsed virtual time.
    pub fn bootstrap_peer(&mut self, peer: PeerId) -> SimDuration {
        let (_, mut elapsed) = self.refresh_cache(peer);
        for _ in 0..self.params.bootstrap_probe_rounds {
            elapsed += self.probe_round(peer);
        }
        elapsed
    }

    /// The submitter's cached list sorted by ascending measured latency —
    /// the order the booking step walks.
    pub fn latency_ranking(&self, peer: PeerId) -> Vec<PeerId> {
        self.nodes[peer.0].cache.ranking()
    }

    /// Borrowing form of [`Overlay::latency_ranking`]: walks the cache's
    /// incremental latency index without sorting or allocating.  This is
    /// what the co-allocation booking step uses.
    pub fn ranking_iter(&self, peer: PeerId) -> impl Iterator<Item = PeerId> + '_ {
        self.nodes[peer.0].cache.ranking_iter()
    }

    /// Snapshot of the cached entries of `peer` sorted by latency.
    pub fn sorted_cache(&self, peer: PeerId) -> Vec<CacheEntry> {
        self.nodes[peer.0]
            .cache
            .sorted_by_latency()
            .into_iter()
            .cloned()
            .collect()
    }

    // ------------------------------------------------------------------
    // RS brokering and start requests
    // ------------------------------------------------------------------

    /// Sends an RS→RS reservation request from `from` to `to` onto the
    /// timeline (steps 3–4): an armed timeout event at `now + rs_timeout`
    /// races the reply's delivery at `now + rtt` (never scheduled when the
    /// peer is dead).  See the module docs for the timeout-event contract.
    ///
    /// This is the single hottest call of a job-submission sweep (once per
    /// booked host per job), so it is allocation-free in steady state: the
    /// request borrows the requester's address, the remote RS reads its
    /// owner's config in place, the pending-request slot reuses the scratch
    /// vector recycled by [`Overlay::rs_collect_into`], and both scheduled
    /// events recycle event-store slots.
    pub fn rs_send(&mut self, from: PeerId, to: PeerId, key: ReservationKey, total_processes: u32) {
        let idx = u32::try_from(self.rs_pending.len()).expect("too many in-flight RS requests");
        let (reply, rtt, reply_key, timeout_key) = if self.nodes[to.0].is_alive() {
            let src = self.nodes[from.0].descriptor.host;
            let dst = self.nodes[to.0].descriptor.host;
            let rtt = self
                .network
                .transfer_time(src, dst, self.params.rs_message_bytes)
                + self
                    .network
                    .transfer_time(dst, src, self.params.rs_message_bytes);
            // Alive-peer fast path: a reply scheduled strictly before the
            // timeout window has already won the race, so the timeout is
            // not armed at all (see the module docs).  When it *is* armed
            // (slow link, or the fast path disabled), it is armed before
            // the reply so the FIFO tie-break delivers the timeout first
            // at the degenerate `rtt == rs_timeout` instant — the
            // submitter gives up at its deadline.
            let timeout_key = if self.rs_timeout_fast_path && rtt < self.params.rs_timeout {
                None
            } else {
                Some(
                    self.sim
                        .schedule_in(self.params.rs_timeout, OverlayEvent::RsTimeout(idx)),
                )
            };
            let now = self.sim.now();
            let reply = if from.0 == to.0 {
                // A submitter reserving its own host: every piece (address,
                // config, RS) is a disjoint field of the same node.
                let node = &mut self.nodes[to.0];
                let req = ReservationRequest {
                    key,
                    requester: from,
                    requester_address: &node.descriptor.address,
                    total_processes,
                };
                node.rs.handle_request(&req, &node.config, now)
            } else {
                let (from_node, to_node) = nodes_from_to(&mut self.nodes, from.0, to.0);
                let req = ReservationRequest {
                    key,
                    requester: from,
                    requester_address: &from_node.descriptor.address,
                    total_processes,
                };
                to_node.rs.handle_request(&req, &to_node.config, now)
            };
            let reply_key = self.sim.schedule_in(rtt, OverlayEvent::RsReply(idx));
            (Some(reply), rtt, Some(reply_key), timeout_key)
        } else {
            // A dead peer never answers: only the timeout is on the
            // timeline, and it will fire.
            let timeout_key = self
                .sim
                .schedule_in(self.params.rs_timeout, OverlayEvent::RsTimeout(idx));
            (None, self.params.rs_timeout, None, Some(timeout_key))
        };
        self.rs_pending.push(RsPending {
            from,
            to,
            reply,
            rtt,
            timeout_key,
            reply_key,
            outcome: None,
        });
        self.rs_inflight += 1;
    }

    /// Number of sent RS requests whose reply/timeout has not fired yet.
    pub fn rs_inflight(&self) -> usize {
        self.rs_inflight
    }

    /// Runs the timeline until every in-flight RS request has resolved.
    /// Other events that come due on the way (completions, heartbeats,
    /// churn, ...) are delivered normally — a brokering round does not get
    /// a private clock.
    fn run_until_rs_resolved(&mut self) {
        while self.rs_inflight > 0 {
            let ev = self
                .sim
                .pop_due(SimTime::MAX)
                .expect("in-flight RS requests imply pending events");
            self.dispatch(ev.payload);
        }
    }

    /// Resolves the current brokering round: runs the timeline until every
    /// request sent since the last drain has its reply or timeout, then
    /// drains the outcomes into `out` (cleared first) **in send order** —
    /// the deterministic order the co-allocation procedure walks, whatever
    /// interleaving the race produced.  The scratch slots are recycled.
    pub fn rs_collect_into(&mut self, out: &mut Vec<(PeerId, RsOutcome)>) {
        out.clear();
        self.run_until_rs_resolved();
        for slot in self.rs_pending.drain(..) {
            let outcome = slot.outcome.expect("drained an unresolved RS request");
            out.push((slot.to, outcome));
        }
    }

    /// Capacity of the pending-request scratch (diagnostics: must reach a
    /// high-water mark and stay there in a steady-state sweep).
    pub fn rs_scratch_capacity(&self) -> usize {
        self.rs_pending.capacity()
    }

    /// Enables or disables the alive-peer timeout fast path (default on;
    /// outcome-invariant either way — see the module docs).  Benchmarks of
    /// the armed timeout machinery itself turn it off so every reservation
    /// still parks its timeout event on the timeline.
    pub fn set_rs_timeout_fast_path(&mut self, enabled: bool) {
        self.rs_timeout_fast_path = enabled;
    }

    /// Whether the alive-peer timeout fast path is enabled.
    pub fn rs_timeout_fast_path(&self) -> bool {
        self.rs_timeout_fast_path
    }

    /// RS→RS reservation request from `from` to `to`, resolved inline: one
    /// [`Overlay::rs_send`] followed by running the timeline until the
    /// reply/timeout race settles.  The clock therefore *advances* by the
    /// exchange's round trip (or the full `rs_timeout` for a dead peer) —
    /// the timeout is an observed event here too, not a charged constant.
    ///
    /// # Panics
    ///
    /// Panics if called while a multi-request brokering round is in flight;
    /// batch rounds must resolve through [`Overlay::rs_collect_into`].
    pub fn rs_request(
        &mut self,
        from: PeerId,
        to: PeerId,
        key: ReservationKey,
        total_processes: u32,
    ) -> RsOutcome {
        assert!(
            self.rs_pending.is_empty(),
            "rs_request cannot interleave with an in-flight brokering round"
        );
        self.rs_send(from, to, key, total_processes);
        self.run_until_rs_resolved();
        let slot = self.rs_pending.pop().expect("one pending request");
        slot.outcome.expect("resolved request has an outcome")
    }

    /// Cancels a reservation previously granted by `to` (unused reservations
    /// from the overbooked `rlist`, step 6).  Returns `true` if the remote RS
    /// actually held it.
    pub fn rs_cancel(&mut self, from: PeerId, to: PeerId, key: ReservationKey) -> bool {
        if !self.nodes[to.0].is_alive() {
            return false;
        }
        let cancelled = self.nodes[to.0].rs.cancel(key);
        if cancelled {
            self.tracer
                .record(self.sim.now(), TraceCategory::Reservation, || {
                    format!("{from} cancelled reservation on {to}")
                });
        }
        cancelled
    }

    /// MPD start request (steps 6–8): `from` asks `to` to start `ranks` of
    /// `program` under reservation `key`.  The remote MPD verifies the key
    /// against its RS before launching.
    pub fn mpd_start(
        &mut self,
        from: PeerId,
        to: PeerId,
        key: ReservationKey,
        ranks: &[RankAssignment],
        program: &str,
    ) -> (StartReply, SimDuration) {
        let src = self.nodes[from.0].descriptor.host;
        let dst = self.nodes[to.0].descriptor.host;
        if !self.nodes[to.0].is_alive() {
            return (StartReply::Timeout, self.params.rs_timeout);
        }
        let elapsed = self
            .network
            .transfer_time(src, dst, self.params.start_message_bytes)
            + self.network.transfer_time(dst, src, 64);
        let node = &mut self.nodes[to.0];
        if !node.rs.verify_key(key) {
            return (StartReply::KeyMismatch, elapsed);
        }
        match node.rs.start(key, ranks.len() as u32, &node.config) {
            Ok(()) => {
                self.tracer
                    .record(self.sim.now(), TraceCategory::Runtime, || {
                        format!("{to} started {} process(es) of {program}", ranks.len())
                    });
                (StartReply::Started, elapsed)
            }
            Err(_) => (StartReply::KeyMismatch, elapsed),
        }
    }

    /// Marks the application under `key` as finished on `peer`, freeing the
    /// gatekeeper slot.
    pub fn complete_job(&mut self, peer: PeerId, key: ReservationKey) -> bool {
        self.nodes[peer.0].rs.complete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boot::OverlayBuilder;
    use crate::config::OwnerConfig;
    use p2pmpi_simgrid::noise::NoiseModel;
    use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};

    fn small_topology() -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("local");
        let s1 = b.add_site("remote");
        b.add_cluster(
            s0,
            "l",
            "cpu",
            3,
            NodeSpec {
                cores: 2,
                ..NodeSpec::default()
            },
        );
        b.add_cluster(
            s1,
            "r",
            "cpu",
            3,
            NodeSpec {
                cores: 4,
                ..NodeSpec::default()
            },
        );
        b.set_rtt(s0, s1, SimDuration::from_millis(10));
        Arc::new(b.build())
    }

    fn overlay() -> Overlay {
        let topo = small_topology();
        OverlayBuilder::new(topo)
            .seed(1)
            .noise(NoiseModel::disabled())
            .peer_per_host_with_core_capacity()
            .build()
    }

    #[test]
    fn boot_and_bootstrap_builds_latency_ranking() {
        let mut o = overlay();
        o.boot_all();
        assert_eq!(o.supernode().len(), 6);
        let submitter = o
            .peer_on_host(o.topology().host_by_name("l-0").unwrap().id)
            .unwrap();
        o.bootstrap_peer(submitter);
        let ranking = o.latency_ranking(submitter);
        assert_eq!(ranking.len(), 5); // everyone but the submitter
                                      // The two other local hosts come before the three remote ones.
        let local_hosts: Vec<HostId> = o
            .topology()
            .hosts_at_site(o.topology().site_by_name("local").unwrap().id)
            .map(|h| h.id)
            .collect();
        for &p in &ranking[..2] {
            assert!(local_hosts.contains(&o.host_of(p)));
        }
        for &p in &ranking[2..] {
            assert!(!local_hosts.contains(&o.host_of(p)));
        }
    }

    #[test]
    fn rs_request_grants_then_respects_j() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[1]);
        let k1 = o.generate_key();
        let k2 = o.generate_key();
        assert_ne!(k1, k2);
        match o.rs_request(from, to, k1, 4) {
            RsOutcome::Reply { reply, elapsed } => {
                assert!(reply.is_ok());
                assert!(elapsed > SimDuration::ZERO);
            }
            RsOutcome::Timeout { .. } => panic!("unexpected timeout"),
        }
        // Default J=1: a second application is refused.
        match o.rs_request(from, to, k2, 4) {
            RsOutcome::Reply { reply, .. } => assert!(!reply.is_ok()),
            RsOutcome::Timeout { .. } => panic!("unexpected timeout"),
        }
        // Cancelling frees the slot.
        assert!(o.rs_cancel(from, to, k1));
        assert!(matches!(
            o.rs_request(from, to, k2, 4),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
    }

    #[test]
    fn dead_peers_time_out_and_probe_failures_accumulate() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[3]);
        o.bootstrap_peer(from);
        o.kill_peer(to);
        assert_eq!(o.alive_count(), 5);
        let k = o.generate_key();
        match o.rs_request(from, to, k, 1) {
            RsOutcome::Timeout { elapsed } => assert_eq!(elapsed, o.params().rs_timeout),
            RsOutcome::Reply { .. } => panic!("dead peer answered"),
        }
        o.probe_round(from);
        assert_eq!(o.node(from).cache.get(to).unwrap().failed_probes, 1);
        o.revive_peer(to);
        assert_eq!(o.alive_count(), 6);
        assert!(matches!(
            o.rs_request(from, to, k, 1),
            RsOutcome::Reply { .. }
        ));
    }

    #[test]
    fn batch_brokering_resolves_on_the_timeline_in_send_order() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let submitter = ids[0];
        o.kill_peer(ids[3]);
        let key = o.generate_key();
        let t0 = o.now();
        // One round: two live peers and a dead one in the middle.
        for &to in &[ids[1], ids[3], ids[2]] {
            o.rs_send(submitter, to, key, 1);
        }
        assert_eq!(o.rs_inflight(), 3);
        let mut outcomes = Vec::new();
        o.rs_collect_into(&mut outcomes);
        assert_eq!(o.rs_inflight(), 0);
        // Outcomes come back in send order, not firing order (the replies
        // fire ms before the dead peer's 2 s timeout).
        let peers: Vec<PeerId> = outcomes.iter().map(|&(p, _)| p).collect();
        assert_eq!(peers, vec![ids[1], ids[3], ids[2]]);
        assert!(matches!(outcomes[0].1, RsOutcome::Reply { .. }));
        assert!(matches!(outcomes[2].1, RsOutcome::Reply { .. }));
        match outcomes[1].1 {
            RsOutcome::Timeout { elapsed } => assert_eq!(elapsed, o.params().rs_timeout),
            RsOutcome::Reply { .. } => panic!("dead peer answered"),
        }
        // The timeout was an observed event: the clock actually waited the
        // full rs_timeout for the dead peer.
        assert_eq!(o.now(), t0 + o.params().rs_timeout);
        // The live requests took the fast path (no armed timeout), so no
        // tombstones linger beyond pending events.
        assert!(o.events_queued() >= o.events_pending());
    }

    #[test]
    fn reply_slower_than_the_timeout_loses_the_race() {
        // An *alive* peer whose round trip exceeds rs_timeout: the armed
        // timeout fires first and cancels the in-flight reply.  The remote
        // granted at send time, so the reservation leaks on the granter
        // until the expiry sweep reclaims it — the documented contract.
        let topo = small_topology();
        let mut o = OverlayBuilder::new(topo.clone())
            .seed(5)
            .noise(NoiseModel::disabled())
            .overlay_params(OverlayParams {
                // Inter-site RTT is 10 ms; a 1 ms timeout always loses.
                rs_timeout: SimDuration::from_millis(1),
                ..OverlayParams::default()
            })
            .peer_per_host_with_core_capacity()
            .build();
        o.boot_all();
        let submitter = o
            .peer_on_host(topo.host_by_name("l-0").unwrap().id)
            .unwrap();
        let remote = o
            .peer_on_host(topo.host_by_name("r-0").unwrap().id)
            .unwrap();
        let key = o.generate_key();
        match o.rs_request(submitter, remote, key, 1) {
            RsOutcome::Timeout { elapsed } => assert_eq!(elapsed, SimDuration::from_millis(1)),
            RsOutcome::Reply { .. } => panic!("slow reply should have lost the race"),
        }
        // The grant happened at send time and leaked on the remote RS.
        assert_eq!(o.node(remote).rs.active_applications(), 1);
        o.start_reservation_expiry(SimDuration::from_secs(1), SimDuration::from_secs(2));
        o.advance(SimDuration::from_secs(5));
        assert_eq!(o.node(remote).rs.active_applications(), 0, "sweep reclaims");
    }

    #[test]
    fn brokering_scratch_reaches_a_high_water_mark_and_stays_there() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let submitter = ids[0];
        let mut outcomes = Vec::new();
        let round = |o: &mut Overlay, outcomes: &mut Vec<(PeerId, RsOutcome)>| {
            let key = o.generate_key();
            for &to in &ids[1..] {
                o.rs_send(submitter, to, key, 1);
            }
            o.rs_collect_into(outcomes);
            for &(to, _) in outcomes.iter() {
                o.rs_cancel(submitter, to, key);
            }
            // Let the round's cancelled-timeout tombstones reach their
            // nominal firing time and be collected, as a real sweep's
            // inter-arrival gaps do; the event store can then recycle the
            // slots instead of growing past its high-water mark.
            o.advance(o.params().rs_timeout);
        };
        // Warm-up rounds grow every buffer to its high-water mark ...
        for _ in 0..3 {
            round(&mut o, &mut outcomes);
        }
        let scratch_cap = o.rs_scratch_capacity();
        let events_cap = o.events_capacity();
        let outcomes_cap = outcomes.capacity();
        // ... after which a steady-state brokering loop reallocates nothing.
        for _ in 0..20 {
            round(&mut o, &mut outcomes);
        }
        assert_eq!(o.rs_scratch_capacity(), scratch_cap);
        assert_eq!(o.events_capacity(), events_cap);
        assert_eq!(outcomes.capacity(), outcomes_cap);
    }

    #[test]
    fn start_requires_matching_key() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[2]);
        let key = o.generate_key();
        let wrong = o.generate_key();
        assert!(matches!(
            o.rs_request(from, to, key, 2),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
        let ranks = vec![RankAssignment {
            rank: 0,
            replica: 0,
        }];
        let (reply, _) = o.mpd_start(from, to, wrong, &ranks, "prog");
        assert_eq!(reply, StartReply::KeyMismatch);
        let (reply, _) = o.mpd_start(from, to, key, &ranks, "prog");
        assert_eq!(reply, StartReply::Started);
        assert!(o.complete_job(to, key));
        assert!(!o.complete_job(to, key));
    }

    #[test]
    fn churn_schedule_is_applied_on_advance() {
        let mut o = overlay();
        o.boot_all();
        let victim = o.peer_ids()[1];
        let mut schedule = crate::churn::ChurnSchedule::new();
        schedule.crash(victim, SimTime::from_secs(10));
        schedule.recover(victim, SimTime::from_secs(30));
        o.schedule_churn(schedule.finish());
        o.advance(SimDuration::from_secs(5));
        assert!(o.node(victim).is_alive());
        o.advance(SimDuration::from_secs(10));
        assert!(!o.node(victim).is_alive());
        o.advance(SimDuration::from_secs(20));
        assert!(o.node(victim).is_alive());
        assert_eq!(o.now(), SimTime::from_secs(35));
        assert!(o.tracer().count(TraceCategory::Fault) >= 2);
    }

    #[test]
    fn heartbeats_run_as_scheduled_events() {
        let mut o = overlay();
        o.boot_all();
        let victim = o.peer_ids()[0];
        o.start_heartbeats();
        o.kill_peer(victim);
        // Three 120 s heartbeat periods pass the 360 s expiry: the periodic
        // rounds fire on the timeline without any manual heartbeat_round
        // call, and the silent peer is expired by the supernode.
        o.advance(SimDuration::from_secs(500));
        assert!(!o.supernode().knows(victim));
        assert_eq!(o.supernode().len(), 5);
        assert!(o.events_processed() >= 4);
        // The next round is always armed while heartbeats run.
        assert!(o.events_pending() >= 1);
        assert!(o.stop_heartbeats());
        assert!(!o.stop_heartbeats());
        assert_eq!(o.events_pending(), 0);
    }

    #[test]
    fn periodic_cache_refresh_is_a_scheduled_event() {
        let mut o = overlay();
        o.boot_all();
        let p = o.peer_ids()[0];
        assert_eq!(o.node(p).cache.len(), 0);
        o.start_cache_refresh(p, SimDuration::from_secs(60));
        o.advance(SimDuration::from_secs(59));
        assert_eq!(o.node(p).cache.len(), 0, "not due yet");
        o.advance(SimDuration::from_secs(2));
        assert_eq!(o.node(p).cache.len(), 5, "first refresh fired");
        assert!(o.stop_cache_refresh(p));
        assert!(!o.stop_cache_refresh(p));
        let processed = o.events_processed();
        o.advance(SimDuration::from_secs(600));
        assert_eq!(o.events_processed(), processed, "refresh was cancelled");
    }

    #[test]
    fn reservation_expiry_sweep_reclaims_pending_slots() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[1]);
        let k = o.generate_key();
        assert!(matches!(
            o.rs_request(from, to, k, 2),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
        assert_eq!(o.node(to).rs.active_applications(), 1);
        o.start_reservation_expiry(SimDuration::from_secs(60), SimDuration::from_secs(30));
        // The submitter never starts nor cancels: the sweep reclaims the
        // promised gatekeeper slot once the TTL passes.
        o.advance(SimDuration::from_secs(100));
        assert_eq!(o.node(to).rs.active_applications(), 0);
        assert!(o.stop_reservation_expiry());
    }

    #[test]
    fn scheduled_completions_free_hosts_on_the_timeline() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[2]);
        let key = o.generate_key();
        assert!(matches!(
            o.rs_request(from, to, key, 1),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
        let ranks = vec![RankAssignment {
            rank: 0,
            replica: 0,
        }];
        let (reply, _) = o.mpd_start(from, to, key, &ranks, "prog");
        assert_eq!(reply, StartReply::Started);
        let done_at = o.now() + SimDuration::from_secs(30);
        let ev = o.schedule_completion(done_at, key, vec![to]);
        o.advance(SimDuration::from_secs(29));
        assert_eq!(o.node(to).rs.running_processes(), 1, "still running");
        o.advance(SimDuration::from_secs(2));
        assert_eq!(o.node(to).rs.running_processes(), 0, "completion fired");
        // Cancelling after the fact is a stale-key no-op.
        assert!(o.cancel_completion(ev).is_none());
    }

    #[test]
    fn cancelled_completion_returns_the_held_peers() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let key = o.generate_key();
        let ev = o.schedule_completion(
            o.now() + SimDuration::from_secs(10),
            key,
            vec![ids[1], ids[2]],
        );
        let peers = o.cancel_completion(ev).expect("still pending");
        assert_eq!(peers, vec![ids[1], ids[2]]);
        let processed = o.events_processed();
        o.advance(SimDuration::from_secs(60));
        assert_eq!(o.events_processed(), processed);
    }

    #[test]
    fn heartbeats_keep_peers_registered_and_silence_expires_them() {
        let mut o = overlay();
        o.boot_all();
        let victim = o.peer_ids()[0];
        o.kill_peer(victim);
        // Advance past the supernode expiry and heartbeat.
        o.advance(SimDuration::from_secs(400));
        let dropped = o.heartbeat_round();
        assert_eq!(dropped, 1);
        assert!(!o.supernode().knows(victim));
        assert_eq!(o.supernode().len(), 5);
    }

    #[test]
    fn owner_deny_list_is_enforced_end_to_end() {
        let topo = small_topology();
        let mut o = OverlayBuilder::new(topo)
            .seed(3)
            .noise(NoiseModel::disabled())
            .peer_per_host_with_core_capacity()
            .build();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[1]);
        let from_addr = o.node(from).descriptor.address.clone();
        o.node_mut(to).config.deny(from_addr);
        let k = o.generate_key();
        match o.rs_request(from, to, k, 1) {
            RsOutcome::Reply { reply, .. } => assert_eq!(
                reply,
                ReservationReply::Nok(crate::messages::RefusalReason::RequesterDenied)
            ),
            RsOutcome::Timeout { .. } => panic!("unexpected timeout"),
        }
    }

    #[test]
    fn capacity_reflects_owner_config() {
        let topo = small_topology();
        let mut o = OverlayBuilder::new(topo.clone())
            .seed(9)
            .peer_per_host(|h| OwnerConfig::with_procs(h.cores as u32))
            .build();
        o.boot_all();
        let remote = o
            .peer_on_host(topo.host_by_name("r-0").unwrap().id)
            .unwrap();
        assert_eq!(o.node(remote).capacity_per_app(), 4);
        let local = o
            .peer_on_host(topo.host_by_name("l-0").unwrap().id)
            .unwrap();
        assert_eq!(o.node(local).capacity_per_app(), 2);
    }
}
