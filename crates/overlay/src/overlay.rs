//! The overlay simulation driver.
//!
//! [`Overlay`] owns the supernode, every peer's MPD/RS state, the network
//! and noise models, and a discrete-event simulation
//! ([`p2pmpi_simgrid::engine::TypedEngine`]) that carries the virtual clock.
//! It exposes exactly the interactions the paper's job-submission procedure
//! needs:
//!
//! * membership (register, alive signals, expiry),
//! * cache refresh from the supernode and latency probing,
//! * RS↔RS reservation brokering (with timeouts when a peer is dead),
//! * MPD start requests with key verification,
//! * fault injection (crash/recover, scheduled churn).
//!
//! # The event timeline
//!
//! All time-driven behaviour is *scheduled* on the engine rather than
//! applied inline: churn events, periodic heartbeat rounds
//! ([`Overlay::start_heartbeats`]), periodic cache refreshes
//! ([`Overlay::start_cache_refresh`]), periodic reservation-expiry sweeps
//! ([`Overlay::start_reservation_expiry`]), job completions
//! ([`Overlay::schedule_completion`]) and — since the brokering step became
//! event-driven — every RS reservation request's reply and timeout all
//! interleave on one timeline, delivered in `(time, schedule-order)` order
//! by [`Overlay::run_until`].  The `stop_*` counterparts cancel the pending
//! event by its [`EventKey`], so re-arms and revocations never leave ghost
//! events behind.  [`Overlay::advance`] survives as a thin shim over
//! `run_until` for callers that only want to move the clock.
//!
//! Sweep-scale simulations (thousands of pending completions) should build
//! the overlay with [`crate::boot::OverlayBuilder::queue_kind`] set to
//! [`QueueKind::Calendar`] — or [`QueueKind::Ladder`] when the timeline is
//! dominated by timeout churn (see the `p2pmpi_simgrid::event` docs for the
//! selection guide).
//!
//! # The timeout-event contract
//!
//! [`Overlay::rs_send`] puts one outbound reservation request on the
//! timeline as up to *two* scheduled events: an armed timeout at
//! `now + rs_timeout`, and — when the remote peer is alive — the reply's
//! delivery at `now + rtt`.  Whichever fires first resolves the request and
//! cancels its counterpart; [`RsOutcome::Timeout`] is therefore an observed
//! timeline event, not an analytically charged constant.  The race needs no
//! guard: event keys are generation-stamped, so the loser's cancel of an
//! already-fired (or already-cancelled) counterpart is a harmless stale-key
//! no-op, and the FIFO tie-break resolves the degenerate `rtt == rs_timeout`
//! instant in favour of the timeout armed first — the submitter gives up at
//! its deadline.  The remote RS's *decision* is computed at send time (the
//! grant/refusal mutates remote state immediately); only its delivery and
//! the timeout race are simulated.  A reservation granted by a peer whose
//! reply loses the race is *released eagerly*: the timeout handler counts it
//! in [`Overlay::leaked_grants`] and schedules an immediate grant-release
//! message back to the granter, so the slot is reclaimed one one-way
//! transfer later instead of lingering until the periodic expiry sweep
//! ([`Overlay::start_reservation_expiry`]).  The sweep stays as the backstop
//! for submitters that crash mid-procedure — the failure mode it exists for
//! in the paper.  [`Overlay::leaked_grant_hwm`] tracks how many released
//! grants were simultaneously outstanding; on a standard no-fault day both
//! counters stay 0.
//!
//! # The start-request timeline (steps 6–8)
//!
//! [`Overlay::start_send`] puts an MPD start request on the timeline the
//! same way: the request *arrives* at the remote MPD one one-way transfer
//! after send, and only then — at arrival time, against the remote's state
//! *at that instant* — is the start decision made, so a peer that crashes
//! (or recovers) while the request is in flight interleaves honestly with
//! it.  An alive remote's reply races the submitter's deadline at
//! `sent + rs_timeout`; a remote that is dead at arrival leaves only the
//! deadline timeout to fire.  When the remote actually started the ranks
//! but the reply would arrive past the deadline (degraded links), the
//! submitter has already given up: the started reservation is counted as a
//! leaked grant and an eager release reclaims it, since the expiry sweep
//! never touches `Running` reservations.  [`Overlay::mpd_start`] survives as
//! the inline one-request wrapper (send, run the timeline until resolution,
//! return the outcome); batch rounds go through
//! [`Overlay::start_collect_into`], which drains outcomes in send order.
//!
//! # Fault injection
//!
//! Beyond per-peer churn, the overlay can replay correlated adversity on
//! the same timeline: [`Overlay::schedule_supernode_outage`] crashes the
//! supernode (its volatile registry is lost; cache refreshes go unanswered
//! and peers keep brokering from their stale [`crate::cache::CachedList`] —
//! degraded mode, not a halt) and recovers it later (the heartbeat round
//! re-registers every alive peer the supernode no longer knows — the resync
//! path); [`Overlay::schedule_link_degradation`] multiplies a site's
//! latency in both the messaging and probing network models for a window
//! (in-flight events keep the cost computed when they were scheduled);
//! [`Overlay::set_fail_jobs_on_crash`] makes a peer crash kill the running
//! jobs it participates in — their completions are mass-revoked via
//! [`p2pmpi_simgrid::engine::TypedEngine::cancel_batch`] and every
//! participant's gatekeeper slot is freed, with [`Overlay::jobs_killed`]
//! counting the casualties.
//!
//! **The alive-peer fast path.**  When the remote peer is alive and its
//! reply is scheduled *strictly before* the timeout window (`rtt <
//! rs_timeout` — the warm common case), the timeout event can never win the
//! race: it would be armed only to be cancelled by the reply, its tombstone
//! carried by the queue until firing time.  [`Overlay::rs_send`] therefore
//! skips arming it entirely.  This is outcome-invariant — the skipped event
//! never fires on the armed path either, and removing one never-delivered
//! ticket cannot reorder the survivors' FIFO ties — and it halves the
//! scheduling work of the warm brokering path (`perf_report` records the
//! reclaimed time per warm job; `crates/bench/tests/day_sweep.rs` pins
//! bit-identical sweep outcomes fast-path on vs off, churn included).
//! Dead peers and slow replies (`rtt >= rs_timeout`) always arm — the
//! timeout machinery is *kept* under churn, where it is load-bearing.
//! [`Overlay::set_rs_timeout_fast_path`] disables the fast path for
//! benchmarks that measure the armed machinery itself (the
//! `timeout_timeline` sections of `perf_report`).
//!
//! The pending-request bookkeeping lives in a reusable scratch vector on the
//! overlay: a steady-state brokering loop (send × booked, then
//! [`Overlay::rs_collect_into`]) allocates nothing once the high-water mark
//! is reached.
//!
//! The co-allocation procedure itself lives in the `p2pmpi-core` crate and
//! drives this type.

use crate::cache::CacheEntry;
use crate::churn::{ChurnEvent, ChurnKind, ChurnSchedule};
use crate::messages::{
    RankAssignment, ReservationKey, ReservationReply, ReservationRequest, StartReply,
};
use crate::mpd::MpdNode;
use crate::peer::{PeerId, PeerState};
use crate::ping::LatencyProber;
use crate::supernode::Supernode;
use p2pmpi_simgrid::engine::TypedEngine;
use p2pmpi_simgrid::event::{EventKey, QueueKind};
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use p2pmpi_simgrid::topology::{HostId, SiteId, Topology};
use p2pmpi_simgrid::trace::{TraceCategory, Tracer};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Tunable parameters of the overlay protocol simulation.
#[derive(Debug, Clone, Copy)]
pub struct OverlayParams {
    /// How long the submitter waits for an RS answer before marking the peer
    /// dead (step 5 of the procedure).
    pub rs_timeout: SimDuration,
    /// Number of probe rounds performed when bootstrapping a fresh cache.
    pub bootstrap_probe_rounds: usize,
    /// Period of the MPD alive signal to the supernode.
    pub heartbeat_period: SimDuration,
    /// Size in bytes of an RS reservation-request message.
    pub rs_message_bytes: u64,
    /// Size in bytes of an MPD start-request message (program name + ranks).
    pub start_message_bytes: u64,
}

impl Default for OverlayParams {
    fn default() -> Self {
        OverlayParams {
            rs_timeout: SimDuration::from_secs(2),
            bootstrap_probe_rounds: 3,
            heartbeat_period: SimDuration::from_secs(120),
            rs_message_bytes: 256,
            start_message_bytes: 2048,
        }
    }
}

/// Outcome of an RS→RS reservation request as seen by the submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsOutcome {
    /// The remote RS answered within the timeout.
    Reply {
        /// The OK/NOK answer.
        reply: ReservationReply,
        /// Round-trip time of the exchange.
        elapsed: SimDuration,
    },
    /// The remote peer never answered; it is to be marked dead.
    Timeout {
        /// Time spent waiting (the RS timeout).
        elapsed: SimDuration,
    },
}

impl RsOutcome {
    /// Time spent on this interaction.
    pub fn elapsed(&self) -> SimDuration {
        match self {
            RsOutcome::Reply { elapsed, .. } | RsOutcome::Timeout { elapsed } => *elapsed,
        }
    }
}

/// An event on the overlay's simulation timeline.
///
/// These are the payloads of the overlay's [`TypedEngine`]; they stay
/// private because scheduling happens through the typed methods
/// (`schedule_churn`, `start_heartbeats`, `schedule_completion`, ...),
/// which also maintain the re-arm bookkeeping.
#[derive(Debug)]
enum OverlayEvent {
    /// A scheduled crash or recovery.
    Churn(ChurnEvent),
    /// One round of alive signals plus the supernode expiry sweep;
    /// re-arms itself every `heartbeat_period` while enabled.
    HeartbeatRound,
    /// A peer pulls the supernode host list into its cache; re-arms itself
    /// at the peer's configured refresh period.
    CacheRefresh(PeerId),
    /// Every RS drops pending reservations older than the configured TTL;
    /// re-arms itself at the configured sweep period.
    ReservationSweep,
    /// A running job finishes: free the gatekeeper slot on every host it
    /// occupied.
    JobComplete {
        key: ReservationKey,
        peers: Vec<PeerId>,
    },
    /// An in-flight RS reply reaches the submitter; cancels the armed
    /// timeout of the same request (index into the pending-request scratch).
    RsReply(u32),
    /// An armed reservation timeout fires: the peer never answered within
    /// `rs_timeout`; cancels the pending reply delivery, if any.
    RsTimeout(u32),
    /// An eager grant-release message reaches a granter whose reply lost
    /// the race: the leaked reservation is cancelled on arrival.
    GrantRelease { to: PeerId, key: ReservationKey },
    /// An MPD start request reaches the remote MPD (index into the
    /// pending-start scratch); the start decision is made here, at arrival
    /// time, so mid-flight crashes interleave honestly.
    StartArrive(u32),
    /// The remote MPD's start reply reaches the submitter.
    StartReplyDelivery(u32),
    /// The submitter gives up on a start request at its deadline.
    StartTimeout(u32),
    /// The supernode crashes: its volatile registry is lost and refreshes
    /// go unanswered until recovery.
    SupernodeDown,
    /// The supernode recovers (empty registry; peers re-register via the
    /// heartbeat resync path).
    SupernodeUp,
    /// A site's latency multiplier changes (1.0 restores nominal links).
    LinkDegrade { site: SiteId, factor: f64 },
}

/// One in-flight RS→RS reservation request: the two scheduled events racing
/// to resolve it, and the outcome once one of them fired.  Slots live in a
/// reusable scratch vector on [`Overlay`] and are recycled wholesale by
/// [`Overlay::rs_collect_into`].
#[derive(Debug)]
struct RsPending {
    from: PeerId,
    to: PeerId,
    /// Reservation key of the round, kept so a timed-out grant can be
    /// released eagerly on the granter.
    key: ReservationKey,
    /// The remote RS's decision, computed at send time (`None` when the
    /// peer was dead and no reply will ever be delivered).
    reply: Option<ReservationReply>,
    /// Round-trip time of the exchange (meaningful when `reply` is some).
    rtt: SimDuration,
    /// The armed timeout event (`None` on the alive-peer fast path, where
    /// the reply is scheduled strictly before the timeout window and the
    /// race is already decided).
    timeout_key: Option<EventKey>,
    /// The scheduled reply delivery, when the peer was alive.
    reply_key: Option<EventKey>,
    /// Filled by whichever event fires first.
    outcome: Option<RsOutcome>,
}

/// One in-flight MPD start request (steps 6–8).  Unlike [`RsPending`], the
/// remote decision is *not* precomputed: it happens when the request's
/// arrival event fires, against the remote's state at that instant.  Slots
/// live in a reusable scratch vector drained in send order by
/// [`Overlay::start_collect_into`].
#[derive(Debug)]
struct StartPending {
    from: PeerId,
    to: PeerId,
    key: ReservationKey,
    /// Number of ranks the request asks the remote to start.
    ranks: u32,
    sent_at: SimTime,
    /// The submitter gives up at `sent_at + rs_timeout`.
    deadline: SimTime,
    /// The remote MPD's decision, made when the arrival event fired
    /// (`None` until then, and forever if the remote was dead at arrival).
    decision: Option<StartReply>,
    /// Filled by whichever of the reply delivery / deadline fires first.
    /// Unlike the RS race there is nothing to cancel: the arrival handler
    /// schedules exactly one resolver event per request.
    outcome: Option<(StartReply, SimDuration)>,
}

/// The simulated P2P-MPI overlay.
pub struct Overlay {
    topology: Arc<Topology>,
    network: NetworkModel,
    prober: LatencyProber,
    supernode: Supernode,
    supernode_host: HostId,
    nodes: Vec<MpdNode>,
    host_to_peer: HashMap<HostId, PeerId>,
    sim: TypedEngine<OverlayEvent>,
    rng: StdRng,
    tracer: Tracer,
    params: OverlayParams,
    /// Pending heartbeat event while periodic heartbeats are enabled.
    heartbeat: Option<EventKey>,
    /// Per-peer periodic cache refresh: period and the pending event.
    cache_refresh: HashMap<PeerId, (SimDuration, EventKey)>,
    /// Periodic reservation-expiry sweep: (ttl, period) and the pending
    /// event.
    resv_expiry: Option<(SimDuration, SimDuration, EventKey)>,
    /// Reusable probe-round buffers, so steady-state probing allocates
    /// nothing (cleared, never shrunk, between rounds).
    scratch_measurements: Vec<(PeerId, SimDuration)>,
    scratch_failures: Vec<PeerId>,
    /// In-flight (and resolved-but-undrained) RS reservation requests:
    /// cleared, never shrunk, by [`Overlay::rs_collect_into`], so a
    /// steady-state brokering loop performs no per-request allocation.
    rs_pending: Vec<RsPending>,
    /// How many `rs_pending` slots still await their reply/timeout event.
    rs_inflight: usize,
    /// Skip arming timeouts whose reply is already scheduled to win the
    /// race (see the module docs; benchmarks of the armed machinery turn
    /// this off).
    rs_timeout_fast_path: bool,
    /// In-flight (and resolved-but-undrained) MPD start requests; same
    /// scratch discipline as `rs_pending`.
    start_pending: Vec<StartPending>,
    /// How many `start_pending` slots still await their resolver event.
    start_inflight: usize,
    /// Whether the supernode is up (fault injection; degraded-mode
    /// brokering while down).
    supernode_up: bool,
    /// Grants whose reply lost the race to its timeout — counted when the
    /// timeout fires, released eagerly right after.  Cumulative.
    leaked_grants: u64,
    /// Leaked grants whose eager release has not arrived yet.
    leaked_outstanding: u64,
    /// High-water mark of `leaked_outstanding` (the verdict metric).
    leaked_hwm: u64,
    /// Running jobs killed because a participant crashed (only counted
    /// while `fail_jobs_on_crash` is on).  Cumulative.
    jobs_killed: u64,
    /// When on, a peer crash kills the running jobs it participates in
    /// (completions mass-revoked, slots freed on every participant).  Off
    /// by default: flapping-churn baselines model fail-over, not job loss.
    fail_jobs_on_crash: bool,
    /// Scheduled completions by reservation key, tracked only while
    /// `fail_jobs_on_crash` is on so crashes can find their victims.
    running_jobs: HashMap<ReservationKey, (EventKey, Vec<PeerId>)>,
}

/// Returns `(&from, &mut to)` for two *distinct* peers of the node table.
fn nodes_from_to(nodes: &mut [MpdNode], from: usize, to: usize) -> (&MpdNode, &mut MpdNode) {
    debug_assert_ne!(from, to, "caller must special-case self requests");
    if from < to {
        let (left, right) = nodes.split_at_mut(to);
        (&left[from], &mut right[0])
    } else {
        let (left, right) = nodes.split_at_mut(from);
        (&right[0], &mut left[to])
    }
}

impl Overlay {
    /// Assembles an overlay; normally called through
    /// [`crate::boot::OverlayBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        topology: Arc<Topology>,
        network: NetworkModel,
        prober: LatencyProber,
        supernode_host: HostId,
        nodes: Vec<MpdNode>,
        rng: StdRng,
        tracer: Tracer,
        params: OverlayParams,
        queue_kind: QueueKind,
    ) -> Self {
        let host_to_peer = nodes
            .iter()
            .map(|n| (n.descriptor.host, n.descriptor.id))
            .collect();
        Overlay {
            topology,
            network,
            prober,
            supernode: Supernode::default(),
            supernode_host,
            nodes,
            host_to_peer,
            sim: TypedEngine::with_queue_kind(queue_kind),
            rng,
            tracer,
            params,
            heartbeat: None,
            cache_refresh: HashMap::new(),
            resv_expiry: None,
            scratch_measurements: Vec::new(),
            scratch_failures: Vec::new(),
            rs_pending: Vec::new(),
            rs_inflight: 0,
            rs_timeout_fast_path: true,
            start_pending: Vec::new(),
            start_inflight: 0,
            supernode_up: true,
            leaked_grants: 0,
            leaked_outstanding: 0,
            leaked_hwm: 0,
            jobs_killed: 0,
            fail_jobs_on_crash: false,
            running_jobs: HashMap::new(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The topology the overlay runs on.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The network cost model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The latency prober (network + noise).
    pub fn prober(&self) -> &LatencyProber {
        &self.prober
    }

    /// The trace recorder.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Protocol parameters.
    pub fn params(&self) -> OverlayParams {
        self.params
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The priority structure backing the event timeline.
    pub fn queue_kind(&self) -> QueueKind {
        self.sim.queue_kind()
    }

    /// Number of timeline events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.processed()
    }

    /// Number of timeline events still pending.
    pub fn events_pending(&self) -> usize {
        self.sim.pending()
    }

    /// Number of timeline tickets still queued, *including* tombstones of
    /// cancelled events awaiting collection — the dead weight a
    /// cancellation-heavy workload (per-reservation timeouts) carries.
    pub fn events_queued(&self) -> usize {
        self.sim.queued()
    }

    /// Payload-slot capacity of the timeline (its high-water mark of
    /// simultaneously pending events; diagnostics for allocation-free
    /// steady-state checks).
    pub fn events_capacity(&self) -> usize {
        self.sim.events_capacity()
    }

    /// Number of peers (alive or dead).
    pub fn peer_count(&self) -> usize {
        self.nodes.len()
    }

    /// All peer ids.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.nodes.iter().map(|n| n.descriptor.id).collect()
    }

    /// Immutable access to a peer's MPD state.
    pub fn node(&self, peer: PeerId) -> &MpdNode {
        &self.nodes[peer.0]
    }

    /// Mutable access to a peer's MPD state.
    pub fn node_mut(&mut self, peer: PeerId) -> &mut MpdNode {
        &mut self.nodes[peer.0]
    }

    /// The peer whose MPD runs on `host`, if any.
    pub fn peer_on_host(&self, host: HostId) -> Option<PeerId> {
        self.host_to_peer.get(&host).copied()
    }

    /// The host a peer runs on.
    pub fn host_of(&self, peer: PeerId) -> HostId {
        self.nodes[peer.0].descriptor.host
    }

    /// The supernode registry (read-only).
    pub fn supernode(&self) -> &Supernode {
        &self.supernode
    }

    /// Generates a fresh unique reservation key (step 3 of the procedure).
    pub fn generate_key(&mut self) -> ReservationKey {
        ReservationKey(self.rng.gen())
    }

    // ------------------------------------------------------------------
    // The event timeline
    // ------------------------------------------------------------------

    /// Runs the simulation until `deadline`: every scheduled event due at or
    /// before it — churn, heartbeat rounds, cache refreshes, reservation
    /// sweeps, job completions — fires in `(time, schedule-order)` order,
    /// and the clock ends at `deadline` (or later only if an event fired
    /// exactly there).  Returns the number of events delivered.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut delivered = 0;
        while let Some(ev) = self.sim.pop_due(deadline) {
            self.dispatch(ev.payload);
            delivered += 1;
        }
        self.sim.advance_clock_to(deadline);
        delivered
    }

    /// Advances the virtual clock by `d`, delivering any scheduled events
    /// that become due.  Compatibility shim over [`Overlay::run_until`].
    pub fn advance(&mut self, d: SimDuration) {
        let target = self.sim.now() + d;
        self.run_until(target);
    }

    /// [`Overlay::run_until`] plus the shard-barrier report: returns the
    /// number of events delivered and the timeline's *safe horizon* — the
    /// firing time of the next pending event, a lower bound on when this
    /// overlay's state can next change without outside input (`None` if the
    /// timeline drained dry).  A conservatively synchronised parallel
    /// driver collects this from every shard at a barrier; see the
    /// `p2pmpi_simgrid::event` module docs' *Parallel shards* section for
    /// the contract.
    pub fn run_until_horizon(&mut self, deadline: SimTime) -> (u64, Option<SimTime>) {
        let delivered = self.run_until(deadline);
        (delivered, self.sim.safe_horizon())
    }

    /// Eagerly compacts cancelled events' tombstoned tickets out of the
    /// timeline, recycling their payload slots (the dead weight
    /// [`Overlay::events_queued`]` - `[`Overlay::events_pending`] reports).
    /// Outcome-invariant; returns how many dead tickets were collected.
    pub fn reap_events(&mut self) -> usize {
        self.sim.reap_events()
    }

    /// Delivers one due timeline event.
    fn dispatch(&mut self, event: OverlayEvent) {
        match event {
            OverlayEvent::Churn(ev) => match ev.kind {
                ChurnKind::Crash => self.kill_peer(ev.peer),
                ChurnKind::Recover => self.revive_peer(ev.peer),
            },
            OverlayEvent::HeartbeatRound => {
                self.heartbeat_round();
                if self.heartbeat.is_some() {
                    // Still enabled: re-arm the next round.
                    let key = self
                        .sim
                        .schedule_in(self.params.heartbeat_period, OverlayEvent::HeartbeatRound);
                    self.heartbeat = Some(key);
                }
            }
            OverlayEvent::CacheRefresh(peer) => {
                if let Some(&(period, _)) = self.cache_refresh.get(&peer) {
                    // A dead MPD refreshes nothing, but the schedule stays
                    // armed so it resumes once the peer recovers.
                    if self.nodes[peer.0].is_alive() {
                        self.refresh_cache(peer);
                    }
                    let key = self
                        .sim
                        .schedule_in(period, OverlayEvent::CacheRefresh(peer));
                    self.cache_refresh.insert(peer, (period, key));
                }
            }
            OverlayEvent::ReservationSweep => {
                if let Some((ttl, period, _)) = self.resv_expiry {
                    let now = self.sim.now();
                    let mut dropped = 0;
                    for node in &mut self.nodes {
                        dropped += node.rs.expire_pending(now, ttl);
                    }
                    if dropped > 0 {
                        self.tracer.record(now, TraceCategory::Reservation, || {
                            format!("expired {dropped} stale pending reservation(s)")
                        });
                    }
                    let key = self.sim.schedule_in(period, OverlayEvent::ReservationSweep);
                    self.resv_expiry = Some((ttl, period, key));
                }
            }
            OverlayEvent::JobComplete { key, peers } => {
                if self.fail_jobs_on_crash {
                    self.running_jobs.remove(&key);
                }
                let mut freed = 0;
                for peer in peers {
                    if self.nodes[peer.0].rs.complete(key) {
                        freed += 1;
                    }
                }
                self.tracer
                    .record(self.sim.now(), TraceCategory::Runtime, || {
                        format!("job completed, freed {freed} host(s)")
                    });
            }
            OverlayEvent::RsReply(idx) => {
                let slot = &mut self.rs_pending[idx as usize];
                debug_assert!(slot.outcome.is_none(), "RS request resolved twice");
                let reply = slot.reply.expect("reply delivery for a dead-peer request");
                slot.outcome = Some(RsOutcome::Reply {
                    reply,
                    elapsed: slot.rtt,
                });
                let (from, to, timeout_key) = (slot.from, slot.to, slot.timeout_key.take());
                // The reply won the race: disarm the timeout, if one was
                // armed at all (its ticket is tombstoned and compacted by
                // the queue, never delivered).
                if let Some(timeout_key) = timeout_key {
                    self.sim.cancel(timeout_key);
                }
                self.rs_inflight -= 1;
                self.tracer
                    .record(self.sim.now(), TraceCategory::Reservation, || {
                        format!("{from} -> {to}: {reply:?}")
                    });
            }
            OverlayEvent::RsTimeout(idx) => {
                let slot = &mut self.rs_pending[idx as usize];
                debug_assert!(slot.outcome.is_none(), "RS request resolved twice");
                slot.outcome = Some(RsOutcome::Timeout {
                    elapsed: self.params.rs_timeout,
                });
                let (from, to, key) = (slot.from, slot.to, slot.key);
                // A grant whose reply is about to be cancelled leaked on the
                // granter; the submitter releases it eagerly below.
                let leaked = matches!(slot.reply, Some(ReservationReply::Ok { .. }));
                // Cancel the in-flight reply, if one was ever scheduled (a
                // stale key here is harmless; see the module docs).
                if let Some(reply_key) = slot.reply_key.take() {
                    self.sim.cancel(reply_key);
                }
                self.rs_inflight -= 1;
                self.tracer
                    .record(self.sim.now(), TraceCategory::Reservation, || {
                        format!("{from} -> {to}: reservation timed out (peer dead)")
                    });
                if leaked {
                    self.release_leaked_grant(from, to, key);
                }
            }
            OverlayEvent::GrantRelease { to, key } => {
                self.leaked_outstanding = self.leaked_outstanding.saturating_sub(1);
                if self.nodes[to.0].rs.cancel(key) {
                    self.tracer
                        .record(self.sim.now(), TraceCategory::Reservation, || {
                            format!("{to}: leaked grant {key} released eagerly")
                        });
                }
            }
            OverlayEvent::StartArrive(idx) => self.start_arrive(idx),
            OverlayEvent::StartReplyDelivery(idx) => {
                let now = self.sim.now();
                let slot = &mut self.start_pending[idx as usize];
                debug_assert!(slot.outcome.is_none(), "start request resolved twice");
                let reply = slot.decision.expect("reply delivery without a decision");
                slot.outcome = Some((reply, now.saturating_since(slot.sent_at)));
                self.start_inflight -= 1;
            }
            OverlayEvent::StartTimeout(idx) => {
                let slot = &mut self.start_pending[idx as usize];
                debug_assert!(slot.outcome.is_none(), "start request resolved twice");
                slot.outcome = Some((StartReply::Timeout, self.params.rs_timeout));
                let (from, to) = (slot.from, slot.to);
                self.start_inflight -= 1;
                self.tracer
                    .record(self.sim.now(), TraceCategory::Runtime, || {
                        format!("{from} -> {to}: start request timed out")
                    });
            }
            OverlayEvent::SupernodeDown => self.crash_supernode(),
            OverlayEvent::SupernodeUp => self.recover_supernode(),
            OverlayEvent::LinkDegrade { site, factor } => {
                self.set_site_latency_factor(site, factor);
            }
        }
    }

    /// Counts a grant whose reply lost the race and schedules its eager
    /// release: one one-way control message from the submitter back to the
    /// granter.  (The remote decision is known at this end of the
    /// simulation, so the release is only put on the timeline when there
    /// actually is a grant to reclaim — a real submitter would fire the
    /// cancel blindly, with the same outcome.)
    fn release_leaked_grant(&mut self, from: PeerId, to: PeerId, key: ReservationKey) {
        self.leaked_grants += 1;
        self.leaked_outstanding += 1;
        self.leaked_hwm = self.leaked_hwm.max(self.leaked_outstanding);
        let src = self.nodes[from.0].descriptor.host;
        let dst = self.nodes[to.0].descriptor.host;
        let delay = self.network.transfer_time(src, dst, 64);
        self.sim
            .schedule_in(delay, OverlayEvent::GrantRelease { to, key });
    }

    /// Delivers a start request at the remote MPD: the decision happens
    /// here, against the remote's state *now*, and exactly one resolver
    /// event (reply delivery or deadline timeout) is scheduled.
    fn start_arrive(&mut self, idx: u32) {
        let now = self.sim.now();
        let slot = &self.start_pending[idx as usize];
        let (from, to, key, ranks, deadline) =
            (slot.from, slot.to, slot.key, slot.ranks, slot.deadline);
        let gave_up = slot.outcome.is_some();
        if !self.nodes[to.0].is_alive() {
            // Nobody answers.  If the submitter has not already given up
            // (pre-armed timeout on extreme links), arm its deadline now.
            if !gave_up {
                self.sim
                    .schedule_at(deadline, OverlayEvent::StartTimeout(idx));
            }
            return;
        }
        // The remote MPD is alive: verify the key and start the ranks.
        let node = &mut self.nodes[to.0];
        let decision = if !node.rs.verify_key(key) {
            StartReply::KeyMismatch
        } else {
            match node.rs.start(key, ranks, &node.config) {
                Ok(()) => StartReply::Started,
                Err(_) => StartReply::KeyMismatch,
            }
        };
        if decision == StartReply::Started {
            self.tracer.record(now, TraceCategory::Runtime, || {
                format!("{to} started {ranks} process(es)")
            });
        }
        let src = self.nodes[from.0].descriptor.host;
        let dst = self.nodes[to.0].descriptor.host;
        let reply_at = now + self.network.transfer_time(dst, src, 64);
        if !gave_up && reply_at < deadline {
            let slot = &mut self.start_pending[idx as usize];
            slot.decision = Some(decision);
            self.sim
                .schedule_at(reply_at, OverlayEvent::StartReplyDelivery(idx));
        } else {
            // The reply cannot beat the deadline (or the submitter already
            // gave up): the submitter will observe a timeout.  A start that
            // actually happened is abandoned — the expiry sweep never
            // touches `Running`, so it is reclaimed as a leaked grant.
            if !gave_up {
                self.sim
                    .schedule_at(deadline, OverlayEvent::StartTimeout(idx));
            }
            if decision == StartReply::Started {
                self.release_leaked_grant(from, to, key);
            }
        }
    }

    /// Schedules a churn schedule onto the timeline (events must not be in
    /// the past).  Repeated calls accumulate: each call adds its events to
    /// the timeline alongside whatever was already scheduled.
    pub fn schedule_churn(&mut self, events: Vec<ChurnEvent>) {
        for ev in events {
            assert!(
                ev.time >= self.sim.now(),
                "churn events must be in the future"
            );
            self.sim.schedule_at(ev.time, OverlayEvent::Churn(ev));
        }
    }

    /// Starts periodic heartbeat rounds ([`Overlay::heartbeat_round`]) every
    /// [`OverlayParams::heartbeat_period`], first round one period from now.
    /// No-op if already running.
    pub fn start_heartbeats(&mut self) {
        if self.heartbeat.is_none() {
            let key = self
                .sim
                .schedule_in(self.params.heartbeat_period, OverlayEvent::HeartbeatRound);
            self.heartbeat = Some(key);
        }
    }

    /// Stops periodic heartbeats, cancelling the pending round.  Returns
    /// `true` if heartbeats were running.
    pub fn stop_heartbeats(&mut self) -> bool {
        match self.heartbeat.take() {
            Some(key) => {
                self.sim.cancel(key);
                true
            }
            None => false,
        }
    }

    /// Starts a periodic supernode cache refresh for `peer`, first refresh
    /// one period from now.  Re-arming an already-scheduled peer replaces
    /// its period (the pending event is cancelled and rescheduled).
    pub fn start_cache_refresh(&mut self, peer: PeerId, period: SimDuration) {
        assert!(!period.is_zero(), "cache refresh needs a non-zero period");
        let key = self
            .sim
            .schedule_in(period, OverlayEvent::CacheRefresh(peer));
        if let Some((_, old)) = self.cache_refresh.insert(peer, (period, key)) {
            self.sim.cancel(old);
        }
    }

    /// Stops the periodic cache refresh for `peer`, cancelling the pending
    /// event.  Returns `true` if one was scheduled.
    pub fn stop_cache_refresh(&mut self, peer: PeerId) -> bool {
        match self.cache_refresh.remove(&peer) {
            Some((_, key)) => {
                self.sim.cancel(key);
                true
            }
            None => false,
        }
    }

    /// Starts a periodic reservation-expiry sweep: every `period`, each RS
    /// drops pending (never running) reservations older than `ttl`.  This is
    /// what reclaims gatekeeper slots promised to submitters that crashed
    /// mid-procedure.  Re-arming replaces the previous configuration.
    pub fn start_reservation_expiry(&mut self, ttl: SimDuration, period: SimDuration) {
        assert!(!period.is_zero(), "expiry sweep needs a non-zero period");
        let key = self.sim.schedule_in(period, OverlayEvent::ReservationSweep);
        if let Some((_, _, old)) = self.resv_expiry.replace((ttl, period, key)) {
            self.sim.cancel(old);
        }
    }

    /// Stops the periodic reservation-expiry sweep.  Returns `true` if one
    /// was running.
    pub fn stop_reservation_expiry(&mut self) -> bool {
        match self.resv_expiry.take() {
            Some((_, _, key)) => {
                self.sim.cancel(key);
                true
            }
            None => false,
        }
    }

    /// Schedules the completion of a running job at absolute time `at`: the
    /// gatekeeper slot held under `key` on each of `peers` is freed when the
    /// event fires.  Returns the event's key so a caller that tears the job
    /// down early (e.g. on failure) can [`Overlay::cancel_completion`].
    pub fn schedule_completion(
        &mut self,
        at: SimTime,
        key: ReservationKey,
        peers: Vec<PeerId>,
    ) -> EventKey {
        // The running-job registry only exists for crash kills; when the
        // mode is off (the default) no peer list is ever cloned.
        let tracked = if self.fail_jobs_on_crash {
            Some(peers.clone())
        } else {
            None
        };
        let ev = self
            .sim
            .schedule_at(at, OverlayEvent::JobComplete { key, peers });
        if let Some(tracked) = tracked {
            self.running_jobs.insert(key, (ev, tracked));
        }
        ev
    }

    /// Schedules a batch of job completions in iteration order through the
    /// event queue's bulk splice, appending each completion's event key to
    /// `keys`.  Semantically identical to calling
    /// [`Overlay::schedule_completion`] per job — the batch occupies
    /// consecutive sequence numbers, so same-instant completions fire in
    /// batch order — but the payload store reserves once.  This is the
    /// scatter-back path of the sharded sweep driver: a barrier that
    /// brokered a cross-shard job splices the completion events of all its
    /// sub-allocations into each owning shard's timeline in one call.
    pub fn schedule_completion_batch(
        &mut self,
        jobs: impl IntoIterator<Item = (SimTime, ReservationKey, Vec<PeerId>)>,
        keys: &mut Vec<EventKey>,
    ) {
        let track = self.fail_jobs_on_crash;
        let mut tracked: Vec<(ReservationKey, Vec<PeerId>)> = Vec::new();
        let start = keys.len();
        self.sim.schedule_batch(
            jobs.into_iter().map(|(at, key, peers)| {
                if track {
                    tracked.push((key, peers.clone()));
                }
                (at, OverlayEvent::JobComplete { key, peers })
            }),
            keys,
        );
        for ((key, peers), ev) in tracked.into_iter().zip(&keys[start..]) {
            self.running_jobs.insert(key, (*ev, peers));
        }
    }

    /// Cancels a scheduled job completion (the hosts stay booked; the caller
    /// is expected to free them itself).  Returns the job's peers if the
    /// completion was still pending.
    ///
    /// # Panics
    ///
    /// Panics if `event` refers to a pending event that is *not* a job
    /// completion: the caller mixed up keys, and silently revoking a
    /// periodic behaviour (heartbeat, refresh, sweep) would corrupt the
    /// simulation — surfacing the bug beats limping on.
    pub fn cancel_completion(&mut self, event: EventKey) -> Option<Vec<PeerId>> {
        match self.sim.cancel(event) {
            Some(OverlayEvent::JobComplete { key, peers }) => {
                if self.fail_jobs_on_crash {
                    self.running_jobs.remove(&key);
                }
                Some(peers)
            }
            Some(other) => {
                panic!("cancel_completion called with a non-completion event: {other:?}")
            }
            None => None,
        }
    }

    /// Marks a peer dead immediately.  With
    /// [`Overlay::set_fail_jobs_on_crash`] on, every running job the peer
    /// participates in is killed: its completion event is mass-revoked and
    /// the gatekeeper slot is freed on every participant.
    pub fn kill_peer(&mut self, peer: PeerId) {
        self.nodes[peer.0].state = PeerState::Dead;
        self.tracer
            .record(self.sim.now(), TraceCategory::Fault, || {
                format!("{peer} crashed")
            });
        if self.fail_jobs_on_crash && !self.running_jobs.is_empty() {
            let doomed: Vec<EventKey> = self
                .running_jobs
                .values()
                .filter(|(_, peers)| peers.contains(&peer))
                .map(|&(ev, _)| ev)
                .collect();
            if doomed.is_empty() {
                return;
            }
            for event in self.sim.cancel_batch(doomed) {
                let OverlayEvent::JobComplete { key, peers } = event else {
                    unreachable!("running-job registry tracked a non-completion event");
                };
                self.running_jobs.remove(&key);
                for p in peers {
                    self.nodes[p.0].rs.complete(key);
                }
                self.jobs_killed += 1;
                self.tracer
                    .record(self.sim.now(), TraceCategory::Fault, || {
                        format!("{key} killed by crash of {peer}")
                    });
            }
        }
    }

    /// Brings a peer back and re-registers it with the supernode (unless
    /// the supernode is down, in which case the heartbeat resync re-adds
    /// the peer once it recovers).
    pub fn revive_peer(&mut self, peer: PeerId) {
        self.nodes[peer.0].state = PeerState::Alive;
        if self.supernode_up {
            let d = self.nodes[peer.0].descriptor.clone();
            self.supernode.register(d, self.sim.now());
        }
        self.tracer
            .record(self.sim.now(), TraceCategory::Fault, || {
                format!("{peer} recovered")
            });
    }

    /// Number of peers currently alive.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_alive()).count()
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Registers every alive peer with the supernode ("mpiboot" on all
    /// machines).
    pub fn boot_all(&mut self) {
        for node in &self.nodes {
            if node.is_alive() {
                self.supernode
                    .register(node.descriptor.clone(), self.sim.now());
            }
        }
        let registered = self.supernode.len();
        self.tracer
            .record(self.sim.now(), TraceCategory::Membership, || {
                format!("{registered} peers registered with supernode")
            });
    }

    /// One round of alive signals from every alive peer, followed by an
    /// expiry sweep at the supernode.  Returns the number of expired peers.
    ///
    /// This is also the recovery-resync path: a peer whose alive signal the
    /// supernode no longer recognises (expired, or the registry was lost in
    /// a supernode crash) re-registers on the spot, so the host list
    /// repopulates within one heartbeat period of a recovery.  While the
    /// supernode is down the round is a no-op — the signals go unanswered.
    pub fn heartbeat_round(&mut self) -> usize {
        if !self.supernode_up {
            return 0;
        }
        let now = self.sim.now();
        for node in &self.nodes {
            if node.is_alive() && !self.supernode.alive(node.descriptor.id, now) {
                self.supernode.register(node.descriptor.clone(), now);
            }
        }
        let dropped = self.supernode.expire_stale(self.sim.now());
        if dropped > 0 {
            self.tracer
                .record(self.sim.now(), TraceCategory::Membership, || {
                    format!("supernode expired {dropped} stale peers")
                });
        }
        dropped
    }

    // ------------------------------------------------------------------
    // Cache management and probing
    // ------------------------------------------------------------------

    /// The MPD of `peer` pulls the supernode host list into its cache
    /// (a "cached list update request", step 2).  Returns the number of new
    /// peers learned and the elapsed round-trip time.
    ///
    /// While the supernode is down (fault injection) the request goes
    /// unanswered: the MPD waits out its timeout, learns nothing, and keeps
    /// brokering from its stale [`crate::cache::CachedList`] — degraded-mode
    /// operation, not a halt.
    pub fn refresh_cache(&mut self, peer: PeerId) -> (usize, SimDuration) {
        if !self.supernode_up {
            self.tracer
                .record(self.sim.now(), TraceCategory::Membership, || {
                    format!("{peer} cache refresh unanswered (supernode down)")
                });
            return (0, self.params.rs_timeout);
        }
        let src = self.nodes[peer.0].descriptor.host;
        let elapsed = self.network.transfer_time(src, self.supernode_host, 128)
            + self.network.transfer_time(
                self.supernode_host,
                src,
                64 * self.supernode.len() as u64 + 64,
            );
        // Merge straight off the supernode's table: no intermediate Vec, and
        // descriptors are cloned only for peers new to this cache.
        let added = self.nodes[peer.0].cache.merge_refs(
            self.supernode
                .host_list_iter()
                .map(|e| &e.descriptor)
                .filter(|d| d.id != peer),
        );
        self.tracer
            .record(self.sim.now(), TraceCategory::Membership, || {
                format!("{peer} refreshed cache (+{added} peers)")
            });
        (added, elapsed)
    }

    /// One probe round: `peer` pings every cached peer once and updates its
    /// latency estimates.  Dead peers record a probe failure.  Returns the
    /// virtual time the round took (probes are sent concurrently, so this is
    /// the slowest individual probe).
    pub fn probe_round(&mut self, peer: PeerId) -> SimDuration {
        let src = self.nodes[peer.0].descriptor.host;
        let mut slowest = SimDuration::ZERO;
        // One pass over the cache, pushing into the reusable scratch buffers:
        // `nodes` is only read here, so probing borrows it alongside the
        // mutable rng/scratch fields without an intermediate target list.
        // The walk follows the latency index (ids only — the target host
        // comes from the node table, no per-entry map lookup), not the hash
        // map: probe noise comes from the shared rng, so the draw-to-peer
        // pairing must be deterministic for a seeded run to be reproducible.
        self.scratch_measurements.clear();
        self.scratch_failures.clear();
        for id in self.nodes[peer.0].cache.ranking_iter() {
            if self.nodes[id.0].is_alive() {
                let dst = self.nodes[id.0].descriptor.host;
                let rtt = self.prober.probe(src, dst, &mut self.rng);
                slowest = slowest.max(rtt);
                self.scratch_measurements.push((id, rtt));
            } else {
                slowest = slowest.max(self.params.rs_timeout);
                self.scratch_failures.push(id);
            }
        }
        let now = self.sim.now();
        let node = &mut self.nodes[peer.0];
        for &(id, rtt) in &self.scratch_measurements {
            node.cache.record_probe(id, rtt, now);
        }
        for &id in &self.scratch_failures {
            node.cache.record_probe_failure(id);
        }
        let cache_len = node.cache.len();
        self.tracer
            .record(self.sim.now(), TraceCategory::Probe, || {
                format!("{peer} probed its cache ({cache_len} entries)")
            });
        slowest
    }

    /// Boots `peer`'s view of the overlay: refresh the cache from the
    /// supernode and run the configured number of probe rounds.  Returns the
    /// elapsed virtual time.
    pub fn bootstrap_peer(&mut self, peer: PeerId) -> SimDuration {
        let (_, mut elapsed) = self.refresh_cache(peer);
        for _ in 0..self.params.bootstrap_probe_rounds {
            elapsed += self.probe_round(peer);
        }
        elapsed
    }

    /// The submitter's cached list sorted by ascending measured latency —
    /// the order the booking step walks.
    pub fn latency_ranking(&self, peer: PeerId) -> Vec<PeerId> {
        self.nodes[peer.0].cache.ranking()
    }

    /// Borrowing form of [`Overlay::latency_ranking`]: walks the cache's
    /// incremental latency index without sorting or allocating.  This is
    /// what the co-allocation booking step uses.
    pub fn ranking_iter(&self, peer: PeerId) -> impl Iterator<Item = PeerId> + '_ {
        self.nodes[peer.0].cache.ranking_iter()
    }

    /// Snapshot of the cached entries of `peer` sorted by latency.
    pub fn sorted_cache(&self, peer: PeerId) -> Vec<CacheEntry> {
        self.nodes[peer.0]
            .cache
            .sorted_by_latency()
            .into_iter()
            .cloned()
            .collect()
    }

    // ------------------------------------------------------------------
    // RS brokering and start requests
    // ------------------------------------------------------------------

    /// Sends an RS→RS reservation request from `from` to `to` onto the
    /// timeline (steps 3–4): an armed timeout event at `now + rs_timeout`
    /// races the reply's delivery at `now + rtt` (never scheduled when the
    /// peer is dead).  See the module docs for the timeout-event contract.
    ///
    /// This is the single hottest call of a job-submission sweep (once per
    /// booked host per job), so it is allocation-free in steady state: the
    /// request borrows the requester's address, the remote RS reads its
    /// owner's config in place, the pending-request slot reuses the scratch
    /// vector recycled by [`Overlay::rs_collect_into`], and both scheduled
    /// events recycle event-store slots.
    pub fn rs_send(&mut self, from: PeerId, to: PeerId, key: ReservationKey, total_processes: u32) {
        let idx = u32::try_from(self.rs_pending.len()).expect("too many in-flight RS requests");
        let (reply, rtt, reply_key, timeout_key) = if self.nodes[to.0].is_alive() {
            let src = self.nodes[from.0].descriptor.host;
            let dst = self.nodes[to.0].descriptor.host;
            let rtt = self
                .network
                .transfer_time(src, dst, self.params.rs_message_bytes)
                + self
                    .network
                    .transfer_time(dst, src, self.params.rs_message_bytes);
            // Alive-peer fast path: a reply scheduled strictly before the
            // timeout window has already won the race, so the timeout is
            // not armed at all (see the module docs).  When it *is* armed
            // (slow link, or the fast path disabled), it is armed before
            // the reply so the FIFO tie-break delivers the timeout first
            // at the degenerate `rtt == rs_timeout` instant — the
            // submitter gives up at its deadline.
            let timeout_key = if self.rs_timeout_fast_path && rtt < self.params.rs_timeout {
                None
            } else {
                Some(
                    self.sim
                        .schedule_in(self.params.rs_timeout, OverlayEvent::RsTimeout(idx)),
                )
            };
            let now = self.sim.now();
            let reply = if from.0 == to.0 {
                // A submitter reserving its own host: every piece (address,
                // config, RS) is a disjoint field of the same node.
                let node = &mut self.nodes[to.0];
                let req = ReservationRequest {
                    key,
                    requester: from,
                    requester_address: &node.descriptor.address,
                    total_processes,
                };
                node.rs.handle_request(&req, &node.config, now)
            } else {
                let (from_node, to_node) = nodes_from_to(&mut self.nodes, from.0, to.0);
                let req = ReservationRequest {
                    key,
                    requester: from,
                    requester_address: &from_node.descriptor.address,
                    total_processes,
                };
                to_node.rs.handle_request(&req, &to_node.config, now)
            };
            let reply_key = self.sim.schedule_in(rtt, OverlayEvent::RsReply(idx));
            (Some(reply), rtt, Some(reply_key), timeout_key)
        } else {
            // A dead peer never answers: only the timeout is on the
            // timeline, and it will fire.
            let timeout_key = self
                .sim
                .schedule_in(self.params.rs_timeout, OverlayEvent::RsTimeout(idx));
            (None, self.params.rs_timeout, None, Some(timeout_key))
        };
        self.rs_pending.push(RsPending {
            from,
            to,
            key,
            reply,
            rtt,
            timeout_key,
            reply_key,
            outcome: None,
        });
        self.rs_inflight += 1;
    }

    /// Number of sent RS requests whose reply/timeout has not fired yet.
    pub fn rs_inflight(&self) -> usize {
        self.rs_inflight
    }

    /// Runs the timeline until every in-flight RS request has resolved.
    /// Other events that come due on the way (completions, heartbeats,
    /// churn, ...) are delivered normally — a brokering round does not get
    /// a private clock.
    fn run_until_rs_resolved(&mut self) {
        while self.rs_inflight > 0 {
            let ev = self
                .sim
                .pop_due(SimTime::MAX)
                .expect("in-flight RS requests imply pending events");
            self.dispatch(ev.payload);
        }
    }

    /// Resolves the current brokering round: runs the timeline until every
    /// request sent since the last drain has its reply or timeout, then
    /// drains the outcomes into `out` (cleared first) **in send order** —
    /// the deterministic order the co-allocation procedure walks, whatever
    /// interleaving the race produced.  The scratch slots are recycled.
    pub fn rs_collect_into(&mut self, out: &mut Vec<(PeerId, RsOutcome)>) {
        out.clear();
        self.run_until_rs_resolved();
        for slot in self.rs_pending.drain(..) {
            let outcome = slot.outcome.expect("drained an unresolved RS request");
            out.push((slot.to, outcome));
        }
    }

    /// Capacity of the pending-request scratch (diagnostics: must reach a
    /// high-water mark and stay there in a steady-state sweep).
    pub fn rs_scratch_capacity(&self) -> usize {
        self.rs_pending.capacity()
    }

    /// Enables or disables the alive-peer timeout fast path (default on;
    /// outcome-invariant either way — see the module docs).  Benchmarks of
    /// the armed timeout machinery itself turn it off so every reservation
    /// still parks its timeout event on the timeline.
    pub fn set_rs_timeout_fast_path(&mut self, enabled: bool) {
        self.rs_timeout_fast_path = enabled;
    }

    /// Whether the alive-peer timeout fast path is enabled.
    pub fn rs_timeout_fast_path(&self) -> bool {
        self.rs_timeout_fast_path
    }

    /// RS→RS reservation request from `from` to `to`, resolved inline: one
    /// [`Overlay::rs_send`] followed by running the timeline until the
    /// reply/timeout race settles.  The clock therefore *advances* by the
    /// exchange's round trip (or the full `rs_timeout` for a dead peer) —
    /// the timeout is an observed event here too, not a charged constant.
    ///
    /// # Panics
    ///
    /// Panics if called while a multi-request brokering round is in flight;
    /// batch rounds must resolve through [`Overlay::rs_collect_into`].
    pub fn rs_request(
        &mut self,
        from: PeerId,
        to: PeerId,
        key: ReservationKey,
        total_processes: u32,
    ) -> RsOutcome {
        assert!(
            self.rs_pending.is_empty(),
            "rs_request cannot interleave with an in-flight brokering round"
        );
        self.rs_send(from, to, key, total_processes);
        self.run_until_rs_resolved();
        let slot = self.rs_pending.pop().expect("one pending request");
        slot.outcome.expect("resolved request has an outcome")
    }

    /// Cancels a reservation previously granted by `to` (unused reservations
    /// from the overbooked `rlist`, step 6).  Returns `true` if the remote RS
    /// actually held it.
    pub fn rs_cancel(&mut self, from: PeerId, to: PeerId, key: ReservationKey) -> bool {
        if !self.nodes[to.0].is_alive() {
            return false;
        }
        let cancelled = self.nodes[to.0].rs.cancel(key);
        if cancelled {
            self.tracer
                .record(self.sim.now(), TraceCategory::Reservation, || {
                    format!("{from} cancelled reservation on {to}")
                });
        }
        cancelled
    }

    /// Sends an MPD start request from `from` to `to` onto the timeline
    /// (steps 6–8): the request arrives at the remote MPD one one-way
    /// transfer from now, the start decision is made *at arrival*, and the
    /// reply races the submitter's deadline at `now + rs_timeout`.  See the
    /// start-request section of the module docs.
    pub fn start_send(&mut self, from: PeerId, to: PeerId, key: ReservationKey, ranks: u32) {
        let idx = u32::try_from(self.start_pending.len()).expect("too many in-flight starts");
        let now = self.sim.now();
        let deadline = now + self.params.rs_timeout;
        let src = self.nodes[from.0].descriptor.host;
        let dst = self.nodes[to.0].descriptor.host;
        let outbound = self
            .network
            .transfer_time(src, dst, self.params.start_message_bytes);
        // On extreme links the request cannot even arrive before the
        // deadline: the timeout is pre-armed (first, so the FIFO tie-break
        // favours giving up) and the arrival only settles the remote side.
        if now + outbound >= deadline {
            self.sim
                .schedule_at(deadline, OverlayEvent::StartTimeout(idx));
        }
        self.sim
            .schedule_in(outbound, OverlayEvent::StartArrive(idx));
        self.start_pending.push(StartPending {
            from,
            to,
            key,
            ranks,
            sent_at: now,
            deadline,
            decision: None,
            outcome: None,
        });
        self.start_inflight += 1;
    }

    /// Number of sent start requests whose resolver has not fired yet.
    pub fn start_inflight(&self) -> usize {
        self.start_inflight
    }

    /// Runs the timeline until every in-flight start request has resolved;
    /// other due events are delivered normally on the way.
    fn run_until_starts_resolved(&mut self) {
        while self.start_inflight > 0 {
            let ev = self
                .sim
                .pop_due(SimTime::MAX)
                .expect("in-flight start requests imply pending events");
            self.dispatch(ev.payload);
        }
    }

    /// Resolves the current start round: runs the timeline until every
    /// request sent since the last drain has its outcome, then drains them
    /// into `out` (cleared first) **in send order**.  The scratch slots are
    /// recycled.
    pub fn start_collect_into(&mut self, out: &mut Vec<(PeerId, StartReply, SimDuration)>) {
        out.clear();
        self.run_until_starts_resolved();
        for slot in self.start_pending.drain(..) {
            let (reply, elapsed) = slot.outcome.expect("drained an unresolved start request");
            out.push((slot.to, reply, elapsed));
        }
    }

    /// MPD start request (steps 6–8) resolved inline: one
    /// [`Overlay::start_send`] followed by running the timeline until the
    /// request resolves.  The clock therefore *advances* by the exchange's
    /// round trip (or the full `rs_timeout` when the remote never answers in
    /// time) — like [`Overlay::rs_request`], the timeout is an observed
    /// event, not a charged constant.
    ///
    /// # Panics
    ///
    /// Panics if called while a batch start round is in flight; batch
    /// rounds must resolve through [`Overlay::start_collect_into`].
    pub fn mpd_start(
        &mut self,
        from: PeerId,
        to: PeerId,
        key: ReservationKey,
        ranks: &[RankAssignment],
        program: &str,
    ) -> (StartReply, SimDuration) {
        assert!(
            self.start_pending.is_empty(),
            "mpd_start cannot interleave with an in-flight start round"
        );
        self.start_send(from, to, key, ranks.len() as u32);
        self.run_until_starts_resolved();
        let slot = self.start_pending.pop().expect("one pending start");
        let (reply, elapsed) = slot.outcome.expect("resolved start has an outcome");
        if reply == StartReply::Started {
            let n = ranks.len();
            self.tracer
                .record(self.sim.now(), TraceCategory::Runtime, || {
                    format!("{to} acknowledged {n} process(es) of {program}")
                });
        }
        (reply, elapsed)
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Whether the supernode is currently up.
    pub fn supernode_is_up(&self) -> bool {
        self.supernode_up
    }

    /// Crashes the supernode immediately: the volatile registry is lost and
    /// cache refreshes go unanswered until [`Overlay::recover_supernode`].
    /// Brokering continues from each submitter's stale cache.
    pub fn crash_supernode(&mut self) {
        self.supernode_up = false;
        self.supernode.clear();
        self.tracer
            .record(self.sim.now(), TraceCategory::Fault, || {
                "supernode crashed; host list lost".to_string()
            });
    }

    /// Brings the supernode back with an empty registry.  Alive peers
    /// re-register through the next heartbeat round's resync path.
    pub fn recover_supernode(&mut self) {
        self.supernode_up = true;
        self.tracer
            .record(self.sim.now(), TraceCategory::Fault, || {
                "supernode recovered; awaiting re-registrations".to_string()
            });
    }

    /// Schedules a correlated outage of the peers running on `hosts`: each
    /// crashes at `at` and recovers `duration` later, riding the churn
    /// machinery (so `fail_jobs_on_crash` revocation, heartbeat expiry and
    /// supernode re-registration all apply).  This is the rack-level
    /// fault path — callers pass a host subset (a rack) rather than a
    /// whole site.  Hosts without a registered peer are skipped; returns
    /// how many peers were scheduled.
    pub fn schedule_host_outage(
        &mut self,
        hosts: &[HostId],
        at: SimTime,
        duration: SimDuration,
    ) -> usize {
        assert!(at >= self.sim.now(), "outage must be in the future");
        assert!(!duration.is_zero(), "outage needs a non-zero duration");
        let mut schedule = ChurnSchedule::with_capacity(hosts.len() * 2);
        let mut peers = 0usize;
        for &host in hosts {
            if let Some(peer) = self.peer_on_host(host) {
                schedule.crash(peer, at);
                schedule.recover(peer, at + duration);
                peers += 1;
            }
        }
        self.schedule_churn(schedule.finish());
        peers
    }

    /// Schedules a supernode outage window `[at, at + duration)` on the
    /// timeline.
    pub fn schedule_supernode_outage(&mut self, at: SimTime, duration: SimDuration) {
        assert!(at >= self.sim.now(), "outage must be in the future");
        assert!(!duration.is_zero(), "outage needs a non-zero duration");
        self.sim.schedule_at(at, OverlayEvent::SupernodeDown);
        self.sim
            .schedule_at(at + duration, OverlayEvent::SupernodeUp);
    }

    /// Sets the latency multiplier of every transfer touching `site`, in
    /// both the messaging model and the prober's own copy.  Events already
    /// on the timeline keep the cost computed when they were scheduled.
    pub fn set_site_latency_factor(&mut self, site: SiteId, factor: f64) {
        self.network.set_site_latency_factor(site, factor);
        self.prober
            .network_mut()
            .set_site_latency_factor(site, factor);
        self.tracer
            .record(self.sim.now(), TraceCategory::Fault, || {
                format!("site {} latency factor set to {factor}", site.0)
            });
    }

    /// Schedules a slow-link window: transfers touching `site` have their
    /// latency multiplied by `factor` during `[at, at + duration)`.
    pub fn schedule_link_degradation(
        &mut self,
        site: SiteId,
        at: SimTime,
        duration: SimDuration,
        factor: f64,
    ) {
        assert!(at >= self.sim.now(), "degradation must be in the future");
        assert!(!duration.is_zero(), "degradation needs a non-zero duration");
        assert!(factor >= 1.0, "a factor below 1 would speed links up");
        self.sim
            .schedule_at(at, OverlayEvent::LinkDegrade { site, factor });
        self.sim.schedule_at(
            at + duration,
            OverlayEvent::LinkDegrade { site, factor: 1.0 },
        );
    }

    /// When on, a peer crash kills the running jobs it participates in
    /// (see [`Overlay::kill_peer`]).  Set before scheduling jobs: only
    /// completions scheduled while the mode is on are tracked.
    pub fn set_fail_jobs_on_crash(&mut self, enabled: bool) {
        self.fail_jobs_on_crash = enabled;
    }

    /// Whether peer crashes kill running jobs.
    pub fn fail_jobs_on_crash(&self) -> bool {
        self.fail_jobs_on_crash
    }

    /// Cumulative count of grants whose reply lost the race to its timeout
    /// (each was released eagerly; see the module docs).  Stays 0 on a
    /// standard no-fault day.
    pub fn leaked_grants(&self) -> u64 {
        self.leaked_grants
    }

    /// High-water mark of simultaneously outstanding leaked grants (counted
    /// from the timeout firing to the release's arrival).
    pub fn leaked_grant_hwm(&self) -> u64 {
        self.leaked_hwm
    }

    /// Cumulative count of running jobs killed by participant crashes
    /// (only accrues while [`Overlay::fail_jobs_on_crash`] is on).
    pub fn jobs_killed(&self) -> u64 {
        self.jobs_killed
    }

    /// Marks the application under `key` as finished on `peer`, freeing the
    /// gatekeeper slot.
    pub fn complete_job(&mut self, peer: PeerId, key: ReservationKey) -> bool {
        self.nodes[peer.0].rs.complete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boot::OverlayBuilder;
    use crate::config::OwnerConfig;
    use p2pmpi_simgrid::noise::NoiseModel;
    use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};

    fn small_topology() -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("local");
        let s1 = b.add_site("remote");
        b.add_cluster(
            s0,
            "l",
            "cpu",
            3,
            NodeSpec {
                cores: 2,
                ..NodeSpec::default()
            },
        );
        b.add_cluster(
            s1,
            "r",
            "cpu",
            3,
            NodeSpec {
                cores: 4,
                ..NodeSpec::default()
            },
        );
        b.set_rtt(s0, s1, SimDuration::from_millis(10));
        Arc::new(b.build())
    }

    fn overlay() -> Overlay {
        let topo = small_topology();
        OverlayBuilder::new(topo)
            .seed(1)
            .noise(NoiseModel::disabled())
            .peer_per_host_with_core_capacity()
            .build()
    }

    #[test]
    fn boot_and_bootstrap_builds_latency_ranking() {
        let mut o = overlay();
        o.boot_all();
        assert_eq!(o.supernode().len(), 6);
        let submitter = o
            .peer_on_host(o.topology().host_by_name("l-0").unwrap().id)
            .unwrap();
        o.bootstrap_peer(submitter);
        let ranking = o.latency_ranking(submitter);
        assert_eq!(ranking.len(), 5); // everyone but the submitter
                                      // The two other local hosts come before the three remote ones.
        let local_hosts: Vec<HostId> = o
            .topology()
            .hosts_at_site(o.topology().site_by_name("local").unwrap().id)
            .map(|h| h.id)
            .collect();
        for &p in &ranking[..2] {
            assert!(local_hosts.contains(&o.host_of(p)));
        }
        for &p in &ranking[2..] {
            assert!(!local_hosts.contains(&o.host_of(p)));
        }
    }

    #[test]
    fn rs_request_grants_then_respects_j() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[1]);
        let k1 = o.generate_key();
        let k2 = o.generate_key();
        assert_ne!(k1, k2);
        match o.rs_request(from, to, k1, 4) {
            RsOutcome::Reply { reply, elapsed } => {
                assert!(reply.is_ok());
                assert!(elapsed > SimDuration::ZERO);
            }
            RsOutcome::Timeout { .. } => panic!("unexpected timeout"),
        }
        // Default J=1: a second application is refused.
        match o.rs_request(from, to, k2, 4) {
            RsOutcome::Reply { reply, .. } => assert!(!reply.is_ok()),
            RsOutcome::Timeout { .. } => panic!("unexpected timeout"),
        }
        // Cancelling frees the slot.
        assert!(o.rs_cancel(from, to, k1));
        assert!(matches!(
            o.rs_request(from, to, k2, 4),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
    }

    #[test]
    fn dead_peers_time_out_and_probe_failures_accumulate() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[3]);
        o.bootstrap_peer(from);
        o.kill_peer(to);
        assert_eq!(o.alive_count(), 5);
        let k = o.generate_key();
        match o.rs_request(from, to, k, 1) {
            RsOutcome::Timeout { elapsed } => assert_eq!(elapsed, o.params().rs_timeout),
            RsOutcome::Reply { .. } => panic!("dead peer answered"),
        }
        o.probe_round(from);
        assert_eq!(o.node(from).cache.get(to).unwrap().failed_probes, 1);
        o.revive_peer(to);
        assert_eq!(o.alive_count(), 6);
        assert!(matches!(
            o.rs_request(from, to, k, 1),
            RsOutcome::Reply { .. }
        ));
    }

    #[test]
    fn batch_brokering_resolves_on_the_timeline_in_send_order() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let submitter = ids[0];
        o.kill_peer(ids[3]);
        let key = o.generate_key();
        let t0 = o.now();
        // One round: two live peers and a dead one in the middle.
        for &to in &[ids[1], ids[3], ids[2]] {
            o.rs_send(submitter, to, key, 1);
        }
        assert_eq!(o.rs_inflight(), 3);
        let mut outcomes = Vec::new();
        o.rs_collect_into(&mut outcomes);
        assert_eq!(o.rs_inflight(), 0);
        // Outcomes come back in send order, not firing order (the replies
        // fire ms before the dead peer's 2 s timeout).
        let peers: Vec<PeerId> = outcomes.iter().map(|&(p, _)| p).collect();
        assert_eq!(peers, vec![ids[1], ids[3], ids[2]]);
        assert!(matches!(outcomes[0].1, RsOutcome::Reply { .. }));
        assert!(matches!(outcomes[2].1, RsOutcome::Reply { .. }));
        match outcomes[1].1 {
            RsOutcome::Timeout { elapsed } => assert_eq!(elapsed, o.params().rs_timeout),
            RsOutcome::Reply { .. } => panic!("dead peer answered"),
        }
        // The timeout was an observed event: the clock actually waited the
        // full rs_timeout for the dead peer.
        assert_eq!(o.now(), t0 + o.params().rs_timeout);
        // The live requests took the fast path (no armed timeout), so no
        // tombstones linger beyond pending events.
        assert!(o.events_queued() >= o.events_pending());
    }

    #[test]
    fn reply_slower_than_the_timeout_loses_the_race() {
        // An *alive* peer whose round trip exceeds rs_timeout: the armed
        // timeout fires first and cancels the in-flight reply.  The remote
        // granted at send time; the grant is counted as leaked and released
        // *eagerly* — one one-way control message later, no expiry sweep
        // involved.
        let topo = small_topology();
        let mut o = OverlayBuilder::new(topo.clone())
            .seed(5)
            .noise(NoiseModel::disabled())
            .overlay_params(OverlayParams {
                // Inter-site RTT is 10 ms; a 1 ms timeout always loses.
                rs_timeout: SimDuration::from_millis(1),
                ..OverlayParams::default()
            })
            .peer_per_host_with_core_capacity()
            .build();
        o.boot_all();
        let submitter = o
            .peer_on_host(topo.host_by_name("l-0").unwrap().id)
            .unwrap();
        let remote = o
            .peer_on_host(topo.host_by_name("r-0").unwrap().id)
            .unwrap();
        let key = o.generate_key();
        assert_eq!(o.leaked_grants(), 0);
        match o.rs_request(submitter, remote, key, 1) {
            RsOutcome::Timeout { elapsed } => assert_eq!(elapsed, SimDuration::from_millis(1)),
            RsOutcome::Reply { .. } => panic!("slow reply should have lost the race"),
        }
        // The grant happened at send time, leaked, and its eager release is
        // already in flight (one one-way 64-byte message, ~5 ms here).
        assert_eq!(o.leaked_grants(), 1);
        assert_eq!(o.leaked_grant_hwm(), 1);
        assert_eq!(o.node(remote).rs.active_applications(), 1);
        o.advance(SimDuration::from_millis(10));
        assert_eq!(
            o.node(remote).rs.active_applications(),
            0,
            "eager release reclaimed the slot without any sweep"
        );
    }

    #[test]
    fn supernode_outage_degrades_and_resyncs() {
        let mut o = overlay();
        o.boot_all();
        let p = o.peer_ids()[0];
        o.bootstrap_peer(p);
        let cached = o.node(p).cache.len();
        assert_eq!(cached, 5);
        o.start_heartbeats();
        o.schedule_supernode_outage(SimTime::from_secs(10), SimDuration::from_secs(50));
        o.advance(SimDuration::from_secs(20));
        // Down: registry lost, refreshes unanswered, stale cache survives.
        assert!(!o.supernode_is_up());
        assert_eq!(o.supernode().len(), 0);
        let (added, elapsed) = o.refresh_cache(p);
        assert_eq!(added, 0);
        assert_eq!(elapsed, o.params().rs_timeout);
        assert_eq!(o.node(p).cache.len(), cached, "stale view keeps brokering");
        // Brokering still works peer-to-peer while the supernode is down.
        let key = o.generate_key();
        let to = o.latency_ranking(p)[0];
        assert!(matches!(
            o.rs_request(p, to, key, 1),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
        // Recovery + one heartbeat period: every alive peer re-registered.
        o.advance(SimDuration::from_secs(200));
        assert!(o.supernode_is_up());
        assert_eq!(o.supernode().len(), o.alive_count());
    }

    #[test]
    fn link_degradation_window_slows_then_restores() {
        let topo = small_topology();
        let mut o = overlay();
        o.boot_all();
        let l0 = topo.host_by_name("l-0").unwrap().id;
        let r0 = topo.host_by_name("r-0").unwrap().id;
        let nominal = o.network().transfer_time(l0, r0, 1024);
        let remote_site = topo.site_by_name("remote").unwrap().id;
        o.schedule_link_degradation(
            remote_site,
            SimTime::from_secs(5),
            SimDuration::from_secs(10),
            8.0,
        );
        o.advance(SimDuration::from_secs(6));
        let degraded = o.network().transfer_time(l0, r0, 1024);
        assert!(degraded > nominal * 7);
        // The prober's own model copy is degraded too.
        assert_eq!(o.prober().network().site_latency_factor(remote_site), 8.0);
        o.advance(SimDuration::from_secs(10));
        assert_eq!(o.network().transfer_time(l0, r0, 1024), nominal);
        assert_eq!(o.prober().network().site_latency_factor(remote_site), 1.0);
    }

    #[test]
    fn crash_kills_running_jobs_when_enabled() {
        let mut o = overlay();
        o.boot_all();
        o.set_fail_jobs_on_crash(true);
        let ids = o.peer_ids();
        let (from, a, b) = (ids[0], ids[1], ids[2]);
        let key = o.generate_key();
        for &to in &[a, b] {
            assert!(matches!(
                o.rs_request(from, to, key, 2),
                RsOutcome::Reply { reply, .. } if reply.is_ok()
            ));
        }
        let ranks = vec![RankAssignment {
            rank: 0,
            replica: 0,
        }];
        for &to in &[a, b] {
            let (reply, _) = o.mpd_start(from, to, key, &ranks, "prog");
            assert_eq!(reply, StartReply::Started);
        }
        o.schedule_completion(o.now() + SimDuration::from_secs(100), key, vec![a, b]);
        o.advance(SimDuration::from_secs(10));
        // One participant crashes: the whole job dies, both slots free.
        o.kill_peer(a);
        assert_eq!(o.jobs_killed(), 1);
        assert_eq!(o.node(a).rs.running_processes(), 0);
        assert_eq!(o.node(b).rs.running_processes(), 0);
        // The revoked completion never fires.
        let processed = o.events_processed();
        o.advance(SimDuration::from_secs(200));
        assert_eq!(o.events_processed(), processed);
    }

    #[test]
    fn mid_flight_crash_times_out_an_event_driven_start() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[3]);
        let key = o.generate_key();
        assert!(matches!(
            o.rs_request(from, to, key, 1),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
        // Crash the remote *after* the start request is sent but before it
        // arrives (cross-site one-way is ~5 ms): the arrival finds a dead
        // MPD and the submitter times out — the ranks never start.
        let t0 = o.now();
        o.start_send(from, to, key, 1);
        let mut schedule = crate::churn::ChurnSchedule::new();
        schedule.crash(to, t0 + SimDuration::from_millis(1));
        o.schedule_churn(schedule.finish());
        let mut outcomes = Vec::new();
        o.start_collect_into(&mut outcomes);
        assert_eq!(outcomes.len(), 1);
        let (peer, reply, elapsed) = outcomes[0];
        assert_eq!(peer, to);
        assert_eq!(reply, StartReply::Timeout);
        assert_eq!(elapsed, o.params().rs_timeout);
        assert_eq!(o.now(), t0 + o.params().rs_timeout);
        assert_eq!(o.node(to).rs.running_processes(), 0, "never started");
        // The inverse interleaving: a peer dead at send time that recovers
        // before the request arrives *does* start the ranks.
        let key2 = o.generate_key();
        let late = ids[4];
        assert!(matches!(
            o.rs_request(from, late, key2, 1),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
        o.kill_peer(late);
        let t1 = o.now();
        o.start_send(from, late, key2, 1);
        let mut schedule = crate::churn::ChurnSchedule::new();
        schedule.recover(late, t1 + SimDuration::from_millis(1));
        o.schedule_churn(schedule.finish());
        o.start_collect_into(&mut outcomes);
        assert_eq!(outcomes[0].1, StartReply::Started);
    }

    #[test]
    fn brokering_scratch_reaches_a_high_water_mark_and_stays_there() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let submitter = ids[0];
        let mut outcomes = Vec::new();
        let round = |o: &mut Overlay, outcomes: &mut Vec<(PeerId, RsOutcome)>| {
            let key = o.generate_key();
            for &to in &ids[1..] {
                o.rs_send(submitter, to, key, 1);
            }
            o.rs_collect_into(outcomes);
            for &(to, _) in outcomes.iter() {
                o.rs_cancel(submitter, to, key);
            }
            // Let the round's cancelled-timeout tombstones reach their
            // nominal firing time and be collected, as a real sweep's
            // inter-arrival gaps do; the event store can then recycle the
            // slots instead of growing past its high-water mark.
            o.advance(o.params().rs_timeout);
        };
        // Warm-up rounds grow every buffer to its high-water mark ...
        for _ in 0..3 {
            round(&mut o, &mut outcomes);
        }
        let scratch_cap = o.rs_scratch_capacity();
        let events_cap = o.events_capacity();
        let outcomes_cap = outcomes.capacity();
        // ... after which a steady-state brokering loop reallocates nothing.
        for _ in 0..20 {
            round(&mut o, &mut outcomes);
        }
        assert_eq!(o.rs_scratch_capacity(), scratch_cap);
        assert_eq!(o.events_capacity(), events_cap);
        assert_eq!(outcomes.capacity(), outcomes_cap);
    }

    #[test]
    fn start_requires_matching_key() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[2]);
        let key = o.generate_key();
        let wrong = o.generate_key();
        assert!(matches!(
            o.rs_request(from, to, key, 2),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
        let ranks = vec![RankAssignment {
            rank: 0,
            replica: 0,
        }];
        let (reply, _) = o.mpd_start(from, to, wrong, &ranks, "prog");
        assert_eq!(reply, StartReply::KeyMismatch);
        let (reply, _) = o.mpd_start(from, to, key, &ranks, "prog");
        assert_eq!(reply, StartReply::Started);
        assert!(o.complete_job(to, key));
        assert!(!o.complete_job(to, key));
    }

    #[test]
    fn churn_schedule_is_applied_on_advance() {
        let mut o = overlay();
        o.boot_all();
        let victim = o.peer_ids()[1];
        let mut schedule = crate::churn::ChurnSchedule::new();
        schedule.crash(victim, SimTime::from_secs(10));
        schedule.recover(victim, SimTime::from_secs(30));
        o.schedule_churn(schedule.finish());
        o.advance(SimDuration::from_secs(5));
        assert!(o.node(victim).is_alive());
        o.advance(SimDuration::from_secs(10));
        assert!(!o.node(victim).is_alive());
        o.advance(SimDuration::from_secs(20));
        assert!(o.node(victim).is_alive());
        assert_eq!(o.now(), SimTime::from_secs(35));
        assert!(o.tracer().count(TraceCategory::Fault) >= 2);
    }

    #[test]
    fn heartbeats_run_as_scheduled_events() {
        let mut o = overlay();
        o.boot_all();
        let victim = o.peer_ids()[0];
        o.start_heartbeats();
        o.kill_peer(victim);
        // Three 120 s heartbeat periods pass the 360 s expiry: the periodic
        // rounds fire on the timeline without any manual heartbeat_round
        // call, and the silent peer is expired by the supernode.
        o.advance(SimDuration::from_secs(500));
        assert!(!o.supernode().knows(victim));
        assert_eq!(o.supernode().len(), 5);
        assert!(o.events_processed() >= 4);
        // The next round is always armed while heartbeats run.
        assert!(o.events_pending() >= 1);
        assert!(o.stop_heartbeats());
        assert!(!o.stop_heartbeats());
        assert_eq!(o.events_pending(), 0);
    }

    #[test]
    fn periodic_cache_refresh_is_a_scheduled_event() {
        let mut o = overlay();
        o.boot_all();
        let p = o.peer_ids()[0];
        assert_eq!(o.node(p).cache.len(), 0);
        o.start_cache_refresh(p, SimDuration::from_secs(60));
        o.advance(SimDuration::from_secs(59));
        assert_eq!(o.node(p).cache.len(), 0, "not due yet");
        o.advance(SimDuration::from_secs(2));
        assert_eq!(o.node(p).cache.len(), 5, "first refresh fired");
        assert!(o.stop_cache_refresh(p));
        assert!(!o.stop_cache_refresh(p));
        let processed = o.events_processed();
        o.advance(SimDuration::from_secs(600));
        assert_eq!(o.events_processed(), processed, "refresh was cancelled");
    }

    #[test]
    fn reservation_expiry_sweep_reclaims_pending_slots() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[1]);
        let k = o.generate_key();
        assert!(matches!(
            o.rs_request(from, to, k, 2),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
        assert_eq!(o.node(to).rs.active_applications(), 1);
        o.start_reservation_expiry(SimDuration::from_secs(60), SimDuration::from_secs(30));
        // The submitter never starts nor cancels: the sweep reclaims the
        // promised gatekeeper slot once the TTL passes.
        o.advance(SimDuration::from_secs(100));
        assert_eq!(o.node(to).rs.active_applications(), 0);
        assert!(o.stop_reservation_expiry());
    }

    #[test]
    fn scheduled_completions_free_hosts_on_the_timeline() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[2]);
        let key = o.generate_key();
        assert!(matches!(
            o.rs_request(from, to, key, 1),
            RsOutcome::Reply { reply, .. } if reply.is_ok()
        ));
        let ranks = vec![RankAssignment {
            rank: 0,
            replica: 0,
        }];
        let (reply, _) = o.mpd_start(from, to, key, &ranks, "prog");
        assert_eq!(reply, StartReply::Started);
        let done_at = o.now() + SimDuration::from_secs(30);
        let ev = o.schedule_completion(done_at, key, vec![to]);
        o.advance(SimDuration::from_secs(29));
        assert_eq!(o.node(to).rs.running_processes(), 1, "still running");
        o.advance(SimDuration::from_secs(2));
        assert_eq!(o.node(to).rs.running_processes(), 0, "completion fired");
        // Cancelling after the fact is a stale-key no-op.
        assert!(o.cancel_completion(ev).is_none());
    }

    #[test]
    fn cancelled_completion_returns_the_held_peers() {
        let mut o = overlay();
        o.boot_all();
        let ids = o.peer_ids();
        let key = o.generate_key();
        let ev = o.schedule_completion(
            o.now() + SimDuration::from_secs(10),
            key,
            vec![ids[1], ids[2]],
        );
        let peers = o.cancel_completion(ev).expect("still pending");
        assert_eq!(peers, vec![ids[1], ids[2]]);
        let processed = o.events_processed();
        o.advance(SimDuration::from_secs(60));
        assert_eq!(o.events_processed(), processed);
    }

    #[test]
    fn heartbeats_keep_peers_registered_and_silence_expires_them() {
        let mut o = overlay();
        o.boot_all();
        let victim = o.peer_ids()[0];
        o.kill_peer(victim);
        // Advance past the supernode expiry and heartbeat.
        o.advance(SimDuration::from_secs(400));
        let dropped = o.heartbeat_round();
        assert_eq!(dropped, 1);
        assert!(!o.supernode().knows(victim));
        assert_eq!(o.supernode().len(), 5);
    }

    #[test]
    fn owner_deny_list_is_enforced_end_to_end() {
        let topo = small_topology();
        let mut o = OverlayBuilder::new(topo)
            .seed(3)
            .noise(NoiseModel::disabled())
            .peer_per_host_with_core_capacity()
            .build();
        o.boot_all();
        let ids = o.peer_ids();
        let (from, to) = (ids[0], ids[1]);
        let from_addr = o.node(from).descriptor.address.clone();
        o.node_mut(to).config.deny(from_addr);
        let k = o.generate_key();
        match o.rs_request(from, to, k, 1) {
            RsOutcome::Reply { reply, .. } => assert_eq!(
                reply,
                ReservationReply::Nok(crate::messages::RefusalReason::RequesterDenied)
            ),
            RsOutcome::Timeout { .. } => panic!("unexpected timeout"),
        }
    }

    #[test]
    fn capacity_reflects_owner_config() {
        let topo = small_topology();
        let mut o = OverlayBuilder::new(topo.clone())
            .seed(9)
            .peer_per_host(|h| OwnerConfig::with_procs(h.cores as u32))
            .build();
        o.boot_all();
        let remote = o
            .peer_on_host(topo.host_by_name("r-0").unwrap().id)
            .unwrap();
        assert_eq!(o.node(remote).capacity_per_app(), 4);
        let local = o
            .peer_on_host(topo.host_by_name("l-0").unwrap().id)
            .unwrap();
        assert_eq!(o.node(local).capacity_per_app(), 2);
    }
}
