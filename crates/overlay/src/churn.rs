//! Fault injection: peer churn.
//!
//! The paper motivates P2P middleware by the dynamicity of grids ("failures
//! are far more frequent than on supercomputers").  This module provides a
//! schedule of join/crash/recover events applied to the overlay as virtual
//! time advances, used by the reservation tests and the replication
//! experiments.

use crate::peer::PeerId;
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use rand::Rng;

/// What happens to a peer at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The peer's MPD stops answering (crash / network partition).
    Crash,
    /// The peer comes back and re-registers with the supernode.
    Recover,
}

/// One scheduled churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the event takes effect.
    pub time: SimTime,
    /// The affected peer.
    pub peer: PeerId,
    /// Crash or recovery.
    pub kind: ChurnKind,
}

/// A time-ordered churn schedule.
#[derive(Debug, Default, Clone)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty schedule pre-sized for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        ChurnSchedule {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Adds one event (the schedule is re-sorted lazily on
    /// [`ChurnSchedule::finish`]).
    pub fn push(&mut self, event: ChurnEvent) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Convenience: schedule a crash.
    pub fn crash(&mut self, peer: PeerId, at: SimTime) -> &mut Self {
        self.push(ChurnEvent {
            time: at,
            peer,
            kind: ChurnKind::Crash,
        })
    }

    /// Convenience: schedule a recovery.
    pub fn recover(&mut self, peer: PeerId, at: SimTime) -> &mut Self {
        self.push(ChurnEvent {
            time: at,
            peer,
            kind: ChurnKind::Recover,
        })
    }

    /// Sorts the schedule by time (stable, so same-instant events keep their
    /// insertion order) and returns it.
    pub fn finish(mut self) -> Vec<ChurnEvent> {
        self.events.sort_by_key(|e| e.time);
        self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Generates a random crash/recovery schedule: each selected peer crashes at
/// a uniformly random instant of `[0, horizon)` and recovers `downtime`
/// later.  `fraction` of the given peers (rounded down) are affected.
pub fn random_churn<R: Rng + ?Sized>(
    peers: &[PeerId],
    fraction: f64,
    horizon: SimDuration,
    downtime: SimDuration,
    rng: &mut R,
) -> ChurnSchedule {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let count = ((peers.len() as f64) * fraction).floor() as usize;
    let mut schedule = ChurnSchedule::with_capacity(count * 2);
    // Partial Fisher–Yates: only the `count` selected positions are
    // shuffled, so picking a small fraction of a large overlay costs
    // O(count) swaps instead of a full-slice shuffle.
    let mut pool = peers.to_vec();
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
        let peer = pool[i];
        let at = SimTime::from_nanos(rng.gen_range(0..horizon.as_nanos().max(1)));
        schedule.crash(peer, at);
        schedule.recover(peer, at + downtime);
    }
    schedule
}

/// Generates a *flapping* schedule: each selected peer cycles crash →
/// (`downtime` later) recover → (`uptime` later) crash → … across the whole
/// horizon, starting its cycle at a uniformly random phase so the crashes
/// de-synchronise.  `fraction` of the given peers (rounded down) flap.
///
/// This is the fault process of the timeout-heavy day traces: at any instant
/// roughly `fraction · downtime / (downtime + uptime)` of the overlay is
/// dead, and because flapped peers keep re-registering (and re-entering
/// submitter caches on refresh), reservation requests keep running into
/// them — every such request parks a full `rs_timeout` on the timeline.
pub fn flapping_churn<R: Rng + ?Sized>(
    peers: &[PeerId],
    fraction: f64,
    horizon: SimDuration,
    downtime: SimDuration,
    uptime: SimDuration,
    rng: &mut R,
) -> ChurnSchedule {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    assert!(
        !downtime.is_zero() && !uptime.is_zero(),
        "flapping needs non-zero downtime and uptime"
    );
    let count = ((peers.len() as f64) * fraction).floor() as usize;
    let period = downtime + uptime;
    let cycles = (horizon.as_nanos() / period.as_nanos() + 1) as usize;
    let mut schedule = ChurnSchedule::with_capacity(count * cycles * 2);
    let mut pool = peers.to_vec();
    let end = SimTime::ZERO + horizon;
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
        let peer = pool[i];
        let mut at = SimTime::from_nanos(rng.gen_range(0..period.as_nanos().max(1)));
        while at < end {
            schedule.crash(peer, at);
            let back = at + downtime;
            if back >= end {
                break;
            }
            schedule.recover(peer, back);
            at = back + uptime;
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_simgrid::rngutil::seeded;

    #[test]
    fn schedule_sorts_by_time() {
        let mut s = ChurnSchedule::new();
        s.crash(PeerId(1), SimTime::from_secs(10));
        s.recover(PeerId(1), SimTime::from_secs(20));
        s.crash(PeerId(2), SimTime::from_secs(5));
        assert_eq!(s.len(), 3);
        let events = s.finish();
        assert_eq!(events[0].peer, PeerId(2));
        assert_eq!(events[1].kind, ChurnKind::Crash);
        assert_eq!(events[2].kind, ChurnKind::Recover);
    }

    #[test]
    fn random_churn_respects_fraction_and_pairs_events() {
        let peers: Vec<PeerId> = (0..20).map(PeerId).collect();
        let mut rng = seeded(5);
        let s = random_churn(
            &peers,
            0.25,
            SimDuration::from_secs(100),
            SimDuration::from_secs(30),
            &mut rng,
        );
        let events = s.finish();
        assert_eq!(events.len(), 10); // 5 peers x (crash + recover)
        let crashes = events.iter().filter(|e| e.kind == ChurnKind::Crash).count();
        assert_eq!(crashes, 5);
        // Every crash has a matching later recovery for the same peer.
        for c in events.iter().filter(|e| e.kind == ChurnKind::Crash) {
            assert!(events
                .iter()
                .any(|r| r.kind == ChurnKind::Recover && r.peer == c.peer && r.time > c.time));
        }
    }

    #[test]
    fn flapping_churn_alternates_crash_and_recover_per_peer() {
        let peers: Vec<PeerId> = (0..40).map(PeerId).collect();
        let mut rng = seeded(9);
        let horizon = SimDuration::from_secs(3600);
        let s = flapping_churn(
            &peers,
            0.5,
            horizon,
            SimDuration::from_secs(120),
            SimDuration::from_secs(240),
            &mut rng,
        );
        let events = s.finish();
        assert!(!events.is_empty());
        let end = SimTime::ZERO + horizon;
        assert!(events.iter().all(|e| e.time < end));
        // Per peer: strictly alternating, starting with a crash, in order.
        use std::collections::HashMap;
        let mut per_peer: HashMap<PeerId, Vec<&ChurnEvent>> = HashMap::new();
        for e in &events {
            per_peer.entry(e.peer).or_default().push(e);
        }
        assert_eq!(per_peer.len(), 20, "half of 40 peers flap");
        for (peer, evs) in per_peer {
            assert_eq!(evs[0].kind, ChurnKind::Crash, "{peer} starts down");
            // ~10 cycles/hour at a 360 s period: every flapper cycles a lot.
            assert!(evs.len() >= 10, "{peer} only flapped {} times", evs.len());
            for pair in evs.windows(2) {
                assert!(pair[0].time < pair[1].time, "{peer} events unsorted");
                assert_ne!(pair[0].kind, pair[1].kind, "{peer} did not alternate");
            }
        }
    }

    #[test]
    fn zero_fraction_is_empty() {
        let peers: Vec<PeerId> = (0..10).map(PeerId).collect();
        let mut rng = seeded(5);
        let s = random_churn(
            &peers,
            0.0,
            SimDuration::from_secs(10),
            SimDuration::from_secs(1),
            &mut rng,
        );
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_panics() {
        let mut rng = seeded(1);
        random_churn(
            &[PeerId(0)],
            1.5,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            &mut rng,
        );
    }
}
