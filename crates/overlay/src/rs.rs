//! The Reservation Service (RS).
//!
//! Each peer runs an RS next to its MPD: it "has the role of handling the
//! first negotiation regarding requests from and to remote peers"
//! (Section 3.2).  On the receiving side the RS checks the owner's limits
//! (the number of running applications against `J`, the requester against the
//! deny list) and answers OK with the capacity `P` or NOK.  It then holds the
//! reservation, keyed by the submitter's unique hash key, until the MPD
//! either starts the application (after verifying the key, step 7) or the
//! reservation is cancelled / expires.

use crate::config::OwnerConfig;
use crate::messages::{RefusalReason, ReservationKey, ReservationReply, ReservationRequest};
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Lifecycle of a reservation held by an RS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationStatus {
    /// Granted, waiting for the submitter to either start or cancel.
    Pending,
    /// The application has been started under this reservation.
    Running,
}

/// One reservation held by an RS.
#[derive(Debug, Clone)]
pub struct Reservation {
    /// The submitter's unique key for this co-allocation round.
    pub key: ReservationKey,
    /// The requesting peer's address (for diagnostics).
    pub requester_address: String,
    /// When the reservation was granted.
    pub granted_at: SimTime,
    /// Current status.
    pub status: ReservationStatus,
    /// Number of processes actually started under this reservation
    /// (0 while pending).
    pub processes: u32,
}

/// Errors returned when trying to start an application under a reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartError {
    /// No reservation with this key is held (wrong key or already cancelled).
    UnknownKey,
    /// The reservation was already started.
    AlreadyRunning,
    /// More processes requested than the owner's `P` allows.
    CapacityExceeded,
}

/// Per-peer reservation service.
#[derive(Debug, Default)]
pub struct ReservationService {
    reservations: HashMap<ReservationKey, Reservation>,
    granted_total: u64,
    refused_total: u64,
    cancelled_total: u64,
}

impl ReservationService {
    /// Creates an empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles an incoming reservation request (step 4 of the procedure).
    /// The requester address is copied only on the grant path, where the RS
    /// stores it in the held [`Reservation`]; refusals allocate nothing.
    pub fn handle_request(
        &mut self,
        req: &ReservationRequest<'_>,
        config: &OwnerConfig,
        now: SimTime,
    ) -> ReservationReply {
        if config.is_denied(req.requester_address) {
            self.refused_total += 1;
            return ReservationReply::Nok(RefusalReason::RequesterDenied);
        }
        if self.reservations.contains_key(&req.key) {
            self.refused_total += 1;
            return ReservationReply::Nok(RefusalReason::DuplicateKey);
        }
        if self.active_applications() >= config.max_apps {
            self.refused_total += 1;
            return ReservationReply::Nok(RefusalReason::TooManyApplications);
        }
        self.reservations.insert(
            req.key,
            Reservation {
                key: req.key,
                requester_address: req.requester_address.to_string(),
                granted_at: now,
                status: ReservationStatus::Pending,
                processes: 0,
            },
        );
        self.granted_total += 1;
        ReservationReply::Ok {
            capacity_p: config.max_procs_per_app,
        }
    }

    /// Checks whether a start request's key matches a held reservation
    /// (step 7: "the remote MPD verifies that the unique key matches the one
    /// its RS holds").
    pub fn verify_key(&self, key: ReservationKey) -> bool {
        self.reservations.contains_key(&key)
    }

    /// Marks a pending reservation as running `processes` processes.
    pub fn start(
        &mut self,
        key: ReservationKey,
        processes: u32,
        config: &OwnerConfig,
    ) -> Result<(), StartError> {
        let r = self
            .reservations
            .get_mut(&key)
            .ok_or(StartError::UnknownKey)?;
        if r.status == ReservationStatus::Running {
            return Err(StartError::AlreadyRunning);
        }
        if processes > config.max_procs_per_app {
            return Err(StartError::CapacityExceeded);
        }
        r.status = ReservationStatus::Running;
        r.processes = processes;
        Ok(())
    }

    /// Cancels a reservation (step 6: reservations for hosts in `rlist` but
    /// not in `slist`, or hosts assigned zero processes, are cancelled).
    pub fn cancel(&mut self, key: ReservationKey) -> bool {
        let removed = self.reservations.remove(&key).is_some();
        if removed {
            self.cancelled_total += 1;
        }
        removed
    }

    /// Marks a running application as finished, freeing the slot.
    pub fn complete(&mut self, key: ReservationKey) -> bool {
        match self.reservations.get(&key) {
            Some(r) if r.status == ReservationStatus::Running => {
                self.reservations.remove(&key);
                true
            }
            _ => false,
        }
    }

    /// Drops pending reservations older than `ttl`; returns how many were
    /// dropped.  Running applications are never expired.
    pub fn expire_pending(&mut self, now: SimTime, ttl: SimDuration) -> usize {
        let before = self.reservations.len();
        self.reservations.retain(|_, r| {
            r.status == ReservationStatus::Running || now.saturating_since(r.granted_at) <= ttl
        });
        let dropped = before - self.reservations.len();
        self.cancelled_total += dropped as u64;
        dropped
    }

    /// Number of applications currently counted against the owner's `J`
    /// (pending reservations count: a granted slot is promised).
    pub fn active_applications(&self) -> u32 {
        self.reservations.len() as u32
    }

    /// Number of processes currently running on this node across all
    /// applications.
    pub fn running_processes(&self) -> u32 {
        self.reservations
            .values()
            .filter(|r| r.status == ReservationStatus::Running)
            .map(|r| r.processes)
            .sum()
    }

    /// Looks up a held reservation.
    pub fn reservation(&self, key: ReservationKey) -> Option<&Reservation> {
        self.reservations.get(&key)
    }

    /// Lifetime counters: (granted, refused, cancelled).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.granted_total, self.refused_total, self.cancelled_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::PeerId;

    fn request(key: u64, addr: &str) -> ReservationRequest<'_> {
        ReservationRequest {
            key: ReservationKey(key),
            requester: PeerId(0),
            requester_address: addr,
            total_processes: 8,
        }
    }

    #[test]
    fn grants_up_to_j_applications() {
        let mut rs = ReservationService::new();
        let config = OwnerConfig::new(2, 4);
        let r1 = rs.handle_request(&request(1, "a"), &config, SimTime::ZERO);
        let r2 = rs.handle_request(&request(2, "b"), &config, SimTime::ZERO);
        let r3 = rs.handle_request(&request(3, "c"), &config, SimTime::ZERO);
        assert_eq!(r1, ReservationReply::Ok { capacity_p: 4 });
        assert_eq!(r2, ReservationReply::Ok { capacity_p: 4 });
        assert_eq!(
            r3,
            ReservationReply::Nok(RefusalReason::TooManyApplications)
        );
        assert_eq!(rs.active_applications(), 2);
        assert_eq!(rs.counters(), (2, 1, 0));
    }

    #[test]
    fn denied_requesters_are_refused() {
        let mut rs = ReservationService::new();
        let mut config = OwnerConfig::new(4, 2);
        config.deny("bad:1");
        assert_eq!(
            rs.handle_request(&request(1, "bad:1"), &config, SimTime::ZERO),
            ReservationReply::Nok(RefusalReason::RequesterDenied)
        );
        assert_eq!(
            rs.handle_request(&request(1, "good:1"), &config, SimTime::ZERO),
            ReservationReply::Ok { capacity_p: 2 }
        );
    }

    #[test]
    fn duplicate_keys_are_refused() {
        let mut rs = ReservationService::new();
        let config = OwnerConfig::new(4, 2);
        assert!(rs
            .handle_request(&request(7, "a"), &config, SimTime::ZERO)
            .is_ok());
        assert_eq!(
            rs.handle_request(&request(7, "a"), &config, SimTime::ZERO),
            ReservationReply::Nok(RefusalReason::DuplicateKey)
        );
    }

    #[test]
    fn start_requires_key_and_capacity() {
        let mut rs = ReservationService::new();
        let config = OwnerConfig::new(1, 4);
        rs.handle_request(&request(9, "a"), &config, SimTime::ZERO);
        assert!(rs.verify_key(ReservationKey(9)));
        assert!(!rs.verify_key(ReservationKey(10)));
        assert_eq!(
            rs.start(ReservationKey(10), 1, &config),
            Err(StartError::UnknownKey)
        );
        assert_eq!(
            rs.start(ReservationKey(9), 5, &config),
            Err(StartError::CapacityExceeded)
        );
        assert_eq!(rs.start(ReservationKey(9), 4, &config), Ok(()));
        assert_eq!(
            rs.start(ReservationKey(9), 2, &config),
            Err(StartError::AlreadyRunning)
        );
        assert_eq!(rs.running_processes(), 4);
    }

    #[test]
    fn cancel_frees_the_slot() {
        let mut rs = ReservationService::new();
        let config = OwnerConfig::new(1, 2);
        rs.handle_request(&request(1, "a"), &config, SimTime::ZERO);
        assert_eq!(
            rs.handle_request(&request(2, "b"), &config, SimTime::ZERO),
            ReservationReply::Nok(RefusalReason::TooManyApplications)
        );
        assert!(rs.cancel(ReservationKey(1)));
        assert!(!rs.cancel(ReservationKey(1)));
        assert!(rs
            .handle_request(&request(2, "b"), &config, SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn complete_only_applies_to_running() {
        let mut rs = ReservationService::new();
        let config = OwnerConfig::new(1, 2);
        rs.handle_request(&request(1, "a"), &config, SimTime::ZERO);
        assert!(!rs.complete(ReservationKey(1)));
        rs.start(ReservationKey(1), 2, &config).unwrap();
        assert!(rs.complete(ReservationKey(1)));
        assert_eq!(rs.active_applications(), 0);
        assert_eq!(rs.running_processes(), 0);
    }

    #[test]
    fn pending_reservations_expire_but_running_do_not() {
        let mut rs = ReservationService::new();
        let config = OwnerConfig::new(2, 2);
        rs.handle_request(&request(1, "a"), &config, SimTime::ZERO);
        rs.handle_request(&request(2, "b"), &config, SimTime::ZERO);
        rs.start(ReservationKey(2), 1, &config).unwrap();
        let dropped = rs.expire_pending(SimTime::from_secs(120), SimDuration::from_secs(60));
        assert_eq!(dropped, 1);
        assert!(rs.reservation(ReservationKey(1)).is_none());
        assert!(rs.reservation(ReservationKey(2)).is_some());
    }
}
