//! Resource-owner preferences.
//!
//! The MPD acts as a *gatekeeper* of its resource: the owner configures how
//! the CPU may be shared.  Two settings drive the co-allocation behaviour
//! (Section 4.1 of the paper):
//!
//! * `J` — the number of distinct applications the node accepts to run
//!   simultaneously;
//! * `P` — the number of processes *per MPI application* the node accepts.
//!
//! The owner can also deny specific requesters outright.

use std::collections::HashSet;

/// Owner preferences enforced by the MPD/RS gatekeeper.
#[derive(Debug, Clone)]
pub struct OwnerConfig {
    /// `J`: maximum number of distinct applications accepted at once.
    pub max_apps: u32,
    /// `P`: maximum number of processes of a single application accepted.
    pub max_procs_per_app: u32,
    /// Requester addresses that are always refused.
    pub denied_addresses: HashSet<String>,
}

impl Default for OwnerConfig {
    fn default() -> Self {
        // The paper's experiment sets P to the number of cores of the host's
        // CPU and leaves J at one application at a time; keep the same
        // spirit for a generic dual-core default.
        OwnerConfig {
            max_apps: 1,
            max_procs_per_app: 2,
            denied_addresses: HashSet::new(),
        }
    }
}

impl OwnerConfig {
    /// A configuration accepting one application of at most `p` processes —
    /// the setting used throughout the paper's experiments, with `p` equal to
    /// the host's core count.
    pub fn with_procs(p: u32) -> Self {
        OwnerConfig {
            max_apps: 1,
            max_procs_per_app: p,
            denied_addresses: HashSet::new(),
        }
    }

    /// A configuration with explicit `J` and `P` values.
    pub fn new(max_apps: u32, max_procs_per_app: u32) -> Self {
        OwnerConfig {
            max_apps,
            max_procs_per_app,
            denied_addresses: HashSet::new(),
        }
    }

    /// Adds an address to the deny list.
    pub fn deny(&mut self, address: impl Into<String>) -> &mut Self {
        self.denied_addresses.insert(address.into());
        self
    }

    /// True if `address` is denied by this owner.
    pub fn is_denied(&self, address: &str) -> bool {
        self.denied_addresses.contains(address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_app_dual_core() {
        let c = OwnerConfig::default();
        assert_eq!(c.max_apps, 1);
        assert_eq!(c.max_procs_per_app, 2);
        assert!(c.denied_addresses.is_empty());
    }

    #[test]
    fn with_procs_sets_p() {
        let c = OwnerConfig::with_procs(4);
        assert_eq!(c.max_apps, 1);
        assert_eq!(c.max_procs_per_app, 4);
    }

    #[test]
    fn deny_list_matches_exact_addresses() {
        let mut c = OwnerConfig::new(2, 1);
        c.deny("10.0.0.1:9200");
        assert!(c.is_denied("10.0.0.1:9200"));
        assert!(!c.is_denied("10.0.0.2:9200"));
    }

    #[test]
    fn paper_example_settings() {
        // "J=2 and P=1 would allow two distinct users to run simultaneously
        // one process each" / "J=1 and P=2 ... two processes of a single
        // application (often used for dual-core CPUs)".
        let two_users = OwnerConfig::new(2, 1);
        assert_eq!((two_users.max_apps, two_users.max_procs_per_app), (2, 1));
        let dual_core = OwnerConfig::new(1, 2);
        assert_eq!((dual_core.max_apps, dual_core.max_procs_per_app), (1, 2));
    }
}
