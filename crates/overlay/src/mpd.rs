//! The MPD: the per-peer daemon started by `mpiboot`.
//!
//! The MPD "represents the local resource as a peer in the P2P network"
//! (Section 3.2).  Its roles — maintaining membership, managing the cached
//! neighbourhood knowledge with latency probes, coordinating discovery and
//! reservation for a job, and gatekeeping the local resource — are split
//! here between the per-peer state ([`MpdNode`]) and the overlay-wide
//! simulation driver ([`crate::overlay::Overlay`]).

use crate::cache::CachedList;
use crate::config::OwnerConfig;
use crate::peer::{PeerDescriptor, PeerState};
use crate::rs::ReservationService;

/// Per-peer daemon state: descriptor, owner preferences, cached list and the
/// co-located Reservation Service.
#[derive(Debug)]
pub struct MpdNode {
    /// Who and where this peer is.
    pub descriptor: PeerDescriptor,
    /// Owner preferences enforced by the gatekeeper.
    pub config: OwnerConfig,
    /// Cached host list with latency estimates.
    pub cache: CachedList,
    /// The peer's Reservation Service.
    pub rs: ReservationService,
    /// Liveness (driven by fault injection).
    pub state: PeerState,
}

impl MpdNode {
    /// Creates a freshly booted MPD with an empty cache.
    pub fn new(descriptor: PeerDescriptor, config: OwnerConfig) -> Self {
        MpdNode {
            descriptor,
            config,
            cache: CachedList::new(),
            rs: ReservationService::new(),
            state: PeerState::Alive,
        }
    }

    /// True if the daemon currently answers requests.
    pub fn is_alive(&self) -> bool {
        self.state == PeerState::Alive
    }

    /// Remaining process capacity this node could promise to a *new*
    /// application, given what is already running: the owner's `P` bound.
    /// (The `J` bound is enforced by the RS when the reservation request
    /// arrives.)
    pub fn capacity_per_app(&self) -> u32 {
        self.config.max_procs_per_app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::PeerId;
    use p2pmpi_simgrid::topology::HostId;

    #[test]
    fn new_node_is_alive_and_empty() {
        let n = MpdNode::new(
            PeerDescriptor::new(PeerId(0), HostId(0)),
            OwnerConfig::with_procs(4),
        );
        assert!(n.is_alive());
        assert!(n.cache.is_empty());
        assert_eq!(n.capacity_per_app(), 4);
        assert_eq!(n.rs.active_applications(), 0);
    }

    #[test]
    fn state_can_flip() {
        let mut n = MpdNode::new(
            PeerDescriptor::new(PeerId(1), HostId(1)),
            OwnerConfig::default(),
        );
        n.state = PeerState::Dead;
        assert!(!n.is_alive());
        n.state = PeerState::Alive;
        assert!(n.is_alive());
    }
}
