//! The MPD's cached peer list with measured latencies.
//!
//! Each MPD keeps a local cache of the supernode's host list; "to each host
//! in the cache list is associated a network latency value" obtained by
//! periodically ping'ing it (Section 4.1).  The booking step of the
//! reservation procedure walks this cache in ascending-latency order and
//! books hosts from the front.
//!
//! ## Incremental latency index
//!
//! The booking order is consulted once per job submission while the cache
//! mutates only on probes and membership changes, so the ascending-latency
//! order is maintained *incrementally*: a [`BTreeSet`] of `(latency, peer)`
//! keys is updated in `O(log m)` on every [`CachedList::merge`],
//! [`CachedList::record_probe`] and [`CachedList::remove`], and
//! [`CachedList::ranking_iter`] walks it without sorting or allocating.
//! Peers without a measurement sort last (they are the least attractive
//! candidates); ties break by peer id for determinism.
//! [`CachedList::sorted_by_latency_naive`] keeps the original
//! sort-every-read implementation as the reference the property tests
//! compare against.

use crate::peer::{PeerDescriptor, PeerId};
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};

/// One cached peer with its latest latency estimate.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The cached peer.
    pub descriptor: PeerDescriptor,
    /// Smoothed latency estimate from application-level probes; `None` until
    /// the first probe completes.
    pub latency: Option<SimDuration>,
    /// Time of the last successful probe.
    pub last_probe: Option<SimTime>,
    /// Consecutive failed probes / timeouts.
    pub failed_probes: u32,
}

/// Exponential smoothing factor applied to successive probe measurements:
/// `new = (1-EWMA_ALPHA)*old + EWMA_ALPHA*sample`.
pub const EWMA_ALPHA: f64 = 0.5;

/// Key of the latency-ordered index: ascending measured latency, peers
/// without a measurement last, ties broken by peer id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RankKey {
    latency: Option<SimDuration>,
    id: PeerId,
}

impl Ord for RankKey {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.latency, other.latency) {
            (Some(a), Some(b)) => a.cmp(&b).then(self.id.cmp(&other.id)),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => self.id.cmp(&other.id),
        }
    }
}

impl PartialOrd for RankKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The MPD's cached list.
#[derive(Debug, Default)]
pub struct CachedList {
    entries: HashMap<PeerId, CacheEntry>,
    /// Latency-ordered view of `entries`, maintained on every mutation.
    index: BTreeSet<RankKey>,
}

impl CachedList {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CachedList {
            entries: HashMap::new(),
            index: BTreeSet::new(),
        }
    }

    /// Creates an empty cache pre-sized for `capacity` peers (e.g. the
    /// supernode's host-list length), so warm-up merges do not rehash.
    pub fn with_capacity(capacity: usize) -> Self {
        CachedList {
            entries: HashMap::with_capacity(capacity),
            index: BTreeSet::new(),
        }
    }

    /// Inserts an unprobed entry for `descriptor` unless its peer is already
    /// cached.  Returns `true` if the peer was new.  Both merge paths go
    /// through here so the entry/index invariant lives in one place.
    fn insert_if_vacant(&mut self, descriptor: PeerDescriptor) -> bool {
        let id = descriptor.id;
        if let std::collections::hash_map::Entry::Vacant(slot) = self.entries.entry(id) {
            slot.insert(CacheEntry {
                descriptor,
                latency: None,
                last_probe: None,
                failed_probes: 0,
            });
            self.index.insert(RankKey { latency: None, id });
            true
        } else {
            false
        }
    }

    /// Merges descriptors retrieved from the supernode into the cache,
    /// keeping existing latency estimates.  Returns the number of peers that
    /// were new to this cache.
    pub fn merge(&mut self, peers: impl IntoIterator<Item = PeerDescriptor>) -> usize {
        let mut added = 0;
        for d in peers {
            if self.insert_if_vacant(d) {
                added += 1;
            }
        }
        added
    }

    /// Like [`CachedList::merge`], but borrowing: descriptors are cloned only
    /// for peers actually new to the cache, so refreshing against an
    /// already-known host list allocates nothing.
    pub fn merge_refs<'a>(&mut self, peers: impl IntoIterator<Item = &'a PeerDescriptor>) -> usize {
        let mut added = 0;
        for d in peers {
            if !self.entries.contains_key(&d.id) && self.insert_if_vacant(d.clone()) {
                added += 1;
            }
        }
        added
    }

    /// Records a successful probe measurement for `peer`, smoothing with the
    /// previous estimate.  `O(log m)`: the peer's index key is re-slotted.
    pub fn record_probe(&mut self, peer: PeerId, sample: SimDuration, now: SimTime) {
        if let Some(e) = self.entries.get_mut(&peer) {
            let old = e.latency;
            let new = match old {
                Some(old) => {
                    let blended =
                        old.as_secs_f64() * (1.0 - EWMA_ALPHA) + sample.as_secs_f64() * EWMA_ALPHA;
                    SimDuration::from_secs_f64(blended)
                }
                None => sample,
            };
            e.latency = Some(new);
            e.last_probe = Some(now);
            e.failed_probes = 0;
            if old != Some(new) {
                self.index.remove(&RankKey {
                    latency: old,
                    id: peer,
                });
                self.index.insert(RankKey {
                    latency: Some(new),
                    id: peer,
                });
            }
        }
    }

    /// Records a failed probe (timeout) for `peer`.  Returns the new failure
    /// count, or `None` if the peer is not cached.  Does not move the peer in
    /// the latency order.
    pub fn record_probe_failure(&mut self, peer: PeerId) -> Option<u32> {
        self.entries.get_mut(&peer).map(|e| {
            e.failed_probes += 1;
            e.failed_probes
        })
    }

    /// Removes a peer (e.g. marked dead during a reservation round).
    pub fn remove(&mut self, peer: PeerId) -> bool {
        match self.entries.remove(&peer) {
            Some(e) => {
                self.index.remove(&RankKey {
                    latency: e.latency,
                    id: peer,
                });
                true
            }
            None => false,
        }
    }

    /// Looks up a cached entry.
    pub fn get(&self, peer: PeerId) -> Option<&CacheEntry> {
        self.entries.get(&peer)
    }

    /// Number of cached peers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All cached peers in unspecified order.
    pub fn peers(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Peer ids in ascending-latency order (unprobed last, ties by id),
    /// straight off the incremental index: no sort, no allocation.
    pub fn ranking_iter(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.index.iter().map(|k| k.id)
    }

    /// Cache entries in ascending-latency order, borrowed from the index.
    pub fn entries_by_latency(&self) -> impl Iterator<Item = &CacheEntry> {
        self.index.iter().map(|k| &self.entries[&k.id])
    }

    /// The cache sorted by ascending latency, which is exactly the order the
    /// booking step walks.  Materializes a `Vec`; hot paths should prefer
    /// [`CachedList::ranking_iter`] / [`CachedList::entries_by_latency`].
    pub fn sorted_by_latency(&self) -> Vec<&CacheEntry> {
        self.entries_by_latency().collect()
    }

    /// Reference implementation of the booking order: collect every entry and
    /// sort.  `O(m log m)` per call — kept only so the property tests can
    /// check the incremental index against first principles.
    pub fn sorted_by_latency_naive(&self) -> Vec<&CacheEntry> {
        let mut v: Vec<&CacheEntry> = self.entries.values().collect();
        v.sort_by(|a, b| match (a.latency, b.latency) {
            (Some(x), Some(y)) => x.cmp(&y).then(a.descriptor.id.cmp(&b.descriptor.id)),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => a.descriptor.id.cmp(&b.descriptor.id),
        });
        v
    }

    /// Convenience: peer ids in ascending-latency order.
    pub fn ranking(&self) -> Vec<PeerId> {
        self.ranking_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_simgrid::topology::HostId;

    fn desc(i: usize) -> PeerDescriptor {
        PeerDescriptor::new(PeerId(i), HostId(i))
    }

    #[test]
    fn merge_adds_only_new_peers() {
        let mut c = CachedList::new();
        assert_eq!(c.merge(vec![desc(0), desc(1)]), 2);
        assert_eq!(c.merge(vec![desc(1), desc(2)]), 1);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn probes_smooth_with_ewma() {
        let mut c = CachedList::new();
        c.merge(vec![desc(0)]);
        c.record_probe(PeerId(0), SimDuration::from_millis(10), SimTime::ZERO);
        assert_eq!(
            c.get(PeerId(0)).unwrap().latency,
            Some(SimDuration::from_millis(10))
        );
        c.record_probe(
            PeerId(0),
            SimDuration::from_millis(20),
            SimTime::from_secs(1),
        );
        // 0.5*10 + 0.5*20 = 15 ms
        assert_eq!(
            c.get(PeerId(0)).unwrap().latency,
            Some(SimDuration::from_millis(15))
        );
        assert_eq!(c.get(PeerId(0)).unwrap().failed_probes, 0);
    }

    #[test]
    fn failures_count_and_reset() {
        let mut c = CachedList::new();
        c.merge(vec![desc(0)]);
        assert_eq!(c.record_probe_failure(PeerId(0)), Some(1));
        assert_eq!(c.record_probe_failure(PeerId(0)), Some(2));
        assert_eq!(c.record_probe_failure(PeerId(9)), None);
        c.record_probe(PeerId(0), SimDuration::from_millis(5), SimTime::ZERO);
        assert_eq!(c.get(PeerId(0)).unwrap().failed_probes, 0);
    }

    #[test]
    fn sorting_puts_lowest_latency_first_and_unprobed_last() {
        let mut c = CachedList::new();
        c.merge(vec![desc(0), desc(1), desc(2), desc(3)]);
        c.record_probe(PeerId(2), SimDuration::from_millis(1), SimTime::ZERO);
        c.record_probe(PeerId(0), SimDuration::from_millis(12), SimTime::ZERO);
        c.record_probe(PeerId(1), SimDuration::from_millis(5), SimTime::ZERO);
        assert_eq!(
            c.ranking(),
            vec![PeerId(2), PeerId(1), PeerId(0), PeerId(3)]
        );
    }

    #[test]
    fn ties_break_by_peer_id() {
        let mut c = CachedList::new();
        c.merge(vec![desc(5), desc(3)]);
        c.record_probe(PeerId(5), SimDuration::from_millis(7), SimTime::ZERO);
        c.record_probe(PeerId(3), SimDuration::from_millis(7), SimTime::ZERO);
        assert_eq!(c.ranking(), vec![PeerId(3), PeerId(5)]);
    }

    #[test]
    fn remove_deletes_entry() {
        let mut c = CachedList::new();
        c.merge(vec![desc(0)]);
        assert!(c.remove(PeerId(0)));
        assert!(!c.remove(PeerId(0)));
        assert!(c.is_empty());
        assert_eq!(c.ranking_iter().count(), 0);
    }

    #[test]
    fn probing_unknown_peer_is_ignored() {
        let mut c = CachedList::new();
        c.record_probe(PeerId(4), SimDuration::from_millis(1), SimTime::ZERO);
        assert!(c.get(PeerId(4)).is_none());
    }

    #[test]
    fn incremental_index_matches_naive_sort() {
        let mut c = CachedList::with_capacity(8);
        c.merge((0..8).map(desc));
        for (i, ms) in [(0, 9), (3, 2), (5, 9), (1, 4)] {
            c.record_probe(PeerId(i), SimDuration::from_millis(ms), SimTime::ZERO);
        }
        c.remove(PeerId(5));
        c.record_probe(
            PeerId(3),
            SimDuration::from_millis(40),
            SimTime::from_secs(1),
        );
        let naive: Vec<PeerId> = c
            .sorted_by_latency_naive()
            .into_iter()
            .map(|e| e.descriptor.id)
            .collect();
        assert_eq!(c.ranking(), naive);
        let via_entries: Vec<PeerId> = c.entries_by_latency().map(|e| e.descriptor.id).collect();
        assert_eq!(via_entries, naive);
    }

    #[test]
    fn ranking_iter_is_lazily_borrowing() {
        let mut c = CachedList::new();
        c.merge(vec![desc(0), desc(1), desc(2)]);
        c.record_probe(PeerId(1), SimDuration::from_millis(1), SimTime::ZERO);
        // Taking only the front of the iterator never walks the rest.
        let first = c.ranking_iter().next();
        assert_eq!(first, Some(PeerId(1)));
    }
}
