//! The MPD's cached peer list with measured latencies.
//!
//! Each MPD keeps a local cache of the supernode's host list; "to each host
//! in the cache list is associated a network latency value" obtained by
//! periodically ping'ing it (Section 4.1).  The booking step of the
//! reservation procedure sorts this cache by ascending latency and books
//! hosts from the front.

use crate::peer::{PeerDescriptor, PeerId};
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// One cached peer with its latest latency estimate.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The cached peer.
    pub descriptor: PeerDescriptor,
    /// Smoothed latency estimate from application-level probes; `None` until
    /// the first probe completes.
    pub latency: Option<SimDuration>,
    /// Time of the last successful probe.
    pub last_probe: Option<SimTime>,
    /// Consecutive failed probes / timeouts.
    pub failed_probes: u32,
}

/// Exponential smoothing factor applied to successive probe measurements:
/// `new = (1-EWMA_ALPHA)*old + EWMA_ALPHA*sample`.
pub const EWMA_ALPHA: f64 = 0.5;

/// The MPD's cached list.
#[derive(Debug, Default)]
pub struct CachedList {
    entries: HashMap<PeerId, CacheEntry>,
}

impl CachedList {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CachedList {
            entries: HashMap::new(),
        }
    }

    /// Merges descriptors retrieved from the supernode into the cache,
    /// keeping existing latency estimates.  Returns the number of peers that
    /// were new to this cache.
    pub fn merge(&mut self, peers: impl IntoIterator<Item = PeerDescriptor>) -> usize {
        let mut added = 0;
        for d in peers {
            self.entries.entry(d.id).or_insert_with(|| {
                added += 1;
                CacheEntry {
                    descriptor: d,
                    latency: None,
                    last_probe: None,
                    failed_probes: 0,
                }
            });
        }
        added
    }

    /// Records a successful probe measurement for `peer`, smoothing with the
    /// previous estimate.
    pub fn record_probe(&mut self, peer: PeerId, sample: SimDuration, now: SimTime) {
        if let Some(e) = self.entries.get_mut(&peer) {
            let new = match e.latency {
                Some(old) => {
                    let blended = old.as_secs_f64() * (1.0 - EWMA_ALPHA)
                        + sample.as_secs_f64() * EWMA_ALPHA;
                    SimDuration::from_secs_f64(blended)
                }
                None => sample,
            };
            e.latency = Some(new);
            e.last_probe = Some(now);
            e.failed_probes = 0;
        }
    }

    /// Records a failed probe (timeout) for `peer`.  Returns the new failure
    /// count, or `None` if the peer is not cached.
    pub fn record_probe_failure(&mut self, peer: PeerId) -> Option<u32> {
        self.entries.get_mut(&peer).map(|e| {
            e.failed_probes += 1;
            e.failed_probes
        })
    }

    /// Removes a peer (e.g. marked dead during a reservation round).
    pub fn remove(&mut self, peer: PeerId) -> bool {
        self.entries.remove(&peer).is_some()
    }

    /// Looks up a cached entry.
    pub fn get(&self, peer: PeerId) -> Option<&CacheEntry> {
        self.entries.get(&peer)
    }

    /// Number of cached peers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All cached peers in unspecified order.
    pub fn peers(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// The cache sorted by ascending latency, which is exactly the order the
    /// booking step walks.  Peers without a measurement sort last (they are
    /// the least attractive candidates), ties broken by peer id for
    /// determinism.
    pub fn sorted_by_latency(&self) -> Vec<&CacheEntry> {
        let mut v: Vec<&CacheEntry> = self.entries.values().collect();
        v.sort_by(|a, b| match (a.latency, b.latency) {
            (Some(x), Some(y)) => x.cmp(&y).then(a.descriptor.id.cmp(&b.descriptor.id)),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.descriptor.id.cmp(&b.descriptor.id),
        });
        v
    }

    /// Convenience: peer ids in ascending-latency order.
    pub fn ranking(&self) -> Vec<PeerId> {
        self.sorted_by_latency()
            .into_iter()
            .map(|e| e.descriptor.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_simgrid::topology::HostId;

    fn desc(i: usize) -> PeerDescriptor {
        PeerDescriptor::new(PeerId(i), HostId(i))
    }

    #[test]
    fn merge_adds_only_new_peers() {
        let mut c = CachedList::new();
        assert_eq!(c.merge(vec![desc(0), desc(1)]), 2);
        assert_eq!(c.merge(vec![desc(1), desc(2)]), 1);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn probes_smooth_with_ewma() {
        let mut c = CachedList::new();
        c.merge(vec![desc(0)]);
        c.record_probe(PeerId(0), SimDuration::from_millis(10), SimTime::ZERO);
        assert_eq!(c.get(PeerId(0)).unwrap().latency, Some(SimDuration::from_millis(10)));
        c.record_probe(PeerId(0), SimDuration::from_millis(20), SimTime::from_secs(1));
        // 0.5*10 + 0.5*20 = 15 ms
        assert_eq!(c.get(PeerId(0)).unwrap().latency, Some(SimDuration::from_millis(15)));
        assert_eq!(c.get(PeerId(0)).unwrap().failed_probes, 0);
    }

    #[test]
    fn failures_count_and_reset() {
        let mut c = CachedList::new();
        c.merge(vec![desc(0)]);
        assert_eq!(c.record_probe_failure(PeerId(0)), Some(1));
        assert_eq!(c.record_probe_failure(PeerId(0)), Some(2));
        assert_eq!(c.record_probe_failure(PeerId(9)), None);
        c.record_probe(PeerId(0), SimDuration::from_millis(5), SimTime::ZERO);
        assert_eq!(c.get(PeerId(0)).unwrap().failed_probes, 0);
    }

    #[test]
    fn sorting_puts_lowest_latency_first_and_unprobed_last() {
        let mut c = CachedList::new();
        c.merge(vec![desc(0), desc(1), desc(2), desc(3)]);
        c.record_probe(PeerId(2), SimDuration::from_millis(1), SimTime::ZERO);
        c.record_probe(PeerId(0), SimDuration::from_millis(12), SimTime::ZERO);
        c.record_probe(PeerId(1), SimDuration::from_millis(5), SimTime::ZERO);
        assert_eq!(
            c.ranking(),
            vec![PeerId(2), PeerId(1), PeerId(0), PeerId(3)]
        );
    }

    #[test]
    fn ties_break_by_peer_id() {
        let mut c = CachedList::new();
        c.merge(vec![desc(5), desc(3)]);
        c.record_probe(PeerId(5), SimDuration::from_millis(7), SimTime::ZERO);
        c.record_probe(PeerId(3), SimDuration::from_millis(7), SimTime::ZERO);
        assert_eq!(c.ranking(), vec![PeerId(3), PeerId(5)]);
    }

    #[test]
    fn remove_deletes_entry() {
        let mut c = CachedList::new();
        c.merge(vec![desc(0)]);
        assert!(c.remove(PeerId(0)));
        assert!(!c.remove(PeerId(0)));
        assert!(c.is_empty());
    }

    #[test]
    fn probing_unknown_peer_is_ignored() {
        let mut c = CachedList::new();
        c.record_probe(PeerId(4), SimDuration::from_millis(1), SimTime::ZERO);
        assert!(c.get(PeerId(4)).is_none());
    }
}
