//! The supernode: membership registry of the overlay.
//!
//! A supernode is "a necessary entry point for boot-strapping a peer willing
//! to join the overlay" (Section 3.2).  It maintains the *host list*: for
//! each registered peer, its address/ports and a "last seen" timestamp
//! refreshed by periodic alive signals.  Peers whose alive signals stop
//! arriving are eventually expired from the list.

use crate::peer::{PeerDescriptor, PeerId};
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One entry of the supernode's host list.
#[derive(Debug, Clone)]
pub struct HostListEntry {
    /// The registered peer.
    pub descriptor: PeerDescriptor,
    /// Last time a registration or alive signal was received.
    pub last_seen: SimTime,
}

/// Membership registry.
///
/// Entries live in a `BTreeMap` keyed by [`PeerId`], so the host list is
/// maintained in stable sorted order *incrementally* — `O(log n)` per
/// registration — instead of the clone-and-sort a snapshot API would pay on
/// every read.  Consumers walk [`Supernode::host_list_iter`] borrowed and
/// in order.
#[derive(Debug)]
pub struct Supernode {
    entries: BTreeMap<PeerId, HostListEntry>,
    /// Peers not heard from for longer than this are dropped by
    /// [`Supernode::expire_stale`].
    expiry: SimDuration,
    registrations: u64,
    expirations: u64,
}

/// Default staleness bound before a silent peer is dropped (three missed
/// 2-minute alive periods).
pub const DEFAULT_EXPIRY: SimDuration = SimDuration::from_secs(360);

impl Default for Supernode {
    fn default() -> Self {
        Self::new(DEFAULT_EXPIRY)
    }
}

impl Supernode {
    /// Creates a supernode with the given staleness bound.
    pub fn new(expiry: SimDuration) -> Self {
        assert!(!expiry.is_zero(), "expiry must be non-zero");
        Supernode {
            entries: BTreeMap::new(),
            expiry,
            registrations: 0,
            expirations: 0,
        }
    }

    /// Registers a peer (or refreshes it if already known).
    pub fn register(&mut self, descriptor: PeerDescriptor, now: SimTime) {
        self.registrations += 1;
        self.entries.insert(
            descriptor.id,
            HostListEntry {
                descriptor,
                last_seen: now,
            },
        );
    }

    /// Records an alive signal from `peer`.  Unknown peers are ignored (the
    /// MPD is expected to re-register after an expiry).
    pub fn alive(&mut self, peer: PeerId, now: SimTime) -> bool {
        if let Some(e) = self.entries.get_mut(&peer) {
            e.last_seen = now;
            true
        } else {
            false
        }
    }

    /// Removes a peer that unregisters cleanly.
    pub fn unregister(&mut self, peer: PeerId) -> bool {
        self.entries.remove(&peer).is_some()
    }

    /// Wipes the host list, as a supernode crash would: the registry state is
    /// volatile and lost on restart, while the lifetime counters (a property
    /// of the simulation, not the process) are kept.  Peers re-populate the
    /// list by re-registering, exactly as after an expiry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops peers not heard from within the expiry window; returns how many
    /// were dropped.
    pub fn expire_stale(&mut self, now: SimTime) -> usize {
        let expiry = self.expiry;
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now.saturating_since(e.last_seen) <= expiry);
        let dropped = before - self.entries.len();
        self.expirations += dropped as u64;
        dropped
    }

    /// Borrowing view of the host list in stable ([`PeerId`]) order.  The
    /// order is maintained incrementally by the backing `BTreeMap`, so this
    /// neither clones nor sorts — every consumer (the MPD cache refresh, the
    /// experiment harnesses) walks it in place.
    pub fn host_list_iter(&self) -> impl Iterator<Item = &HostListEntry> {
        self.entries.values()
    }

    /// True if `peer` is currently registered.
    pub fn knows(&self, peer: PeerId) -> bool {
        self.entries.contains_key(&peer)
    }

    /// Number of registered peers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no peer is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total registrations processed (including re-registrations).
    pub fn registrations(&self) -> u64 {
        self.registrations
    }

    /// Total peers dropped by expiry.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// The staleness bound.
    pub fn expiry(&self) -> SimDuration {
        self.expiry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_simgrid::topology::HostId;

    fn desc(i: usize) -> PeerDescriptor {
        PeerDescriptor::new(PeerId(i), HostId(i))
    }

    #[test]
    fn register_and_list() {
        let mut s = Supernode::default();
        assert!(s.is_empty());
        s.register(desc(1), SimTime::ZERO);
        s.register(desc(0), SimTime::ZERO);
        assert_eq!(s.len(), 2);
        // The borrowing iterator walks in stable PeerId order, whatever the
        // registration order was.
        let list: Vec<&HostListEntry> = s.host_list_iter().collect();
        assert_eq!(list[0].descriptor.id, PeerId(0));
        assert_eq!(list[1].descriptor.id, PeerId(1));
        assert!(s.knows(PeerId(0)));
        assert!(!s.knows(PeerId(9)));
        assert_eq!(s.registrations(), 2);
    }

    #[test]
    fn alive_refreshes_last_seen() {
        let mut s = Supernode::new(SimDuration::from_secs(100));
        s.register(desc(0), SimTime::ZERO);
        assert!(s.alive(PeerId(0), SimTime::from_secs(50)));
        assert!(!s.alive(PeerId(1), SimTime::from_secs(50)));
        // Peer 0 was refreshed at t=50, so at t=120 it is still within 100 s.
        assert_eq!(s.expire_stale(SimTime::from_secs(120)), 0);
        assert!(s.knows(PeerId(0)));
    }

    #[test]
    fn stale_peers_are_expired() {
        let mut s = Supernode::new(SimDuration::from_secs(100));
        s.register(desc(0), SimTime::ZERO);
        s.register(desc(1), SimTime::ZERO);
        s.alive(PeerId(1), SimTime::from_secs(150));
        let dropped = s.expire_stale(SimTime::from_secs(160));
        assert_eq!(dropped, 1);
        assert!(!s.knows(PeerId(0)));
        assert!(s.knows(PeerId(1)));
        assert_eq!(s.expirations(), 1);
    }

    #[test]
    fn unregister_removes_peer() {
        let mut s = Supernode::default();
        s.register(desc(0), SimTime::ZERO);
        assert!(s.unregister(PeerId(0)));
        assert!(!s.unregister(PeerId(0)));
        assert!(s.is_empty());
    }

    #[test]
    fn reregistration_updates_descriptor() {
        let mut s = Supernode::default();
        s.register(desc(0), SimTime::ZERO);
        let updated = PeerDescriptor::with_address(PeerId(0), HostId(5), "1.2.3.4:1");
        s.register(updated, SimTime::from_secs(1));
        let list: Vec<&HostListEntry> = s.host_list_iter().collect();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].descriptor.host, HostId(5));
        assert_eq!(list[0].last_seen, SimTime::from_secs(1));
    }

    #[test]
    fn clear_wipes_registry_but_keeps_counters() {
        let mut s = Supernode::default();
        s.register(desc(0), SimTime::ZERO);
        s.register(desc(1), SimTime::ZERO);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.registrations(), 2);
        // A re-registration after the crash repopulates the list.
        s.register(desc(0), SimTime::from_secs(1));
        assert!(s.knows(PeerId(0)));
        assert_eq!(s.registrations(), 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_expiry_panics() {
        Supernode::new(SimDuration::ZERO);
    }
}
