//! Property test: the incrementally maintained latency index of
//! [`p2pmpi_overlay::cache::CachedList`] must agree with the naive
//! sort-every-read reference implementation under arbitrary operation
//! sequences — including the unprobed-sort-last and tie-by-peer-id rules.

use p2pmpi_overlay::cache::CachedList;
use p2pmpi_overlay::peer::{PeerDescriptor, PeerId};
use p2pmpi_simgrid::rngutil::seeded;
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use p2pmpi_simgrid::topology::HostId;
use rand::Rng;

const PEER_UNIVERSE: usize = 48;
const OPS: usize = 1_500;

fn descriptor(i: usize) -> PeerDescriptor {
    PeerDescriptor::new(PeerId(i), HostId(i))
}

/// The booking order read through the incremental index.
fn incremental_order(cache: &CachedList) -> Vec<PeerId> {
    cache.ranking_iter().collect()
}

/// The booking order recomputed from first principles.
fn naive_order(cache: &CachedList) -> Vec<PeerId> {
    cache
        .sorted_by_latency_naive()
        .into_iter()
        .map(|e| e.descriptor.id)
        .collect()
}

fn run_sequence(seed: u64) {
    let mut rng = seeded(seed);
    let mut cache = CachedList::new();
    let mut time = SimTime::ZERO;
    for op in 0..OPS {
        time += SimDuration::from_millis(1);
        let peer = PeerId(rng.gen_range(0..PEER_UNIVERSE));
        match rng.gen_range(0u32..100) {
            // Merge a random small batch (some peers will already be known).
            0..=19 => {
                let count = rng.gen_range(1usize..6);
                let batch: Vec<PeerDescriptor> = (0..count)
                    .map(|_| descriptor(rng.gen_range(0..PEER_UNIVERSE)))
                    .collect();
                cache.merge(batch);
            }
            // Probe with latencies drawn from a tiny discrete set so that
            // exact ties across distinct peers are common, exercising the
            // tie-by-peer-id rule.
            20..=69 => {
                let ms = [5u64, 5, 10, 17, 42][rng.gen_range(0usize..5)];
                cache.record_probe(peer, SimDuration::from_millis(ms), time);
            }
            70..=84 => {
                cache.record_probe_failure(peer);
            }
            _ => {
                cache.remove(peer);
            }
        }
        // The index must agree with the reference order after *every*
        // mutation, not just at the end.
        let inc = incremental_order(&cache);
        let naive = naive_order(&cache);
        assert_eq!(
            inc, naive,
            "index diverged from naive sort after op {op} (seed {seed})"
        );
        assert_eq!(inc.len(), cache.len(), "index lost or duplicated peers");
    }

    // Structural spot-checks of the final order: measured peers precede
    // unprobed ones, latencies are non-decreasing, ties are id-ordered.
    let entries: Vec<_> = cache.sorted_by_latency();
    for pair in entries.windows(2) {
        match (pair[0].latency, pair[1].latency) {
            (Some(a), Some(b)) => {
                assert!(a <= b, "latency order violated (seed {seed})");
                if a == b {
                    assert!(
                        pair[0].descriptor.id < pair[1].descriptor.id,
                        "tie not broken by peer id (seed {seed})"
                    );
                }
            }
            (None, Some(_)) => panic!("an unprobed peer sorted before a measured one"),
            (Some(_), None) | (None, None) => {}
        }
    }
}

#[test]
fn incremental_index_matches_naive_sort_under_random_ops() {
    for seed in [1, 7, 42, 1234, 0xdead_beef] {
        run_sequence(seed);
    }
}

#[test]
fn unprobed_peers_always_sort_last() {
    let mut cache = CachedList::new();
    cache.merge((0..10).map(descriptor));
    let mut rng = seeded(99);
    for i in 0..5usize {
        let ms = rng.gen_range(1u64..50);
        cache.record_probe(PeerId(i), SimDuration::from_millis(ms), SimTime::ZERO);
    }
    let order = incremental_order(&cache);
    assert_eq!(order.len(), 10);
    // The measured five come first (in latency order), the unprobed five
    // last in id order.
    assert!(order[..5].iter().all(|p| p.0 < 5));
    assert_eq!(order[5..].to_vec(), (5..10).map(PeerId).collect::<Vec<_>>());
    assert_eq!(order, naive_order(&cache));
}
