//! Property test: the three [`QueueKind`]s are interchangeable.
//!
//! The binary heap is the reference implementation; the calendar and ladder
//! queues must deliver *exactly* the same `(time, payload)` stream — FIFO
//! ties included — under arbitrary interleavings of pushes, pops and
//! cancellations.  Cancellation is the interesting part: tombstoned tickets
//! travel through calendar resizes and ladder rung transfers (where they may
//! be compacted early), and none of that may reorder the survivors or
//! desynchronise the live-event count.

use p2pmpi_simgrid::event::{EventKey, EventQueue, QueueKind, Scheduled};
use p2pmpi_simgrid::rngutil::seeded;
use p2pmpi_simgrid::time::SimTime;
use proptest::prelude::*;
use rand::Rng;

/// One scripted operation of a random workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push at `floor + offset` (the floor is the last popped time, so the
    /// schedule never goes backwards the way an engine never would).
    Push(u64),
    /// Cancel a random still-tracked key (may already be stale).
    Cancel(usize),
    /// Pop the earliest event.
    Pop,
}

/// Draws a workload whose pushes mix three time scales: tight clusters
/// (ties and near-ties), a medium band, and a sparse far tail — the shape
/// that stresses the calendar's uniform buckets and the ladder's rung
/// refinement.
fn script(seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = seeded(seed);
    (0..ops)
        .map(|_| match rng.gen_range(0u32..100) {
            0..=54 => Op::Push(match rng.gen_range(0u32..4) {
                0 => rng.gen_range(0u64..10),
                1 => rng.gen_range(0u64..100_000),
                2 => rng.gen_range(0u64..10_000_000),
                _ => rng.gen_range(0u64..60_000_000_000),
            }),
            55..=74 => Op::Cancel(rng.gen()),
            _ => Op::Pop,
        })
        .collect()
}

struct Tracked {
    queue: EventQueue<u32>,
    keys: Vec<EventKey>,
}

impl Tracked {
    fn new(kind: QueueKind) -> Self {
        Tracked {
            queue: EventQueue::with_kind(kind),
            keys: Vec::new(),
        }
    }
}

proptest! {
    #[test]
    fn heap_calendar_and_ladder_deliver_identical_streams(
        seed in 0u64..1_000_000,
        ops in 200usize..1200,
    ) {
        let script = script(seed, ops);
        let mut queues = [
            Tracked::new(QueueKind::BinaryHeap),
            Tracked::new(QueueKind::Calendar),
            Tracked::new(QueueKind::Ladder),
        ];
        let mut floor = 0u64;
        for (i, op) in script.iter().enumerate() {
            match *op {
                Op::Push(offset) => {
                    let t = SimTime::from_nanos(floor + offset);
                    for q in &mut queues {
                        let key = q.queue.push(t, i as u32);
                        q.keys.push(key);
                    }
                }
                Op::Cancel(pick) => {
                    if queues[0].keys.is_empty() {
                        continue;
                    }
                    let idx = pick % queues[0].keys.len();
                    // Keys may be stale (popped or already cancelled); all
                    // three queues must agree on whether the cancel landed.
                    let results: Vec<Option<u32>> = queues
                        .iter_mut()
                        .map(|q| q.queue.cancel(q.keys.swap_remove(idx)))
                        .collect();
                    prop_assert_eq!(results[0], results[1], "calendar cancel diverged at op {}", i);
                    prop_assert_eq!(results[0], results[2], "ladder cancel diverged at op {}", i);
                }
                Op::Pop => {
                    let popped: Vec<Option<Scheduled<u32>>> =
                        queues.iter_mut().map(|q| q.queue.pop()).collect();
                    prop_assert_eq!(&popped[0], &popped[1], "calendar pop diverged at op {}", i);
                    prop_assert_eq!(&popped[0], &popped[2], "ladder pop diverged at op {}", i);
                    if let Some(s) = &popped[0] {
                        floor = s.time.as_nanos();
                    }
                }
            }
            prop_assert_eq!(queues[0].queue.len(), queues[1].queue.len());
            prop_assert_eq!(queues[0].queue.len(), queues[2].queue.len());
        }
        // Drain whatever survived; the full tail must agree too.
        loop {
            let tail: Vec<Option<Scheduled<u32>>> =
                queues.iter_mut().map(|q| q.queue.pop()).collect();
            prop_assert_eq!(&tail[0], &tail[1], "calendar tail diverged");
            prop_assert_eq!(&tail[0], &tail[2], "ladder tail diverged");
            if tail[0].is_none() {
                break;
            }
        }
    }
}
