//! Lightweight event tracing for experiments and debugging.
//!
//! Components record [`TraceEvent`]s into a shared [`Tracer`]; experiment
//! harnesses query or dump them to explain *why* an allocation came out the
//! way it did (which hosts answered NOK, which reservations were cancelled,
//! which peers were marked dead, …).
//!
//! ## Lazy-recording contract
//!
//! [`Tracer::record`] takes the message as a **closure**
//! (`impl FnOnce() -> String`), not a `String`.  The contract every call
//! site relies on:
//!
//! * When the tracer is **disabled**, `record` costs exactly one relaxed
//!   atomic load and one branch.  The closure is *never* invoked — no
//!   `format!`, no allocation, no mutex.
//! * When the tracer is enabled but the capacity cap is reached, the event
//!   is counted as dropped and the closure is, again, never invoked.
//! * Otherwise the closure is invoked exactly once, under the buffer lock.
//!
//! Consequently message closures must be cheap to *construct* (capture a few
//! references) and side-effect free: whether they run at all depends on the
//! tracer state.  Write call sites as
//! `tracer.record(now, category, || format!(...))`.

use crate::time::SimTime;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Category of a trace event, used for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// Overlay membership: registrations, alive signals, cache refreshes.
    Membership,
    /// Latency probing.
    Probe,
    /// Reservation protocol (booking, OK/NOK, cancellation).
    Reservation,
    /// Process-to-host allocation decisions.
    Allocation,
    /// MPI runtime events (launch, completion, failures).
    Runtime,
    /// Fault injection (churn, crashes).
    Fault,
    /// Anything else.
    Other,
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceCategory::Membership => "membership",
            TraceCategory::Probe => "probe",
            TraceCategory::Reservation => "reservation",
            TraceCategory::Allocation => "allocation",
            TraceCategory::Runtime => "runtime",
            TraceCategory::Fault => "fault",
            TraceCategory::Other => "other",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub time: SimTime,
    /// Category for filtering.
    pub category: TraceCategory,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.category, self.message)
    }
}

/// Thread-safe, clonable event recorder.
///
/// Cloning a `Tracer` yields a handle onto the same underlying buffer.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<TracerShared>,
}

struct TracerShared {
    /// Read on every `record` without taking the lock; the disabled fast
    /// path is a single relaxed load.
    enabled: AtomicBool,
    inner: Mutex<TracerInner>,
}

struct TracerInner {
    events: Vec<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    fn with_state(capacity: Option<usize>, enabled: bool) -> Self {
        Tracer {
            shared: Arc::new(TracerShared {
                enabled: AtomicBool::new(enabled),
                inner: Mutex::new(TracerInner {
                    events: Vec::with_capacity(capacity.unwrap_or(0).min(4096)),
                    capacity,
                    dropped: 0,
                }),
            }),
        }
    }

    /// Creates an unbounded tracer.
    pub fn new() -> Self {
        Self::with_state(None, true)
    }

    /// Creates a tracer that keeps at most `capacity` events (older events
    /// beyond the cap are dropped and counted).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_state(Some(capacity), true)
    }

    /// Creates a tracer that records nothing (cheap to pass around when
    /// tracing is not wanted, e.g. inside Criterion benchmarks): `record`
    /// costs one branch and never runs the message closure.
    pub fn disabled() -> Self {
        Self::with_state(None, false)
    }

    /// True if this tracer currently records events.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Switches recording on or off at runtime (affects every clone).
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Records an event.  The message closure runs only if the event is
    /// actually stored — see the module docs for the full contract.
    pub fn record<F: FnOnce() -> String>(
        &self,
        time: SimTime,
        category: TraceCategory,
        message: F,
    ) {
        if !self.shared.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.shared.inner.lock();
        if let Some(cap) = inner.capacity {
            if inner.events.len() >= cap {
                inner.dropped += 1;
                return;
            }
        }
        let message = message();
        inner.events.push(TraceEvent {
            time,
            category,
            message,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped because of the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.shared.inner.lock().dropped
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared.inner.lock().events.clone()
    }

    /// Snapshot of the events of one category.
    pub fn events_in(&self, category: TraceCategory) -> Vec<TraceEvent> {
        self.shared
            .inner
            .lock()
            .events
            .iter()
            .filter(|e| e.category == category)
            .cloned()
            .collect()
    }

    /// Number of events in one category.
    pub fn count(&self, category: TraceCategory) -> usize {
        self.shared
            .inner
            .lock()
            .events
            .iter()
            .filter(|e| e.category == category)
            .count()
    }

    /// Clears the buffer (keeps the capacity and enabled flag).
    pub fn clear(&self) {
        let mut inner = self.shared.inner.lock();
        inner.events.clear();
        inner.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let t = Tracer::new();
        t.record(SimTime::from_secs(1), TraceCategory::Probe, || {
            "ping lyon".to_string()
        });
        t.record(SimTime::from_secs(2), TraceCategory::Reservation, || {
            "book 10".to_string()
        });
        t.record(SimTime::from_secs(3), TraceCategory::Probe, || {
            "ping rennes".to_string()
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(TraceCategory::Probe), 2);
        assert_eq!(t.events_in(TraceCategory::Reservation).len(), 1);
        assert!(!t.is_empty());
        let shown = format!("{}", t.events()[0]);
        assert!(shown.contains("probe") && shown.contains("ping lyon"));
    }

    #[test]
    fn capacity_drops_extra_events() {
        let t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.record(SimTime::from_secs(i), TraceCategory::Other, || "x".into());
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record(SimTime::ZERO, TraceCategory::Fault, || "crash".into());
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let t = Tracer::disabled();
        let mut ran = false;
        t.record(SimTime::ZERO, TraceCategory::Other, || {
            ran = true;
            String::new()
        });
        assert!(!ran, "message closure ran on a disabled tracer");
    }

    #[test]
    fn closure_skipped_once_capacity_is_reached() {
        let t = Tracer::with_capacity(1);
        t.record(SimTime::ZERO, TraceCategory::Other, || "kept".into());
        let mut ran = false;
        t.record(SimTime::ZERO, TraceCategory::Other, || {
            ran = true;
            String::new()
        });
        assert!(!ran, "message closure ran for a dropped event");
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn enable_toggle_affects_all_clones() {
        let t = Tracer::new();
        let t2 = t.clone();
        t2.set_enabled(false);
        t.record(SimTime::ZERO, TraceCategory::Runtime, || "lost".into());
        assert!(t.is_empty());
        t2.set_enabled(true);
        t.record(SimTime::ZERO, TraceCategory::Runtime, || "kept".into());
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::new();
        let t2 = t.clone();
        t2.record(SimTime::ZERO, TraceCategory::Runtime, || "start".into());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn category_display_names() {
        assert_eq!(TraceCategory::Membership.to_string(), "membership");
        assert_eq!(TraceCategory::Allocation.to_string(), "allocation");
        assert_eq!(TraceCategory::Fault.to_string(), "fault");
    }
}
