//! Lightweight event tracing for experiments and debugging.
//!
//! Components record [`TraceEvent`]s into a shared [`Tracer`]; experiment
//! harnesses query or dump them to explain *why* an allocation came out the
//! way it did (which hosts answered NOK, which reservations were cancelled,
//! which peers were marked dead, …).

use crate::time::SimTime;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Category of a trace event, used for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// Overlay membership: registrations, alive signals, cache refreshes.
    Membership,
    /// Latency probing.
    Probe,
    /// Reservation protocol (booking, OK/NOK, cancellation).
    Reservation,
    /// Process-to-host allocation decisions.
    Allocation,
    /// MPI runtime events (launch, completion, failures).
    Runtime,
    /// Fault injection (churn, crashes).
    Fault,
    /// Anything else.
    Other,
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceCategory::Membership => "membership",
            TraceCategory::Probe => "probe",
            TraceCategory::Reservation => "reservation",
            TraceCategory::Allocation => "allocation",
            TraceCategory::Runtime => "runtime",
            TraceCategory::Fault => "fault",
            TraceCategory::Other => "other",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub time: SimTime,
    /// Category for filtering.
    pub category: TraceCategory,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.category, self.message)
    }
}

/// Thread-safe, clonable event recorder.
///
/// Cloning a `Tracer` yields a handle onto the same underlying buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

struct TracerInner {
    events: Vec<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
    enabled: bool,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates an unbounded tracer.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                events: Vec::new(),
                capacity: None,
                dropped: 0,
                enabled: true,
            })),
        }
    }

    /// Creates a tracer that keeps at most `capacity` events (older events
    /// beyond the cap are dropped and counted).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                events: Vec::with_capacity(capacity.min(4096)),
                capacity: Some(capacity),
                dropped: 0,
                enabled: true,
            })),
        }
    }

    /// Creates a tracer that records nothing (cheap to pass around when
    /// tracing is not wanted, e.g. inside Criterion benchmarks).
    pub fn disabled() -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                events: Vec::new(),
                capacity: None,
                dropped: 0,
                enabled: false,
            })),
        }
    }

    /// Records an event.
    pub fn record(&self, time: SimTime, category: TraceCategory, message: impl Into<String>) {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return;
        }
        if let Some(cap) = inner.capacity {
            if inner.events.len() >= cap {
                inner.dropped += 1;
                return;
            }
        }
        inner.events.push(TraceEvent {
            time,
            category,
            message: message.into(),
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped because of the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.clone()
    }

    /// Snapshot of the events of one category.
    pub fn events_in(&self, category: TraceCategory) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.category == category)
            .cloned()
            .collect()
    }

    /// Number of events in one category.
    pub fn count(&self, category: TraceCategory) -> usize {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.category == category)
            .count()
    }

    /// Clears the buffer (keeps the capacity and enabled flag).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.events.clear();
        inner.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let t = Tracer::new();
        t.record(SimTime::from_secs(1), TraceCategory::Probe, "ping lyon");
        t.record(SimTime::from_secs(2), TraceCategory::Reservation, "book 10");
        t.record(SimTime::from_secs(3), TraceCategory::Probe, "ping rennes");
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(TraceCategory::Probe), 2);
        assert_eq!(t.events_in(TraceCategory::Reservation).len(), 1);
        assert!(!t.is_empty());
        let shown = format!("{}", t.events()[0]);
        assert!(shown.contains("probe") && shown.contains("ping lyon"));
    }

    #[test]
    fn capacity_drops_extra_events() {
        let t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.record(SimTime::from_secs(i), TraceCategory::Other, "x");
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record(SimTime::ZERO, TraceCategory::Fault, "crash");
        assert!(t.is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::new();
        let t2 = t.clone();
        t2.record(SimTime::ZERO, TraceCategory::Runtime, "start");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn category_display_names() {
        assert_eq!(TraceCategory::Membership.to_string(), "membership");
        assert_eq!(TraceCategory::Allocation.to_string(), "allocation");
        assert_eq!(TraceCategory::Fault.to_string(), "fault");
    }
}
