//! Deterministic random-number utilities.
//!
//! Every stochastic component of the reproduction (probe noise, overbooking
//! jitter, churn, NAS kernels) draws from a seeded [`rand::rngs::StdRng`], so
//! whole experiments are reproducible from a single master seed.  Substreams
//! are derived with SplitMix64 so that adding a consumer does not perturb the
//! draws seen by existing consumers.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a 64-bit value (SplitMix64 finalizer); good enough to decorrelate
/// derived seeds.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for a named substream of a master seed.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_mul(0xA24BAED4963EE407)))
}

/// Creates a deterministic RNG for a named substream of a master seed.
pub fn substream(master: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream))
}

/// Creates a deterministic RNG directly from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Consecutive inputs should differ in many bits.
        let d = (splitmix64(100) ^ splitmix64(101)).count_ones();
        assert!(d > 16, "poor mixing: {d} bits differ");
    }

    #[test]
    fn substreams_are_independent_and_reproducible() {
        let mut a1 = substream(42, 0);
        let mut a2 = substream(42, 0);
        let mut b = substream(42, 1);
        let xs1: Vec<u64> = (0..8).map(|_| a1.gen()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn different_masters_differ() {
        let mut a = substream(1, 7);
        let mut b = substream(2, 7);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn seeded_matches_stdrng() {
        let mut a = seeded(99);
        let mut b = StdRng::seed_from_u64(99);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
