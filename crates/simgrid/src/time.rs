//! Virtual time primitives.
//!
//! The whole reproduction runs on *virtual* time: the discrete-event engine
//! ([`crate::engine::Engine`]) advances a [`SimTime`] clock, and the MPI
//! runtime keeps one logical [`SimTime`] clock per process.  Both are integer
//! nanosecond counters, which keeps arithmetic exact and ordering total —
//! floating point is only used at the edges (cost models, report output).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds (clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_nanos(s))
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds (clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_nanos(s))
    }

    /// Builds a duration from fractional milliseconds (clamped at zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration(secs_f64_to_nanos(ms / 1e3))
    }

    /// Builds a duration from fractional microseconds (clamped at zero).
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration(secs_f64_to_nanos(us / 1e6))
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative factor, saturating.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(secs_f64_to_nanos(self.as_secs_f64() * factor))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

/// Converts fractional seconds to nanoseconds, clamping negatives to zero and
/// saturating at `u64::MAX`.
fn secs_f64_to_nanos(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        if s.is_infinite() && s > 0.0 {
            return u64::MAX;
        }
        return 0;
    }
    let ns = s * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that can happen.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(10).as_millis_f64(), 10.0);
    }

    #[test]
    fn float_constructors_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_nanos(), 1_250_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).saturating_since(t), d);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_millis(3);
        assert_eq!((a + b).as_millis_f64(), 5.0);
        assert_eq!((b - a).as_millis_f64(), 1.0);
        assert_eq!((a * 4).as_millis_f64(), 8.0);
        assert_eq!((b / 3).as_millis_f64(), 1.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_sub(a), SimDuration::from_millis(1));
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(3));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000000s");
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
    }

    #[test]
    fn max_time_is_horizon() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
    }
}
