//! Compute-time cost model.
//!
//! Compute sections of an MPI process are described by an abstract operation
//! count; the model converts that into virtual time using the host's per-core
//! rate and the memory-contention slowdown of
//! [`MemoryContentionModel`](crate::memory::MemoryContentionModel).

use crate::memory::{MemoryContentionModel, MemoryIntensity};
use crate::time::SimDuration;
use crate::topology::{HostId, Topology};
use std::sync::Arc;

/// Converts abstract operation counts into virtual compute time.
#[derive(Debug, Clone)]
pub struct ComputeModel {
    topology: Arc<Topology>,
    contention: MemoryContentionModel,
}

impl ComputeModel {
    /// Creates a compute model with the default contention parameters.
    pub fn new(topology: Arc<Topology>) -> Self {
        ComputeModel {
            topology,
            contention: MemoryContentionModel::default(),
        }
    }

    /// Creates a compute model with an explicit contention model.
    pub fn with_contention(topology: Arc<Topology>, contention: MemoryContentionModel) -> Self {
        ComputeModel {
            topology,
            contention,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The contention model in use.
    pub fn contention(&self) -> MemoryContentionModel {
        self.contention
    }

    /// Time for one process on `host` to execute `ops` abstract operations of
    /// the given memory intensity while `residents` processes (including this
    /// one) share the host.
    pub fn compute_time(
        &self,
        host: HostId,
        ops: f64,
        intensity: MemoryIntensity,
        residents: usize,
    ) -> SimDuration {
        assert!(
            ops >= 0.0 && ops.is_finite(),
            "operation count must be >= 0"
        );
        let h = self.topology.host(host);
        let slowdown = self.contention.slowdown(residents, intensity);
        SimDuration::from_secs_f64(ops / h.ops_per_sec * slowdown)
    }

    /// Peak rate of `host` in operations per second (single resident).
    pub fn peak_ops_per_sec(&self, host: HostId) -> f64 {
        self.topology.host(host).ops_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeSpec, TopologyBuilder};

    fn topo() -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s = b.add_site("s");
        b.add_cluster(
            s,
            "fast",
            "cpu",
            1,
            NodeSpec {
                cores: 4,
                cpus: 2,
                ops_per_sec: 2e9,
                mem_bytes: 1 << 32,
            },
        );
        b.add_cluster(
            s,
            "slow",
            "cpu",
            1,
            NodeSpec {
                cores: 2,
                cpus: 1,
                ops_per_sec: 1e9,
                mem_bytes: 1 << 31,
            },
        );
        Arc::new(b.build())
    }

    #[test]
    fn time_scales_with_ops_and_host_speed() {
        let t = topo();
        let m = ComputeModel::new(t.clone());
        let fast = t.host_by_name("fast-0").unwrap().id;
        let slow = t.host_by_name("slow-0").unwrap().id;
        let tf = m.compute_time(fast, 2e9, MemoryIntensity::NONE, 1);
        let ts = m.compute_time(slow, 2e9, MemoryIntensity::NONE, 1);
        assert_eq!(tf, SimDuration::from_secs(1));
        assert_eq!(ts, SimDuration::from_secs(2));
        let tf_half = m.compute_time(fast, 1e9, MemoryIntensity::NONE, 1);
        assert_eq!(tf_half, SimDuration::from_millis(500));
        assert_eq!(m.peak_ops_per_sec(fast), 2e9);
    }

    #[test]
    fn colocation_slows_down_memory_bound_work() {
        let t = topo();
        let m = ComputeModel::new(t.clone());
        let fast = t.host_by_name("fast-0").unwrap().id;
        let alone = m.compute_time(fast, 1e9, MemoryIntensity::MEMORY_BOUND, 1);
        let crowded = m.compute_time(fast, 1e9, MemoryIntensity::MEMORY_BOUND, 4);
        assert!(crowded > alone);
        // CPU-bound work is barely affected.
        let cpu_alone = m.compute_time(fast, 1e9, MemoryIntensity::CPU_BOUND, 1);
        let cpu_crowded = m.compute_time(fast, 1e9, MemoryIntensity::CPU_BOUND, 4);
        let mem_ratio = crowded.as_secs_f64() / alone.as_secs_f64();
        let cpu_ratio = cpu_crowded.as_secs_f64() / cpu_alone.as_secs_f64();
        assert!(mem_ratio > cpu_ratio);
    }

    #[test]
    fn zero_ops_is_zero_time() {
        let t = topo();
        let m = ComputeModel::new(t.clone());
        let fast = t.host_by_name("fast-0").unwrap().id;
        assert_eq!(
            m.compute_time(fast, 0.0, MemoryIntensity::MEMORY_BOUND, 8),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "operation count")]
    fn negative_ops_panics() {
        let t = topo();
        let m = ComputeModel::new(t.clone());
        let fast = t.host_by_name("fast-0").unwrap().id;
        m.compute_time(fast, -1.0, MemoryIntensity::NONE, 1);
    }
}
