//! # p2pmpi-simgrid
//!
//! Discrete-event simulation substrate for the `p2pmpi-rs` reproduction of
//! *"Large-Scale Experiment of Co-allocation Strategies for Peer-to-Peer
//! SuperComputing in P2P-MPI"* (Genaud & Rattanapoka, IPDPS/HPGC 2008).
//!
//! The paper's experiments ran on the physical Grid'5000 testbed.  This crate
//! provides the pieces needed to stand in for that testbed on a laptop:
//!
//! * [`time`] — integer-nanosecond virtual time ([`SimTime`], [`SimDuration`]).
//! * [`event`] / [`engine`] — a deterministic discrete-event engine used by
//!   the overlay protocol simulation; payloads live in a slab-backed
//!   [`event::EventStore`], and the priority structure is selectable
//!   ([`event::QueueKind`]: binary heap, calendar queue, or ladder queue
//!   for heavily skewed schedules).
//! * [`topology`] — sites, clusters and hosts with an inter-site RTT and
//!   bandwidth matrix (Table 1 of the paper is expressed with these types by
//!   the `p2pmpi-grid5000` crate).
//! * [`network`] — a latency + bandwidth transfer-time model, including the
//!   application-level "ping" probes P2P-MPI uses instead of ICMP.
//! * [`noise`] — the CPU/TCP load perturbation of probe measurements that the
//!   paper holds responsible for the Lyon/Rennes/Bordeaux interleaving.
//! * [`memory`] / [`compute`] — memory-contention and compute-time models
//!   that let the NAS EP/IS kernels of Figure 4 be timed under *spread* and
//!   *concentrate* placements.
//! * [`trace`] — event recording used by the experiment harnesses.
//! * [`rngutil`] — deterministic seeded RNG substreams.

#![warn(missing_docs)]

pub mod compute;
pub mod engine;
pub mod event;
pub mod memory;
pub mod network;
pub mod noise;
pub mod rngutil;
pub mod time;
pub mod topology;
pub mod trace;

pub use compute::ComputeModel;
pub use engine::Engine;
pub use event::{EventKey, EventQueue, EventStore, QueueKind};
pub use memory::{MemoryContentionModel, MemoryIntensity};
pub use network::{NetworkModel, NetworkParams};
pub use noise::NoiseModel;
pub use time::{SimDuration, SimTime};
pub use topology::{
    Cluster, ClusterId, Host, HostId, NodeSpec, Site, SiteId, Topology, TopologyBuilder,
};
pub use trace::{TraceCategory, TraceEvent, Tracer};
